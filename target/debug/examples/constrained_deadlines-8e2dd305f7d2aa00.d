/root/repo/target/debug/examples/constrained_deadlines-8e2dd305f7d2aa00.d: examples/constrained_deadlines.rs

/root/repo/target/debug/examples/constrained_deadlines-8e2dd305f7d2aa00: examples/constrained_deadlines.rs

examples/constrained_deadlines.rs:
