/root/repo/target/debug/examples/protocol_shootout-37b2748224c8a75c.d: examples/protocol_shootout.rs

/root/repo/target/debug/examples/protocol_shootout-37b2748224c8a75c: examples/protocol_shootout.rs

examples/protocol_shootout.rs:
