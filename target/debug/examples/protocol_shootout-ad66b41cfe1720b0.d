/root/repo/target/debug/examples/protocol_shootout-ad66b41cfe1720b0.d: examples/protocol_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libprotocol_shootout-ad66b41cfe1720b0.rmeta: examples/protocol_shootout.rs Cargo.toml

examples/protocol_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
