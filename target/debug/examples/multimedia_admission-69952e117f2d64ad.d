/root/repo/target/debug/examples/multimedia_admission-69952e117f2d64ad.d: examples/multimedia_admission.rs Cargo.toml

/root/repo/target/debug/examples/libmultimedia_admission-69952e117f2d64ad.rmeta: examples/multimedia_admission.rs Cargo.toml

examples/multimedia_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
