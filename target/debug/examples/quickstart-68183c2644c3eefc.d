/root/repo/target/debug/examples/quickstart-68183c2644c3eefc.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-68183c2644c3eefc.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
