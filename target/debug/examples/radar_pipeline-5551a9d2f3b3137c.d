/root/repo/target/debug/examples/radar_pipeline-5551a9d2f3b3137c.d: examples/radar_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libradar_pipeline-5551a9d2f3b3137c.rmeta: examples/radar_pipeline.rs Cargo.toml

examples/radar_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
