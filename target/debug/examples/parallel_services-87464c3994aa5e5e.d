/root/repo/target/debug/examples/parallel_services-87464c3994aa5e5e.d: examples/parallel_services.rs

/root/repo/target/debug/examples/parallel_services-87464c3994aa5e5e: examples/parallel_services.rs

examples/parallel_services.rs:
