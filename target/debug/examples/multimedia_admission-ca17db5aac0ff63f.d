/root/repo/target/debug/examples/multimedia_admission-ca17db5aac0ff63f.d: examples/multimedia_admission.rs

/root/repo/target/debug/examples/multimedia_admission-ca17db5aac0ff63f: examples/multimedia_admission.rs

examples/multimedia_admission.rs:
