/root/repo/target/debug/examples/quickstart-f23aa7063a298cbe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f23aa7063a298cbe: examples/quickstart.rs

examples/quickstart.rs:
