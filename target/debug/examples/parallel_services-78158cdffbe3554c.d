/root/repo/target/debug/examples/parallel_services-78158cdffbe3554c.d: examples/parallel_services.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_services-78158cdffbe3554c.rmeta: examples/parallel_services.rs Cargo.toml

examples/parallel_services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
