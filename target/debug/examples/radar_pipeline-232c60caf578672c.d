/root/repo/target/debug/examples/radar_pipeline-232c60caf578672c.d: examples/radar_pipeline.rs

/root/repo/target/debug/examples/radar_pipeline-232c60caf578672c: examples/radar_pipeline.rs

examples/radar_pipeline.rs:
