/root/repo/target/debug/examples/constrained_deadlines-15ab203ec26e81c6.d: examples/constrained_deadlines.rs Cargo.toml

/root/repo/target/debug/examples/libconstrained_deadlines-15ab203ec26e81c6.rmeta: examples/constrained_deadlines.rs Cargo.toml

examples/constrained_deadlines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
