/root/repo/target/debug/deps/e14_three_way-648f2029319c2e65.d: crates/bench/benches/e14_three_way.rs

/root/repo/target/debug/deps/libe14_three_way-648f2029319c2e65.rmeta: crates/bench/benches/e14_three_way.rs

crates/bench/benches/e14_three_way.rs:
