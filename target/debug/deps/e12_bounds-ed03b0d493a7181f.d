/root/repo/target/debug/deps/e12_bounds-ed03b0d493a7181f.d: crates/bench/benches/e12_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libe12_bounds-ed03b0d493a7181f.rmeta: crates/bench/benches/e12_bounds.rs Cargo.toml

crates/bench/benches/e12_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
