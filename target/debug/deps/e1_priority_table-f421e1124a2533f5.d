/root/repo/target/debug/deps/e1_priority_table-f421e1124a2533f5.d: crates/bench/benches/e1_priority_table.rs Cargo.toml

/root/repo/target/debug/deps/libe1_priority_table-f421e1124a2533f5.rmeta: crates/bench/benches/e1_priority_table.rs Cargo.toml

crates/bench/benches/e1_priority_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
