/root/repo/target/debug/deps/protocol_behaviour-f717ad7f66b10253.d: crates/core/tests/protocol_behaviour.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_behaviour-f717ad7f66b10253.rmeta: crates/core/tests/protocol_behaviour.rs Cargo.toml

crates/core/tests/protocol_behaviour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
