/root/repo/target/debug/deps/e8_admission-a4d7e47f078890d2.d: crates/bench/benches/e8_admission.rs Cargo.toml

/root/repo/target/debug/deps/libe8_admission-a4d7e47f078890d2.rmeta: crates/bench/benches/e8_admission.rs Cargo.toml

crates/bench/benches/e8_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
