/root/repo/target/debug/deps/e7_spatial_reuse-7d835a1b77cb074d.d: crates/bench/benches/e7_spatial_reuse.rs

/root/repo/target/debug/deps/libe7_spatial_reuse-7d835a1b77cb074d.rmeta: crates/bench/benches/e7_spatial_reuse.rs

crates/bench/benches/e7_spatial_reuse.rs:
