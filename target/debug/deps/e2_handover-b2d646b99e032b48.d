/root/repo/target/debug/deps/e2_handover-b2d646b99e032b48.d: crates/bench/benches/e2_handover.rs Cargo.toml

/root/repo/target/debug/deps/libe2_handover-b2d646b99e032b48.rmeta: crates/bench/benches/e2_handover.rs Cargo.toml

crates/bench/benches/e2_handover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
