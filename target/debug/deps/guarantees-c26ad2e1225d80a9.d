/root/repo/target/debug/deps/guarantees-c26ad2e1225d80a9.d: tests/guarantees.rs

/root/repo/target/debug/deps/guarantees-c26ad2e1225d80a9: tests/guarantees.rs

tests/guarantees.rs:
