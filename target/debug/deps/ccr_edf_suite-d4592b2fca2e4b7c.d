/root/repo/target/debug/deps/ccr_edf_suite-d4592b2fca2e4b7c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libccr_edf_suite-d4592b2fca2e4b7c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
