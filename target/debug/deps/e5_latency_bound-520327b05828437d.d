/root/repo/target/debug/deps/e5_latency_bound-520327b05828437d.d: crates/bench/benches/e5_latency_bound.rs

/root/repo/target/debug/deps/libe5_latency_bound-520327b05828437d.rmeta: crates/bench/benches/e5_latency_bound.rs

crates/bench/benches/e5_latency_bound.rs:
