/root/repo/target/debug/deps/guarantees-81c9f9df20046a26.d: tests/guarantees.rs Cargo.toml

/root/repo/target/debug/deps/libguarantees-81c9f9df20046a26.rmeta: tests/guarantees.rs Cargo.toml

tests/guarantees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
