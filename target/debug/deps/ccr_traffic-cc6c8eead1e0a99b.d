/root/repo/target/debug/deps/ccr_traffic-cc6c8eead1e0a99b.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/debug/deps/libccr_traffic-cc6c8eead1e0a99b.rlib: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/debug/deps/libccr_traffic-cc6c8eead1e0a99b.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
