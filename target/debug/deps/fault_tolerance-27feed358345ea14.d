/root/repo/target/debug/deps/fault_tolerance-27feed358345ea14.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-27feed358345ea14: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
