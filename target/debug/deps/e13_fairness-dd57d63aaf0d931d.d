/root/repo/target/debug/deps/e13_fairness-dd57d63aaf0d931d.d: crates/bench/benches/e13_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libe13_fairness-dd57d63aaf0d931d.rmeta: crates/bench/benches/e13_fairness.rs Cargo.toml

crates/bench/benches/e13_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
