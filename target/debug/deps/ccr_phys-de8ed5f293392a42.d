/root/repo/target/debug/deps/ccr_phys-de8ed5f293392a42.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/debug/deps/libccr_phys-de8ed5f293392a42.rlib: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/debug/deps/libccr_phys-de8ed5f293392a42.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
