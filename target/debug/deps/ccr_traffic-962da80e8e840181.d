/root/repo/target/debug/deps/ccr_traffic-962da80e8e840181.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/debug/deps/ccr_traffic-962da80e8e840181: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
