/root/repo/target/debug/deps/e2_handover-fb97ab82f3dd0538.d: crates/bench/benches/e2_handover.rs

/root/repo/target/debug/deps/libe2_handover-fb97ab82f3dd0538.rmeta: crates/bench/benches/e2_handover.rs

crates/bench/benches/e2_handover.rs:
