/root/repo/target/debug/deps/ccr_traffic-0c0dc3047d99c341.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs Cargo.toml

/root/repo/target/debug/deps/libccr_traffic-0c0dc3047d99c341.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
