/root/repo/target/debug/deps/cc_fpr-ced1344b940c16ad.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/debug/deps/cc_fpr-ced1344b940c16ad: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
