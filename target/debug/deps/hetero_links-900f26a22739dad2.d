/root/repo/target/debug/deps/hetero_links-900f26a22739dad2.d: crates/core/tests/hetero_links.rs Cargo.toml

/root/repo/target/debug/deps/libhetero_links-900f26a22739dad2.rmeta: crates/core/tests/hetero_links.rs Cargo.toml

crates/core/tests/hetero_links.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
