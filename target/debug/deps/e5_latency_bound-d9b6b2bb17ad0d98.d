/root/repo/target/debug/deps/e5_latency_bound-d9b6b2bb17ad0d98.d: crates/bench/benches/e5_latency_bound.rs Cargo.toml

/root/repo/target/debug/deps/libe5_latency_bound-d9b6b2bb17ad0d98.rmeta: crates/bench/benches/e5_latency_bound.rs Cargo.toml

crates/bench/benches/e5_latency_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
