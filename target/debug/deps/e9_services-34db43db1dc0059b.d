/root/repo/target/debug/deps/e9_services-34db43db1dc0059b.d: crates/bench/benches/e9_services.rs

/root/repo/target/debug/deps/libe9_services-34db43db1dc0059b.rmeta: crates/bench/benches/e9_services.rs

crates/bench/benches/e9_services.rs:
