/root/repo/target/debug/deps/ccr_phys-bbaf5e9cc7df5678.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/debug/deps/libccr_phys-bbaf5e9cc7df5678.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
