/root/repo/target/debug/deps/fast_forward-1d171de5911b44a1.d: crates/core/tests/fast_forward.rs Cargo.toml

/root/repo/target/debug/deps/libfast_forward-1d171de5911b44a1.rmeta: crates/core/tests/fast_forward.rs Cargo.toml

crates/core/tests/fast_forward.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
