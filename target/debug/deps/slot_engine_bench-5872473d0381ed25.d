/root/repo/target/debug/deps/slot_engine_bench-5872473d0381ed25.d: crates/bench/src/bin/slot_engine_bench.rs

/root/repo/target/debug/deps/slot_engine_bench-5872473d0381ed25: crates/bench/src/bin/slot_engine_bench.rs

crates/bench/src/bin/slot_engine_bench.rs:
