/root/repo/target/debug/deps/e10_slot_sweep-d1c81711b38bd705.d: crates/bench/benches/e10_slot_sweep.rs

/root/repo/target/debug/deps/libe10_slot_sweep-d1c81711b38bd705.rmeta: crates/bench/benches/e10_slot_sweep.rs

crates/bench/benches/e10_slot_sweep.rs:
