/root/repo/target/debug/deps/e14_three_way-31d99f6dfec36a01.d: crates/bench/benches/e14_three_way.rs Cargo.toml

/root/repo/target/debug/deps/libe14_three_way-31d99f6dfec36a01.rmeta: crates/bench/benches/e14_three_way.rs Cargo.toml

crates/bench/benches/e14_three_way.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
