/root/repo/target/debug/deps/e8_admission-212297067f7b3eaa.d: crates/bench/benches/e8_admission.rs

/root/repo/target/debug/deps/libe8_admission-212297067f7b3eaa.rmeta: crates/bench/benches/e8_admission.rs

crates/bench/benches/e8_admission.rs:
