/root/repo/target/debug/deps/microbench-8bbd9221612a02b9.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/libmicrobench-8bbd9221612a02b9.rmeta: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
