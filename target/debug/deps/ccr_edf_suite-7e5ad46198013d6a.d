/root/repo/target/debug/deps/ccr_edf_suite-7e5ad46198013d6a.d: src/lib.rs

/root/repo/target/debug/deps/ccr_edf_suite-7e5ad46198013d6a: src/lib.rs

src/lib.rs:
