/root/repo/target/debug/deps/alloc_count-92fc2c9edfaefc9b.d: crates/core/tests/alloc_count.rs

/root/repo/target/debug/deps/alloc_count-92fc2c9edfaefc9b: crates/core/tests/alloc_count.rs

crates/core/tests/alloc_count.rs:
