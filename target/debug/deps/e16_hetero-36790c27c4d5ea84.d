/root/repo/target/debug/deps/e16_hetero-36790c27c4d5ea84.d: crates/bench/benches/e16_hetero.rs

/root/repo/target/debug/deps/libe16_hetero-36790c27c4d5ea84.rmeta: crates/bench/benches/e16_hetero.rs

crates/bench/benches/e16_hetero.rs:
