/root/repo/target/debug/deps/ccr_sim-26b0829dd7d8849c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats/mod.rs crates/sim/src/stats/counter.rs crates/sim/src/stats/histogram.rs crates/sim/src/stats/series.rs crates/sim/src/stats/summary.rs crates/sim/src/stats/timeweighted.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libccr_sim-26b0829dd7d8849c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats/mod.rs crates/sim/src/stats/counter.rs crates/sim/src/stats/histogram.rs crates/sim/src/stats/series.rs crates/sim/src/stats/summary.rs crates/sim/src/stats/timeweighted.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats/mod.rs:
crates/sim/src/stats/counter.rs:
crates/sim/src/stats/histogram.rs:
crates/sim/src/stats/series.rs:
crates/sim/src/stats/summary.rs:
crates/sim/src/stats/timeweighted.rs:
crates/sim/src/time.rs:
