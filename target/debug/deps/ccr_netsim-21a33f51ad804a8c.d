/root/repo/target/debug/deps/ccr_netsim-21a33f51ad804a8c.d: crates/netsim/src/lib.rs crates/netsim/src/admission_app.rs crates/netsim/src/experiments/mod.rs crates/netsim/src/experiments/e01_priority.rs crates/netsim/src/experiments/e02_handover.rs crates/netsim/src/experiments/e03_slot_length.rs crates/netsim/src/experiments/e04_umax.rs crates/netsim/src/experiments/e05_latency_bound.rs crates/netsim/src/experiments/e06_shootout.rs crates/netsim/src/experiments/e07_spatial_reuse.rs crates/netsim/src/experiments/e08_admission.rs crates/netsim/src/experiments/e09_services.rs crates/netsim/src/experiments/e10_slot_sweep.rs crates/netsim/src/experiments/e11_mapping.rs crates/netsim/src/experiments/e12_bounds.rs crates/netsim/src/experiments/e13_fairness.rs crates/netsim/src/experiments/e14_three_way.rs crates/netsim/src/experiments/e15_dbf.rs crates/netsim/src/experiments/e16_hetero.rs crates/netsim/src/runner.rs crates/netsim/src/sweep.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/ccr_netsim-21a33f51ad804a8c: crates/netsim/src/lib.rs crates/netsim/src/admission_app.rs crates/netsim/src/experiments/mod.rs crates/netsim/src/experiments/e01_priority.rs crates/netsim/src/experiments/e02_handover.rs crates/netsim/src/experiments/e03_slot_length.rs crates/netsim/src/experiments/e04_umax.rs crates/netsim/src/experiments/e05_latency_bound.rs crates/netsim/src/experiments/e06_shootout.rs crates/netsim/src/experiments/e07_spatial_reuse.rs crates/netsim/src/experiments/e08_admission.rs crates/netsim/src/experiments/e09_services.rs crates/netsim/src/experiments/e10_slot_sweep.rs crates/netsim/src/experiments/e11_mapping.rs crates/netsim/src/experiments/e12_bounds.rs crates/netsim/src/experiments/e13_fairness.rs crates/netsim/src/experiments/e14_three_way.rs crates/netsim/src/experiments/e15_dbf.rs crates/netsim/src/experiments/e16_hetero.rs crates/netsim/src/runner.rs crates/netsim/src/sweep.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/admission_app.rs:
crates/netsim/src/experiments/mod.rs:
crates/netsim/src/experiments/e01_priority.rs:
crates/netsim/src/experiments/e02_handover.rs:
crates/netsim/src/experiments/e03_slot_length.rs:
crates/netsim/src/experiments/e04_umax.rs:
crates/netsim/src/experiments/e05_latency_bound.rs:
crates/netsim/src/experiments/e06_shootout.rs:
crates/netsim/src/experiments/e07_spatial_reuse.rs:
crates/netsim/src/experiments/e08_admission.rs:
crates/netsim/src/experiments/e09_services.rs:
crates/netsim/src/experiments/e10_slot_sweep.rs:
crates/netsim/src/experiments/e11_mapping.rs:
crates/netsim/src/experiments/e12_bounds.rs:
crates/netsim/src/experiments/e13_fairness.rs:
crates/netsim/src/experiments/e14_three_way.rs:
crates/netsim/src/experiments/e15_dbf.rs:
crates/netsim/src/experiments/e16_hetero.rs:
crates/netsim/src/runner.rs:
crates/netsim/src/sweep.rs:
crates/netsim/src/trace.rs:
