/root/repo/target/debug/deps/e13_fairness-792a6fe385610a99.d: crates/bench/benches/e13_fairness.rs

/root/repo/target/debug/deps/libe13_fairness-792a6fe385610a99.rmeta: crates/bench/benches/e13_fairness.rs

crates/bench/benches/e13_fairness.rs:
