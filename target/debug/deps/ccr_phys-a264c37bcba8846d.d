/root/repo/target/debug/deps/ccr_phys-a264c37bcba8846d.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/debug/deps/libccr_phys-a264c37bcba8846d.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
