/root/repo/target/debug/deps/proptests-066a2dae86e931a6.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-066a2dae86e931a6.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
