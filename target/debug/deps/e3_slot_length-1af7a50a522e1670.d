/root/repo/target/debug/deps/e3_slot_length-1af7a50a522e1670.d: crates/bench/benches/e3_slot_length.rs Cargo.toml

/root/repo/target/debug/deps/libe3_slot_length-1af7a50a522e1670.rmeta: crates/bench/benches/e3_slot_length.rs Cargo.toml

crates/bench/benches/e3_slot_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
