/root/repo/target/debug/deps/ccr_experiments-943f3aa77bd951e1.d: crates/netsim/src/bin/ccr_experiments.rs

/root/repo/target/debug/deps/libccr_experiments-943f3aa77bd951e1.rmeta: crates/netsim/src/bin/ccr_experiments.rs

crates/netsim/src/bin/ccr_experiments.rs:
