/root/repo/target/debug/deps/fast_forward-0178478747ff0fde.d: crates/core/tests/fast_forward.rs

/root/repo/target/debug/deps/fast_forward-0178478747ff0fde: crates/core/tests/fast_forward.rs

crates/core/tests/fast_forward.rs:
