/root/repo/target/debug/deps/cc_fpr_network-f16f041f3a9c713f.d: crates/baseline/tests/cc_fpr_network.rs Cargo.toml

/root/repo/target/debug/deps/libcc_fpr_network-f16f041f3a9c713f.rmeta: crates/baseline/tests/cc_fpr_network.rs Cargo.toml

crates/baseline/tests/cc_fpr_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
