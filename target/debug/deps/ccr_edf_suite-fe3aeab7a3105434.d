/root/repo/target/debug/deps/ccr_edf_suite-fe3aeab7a3105434.d: src/lib.rs

/root/repo/target/debug/deps/libccr_edf_suite-fe3aeab7a3105434.rlib: src/lib.rs

/root/repo/target/debug/deps/libccr_edf_suite-fe3aeab7a3105434.rmeta: src/lib.rs

src/lib.rs:
