/root/repo/target/debug/deps/e11_mapping_ablation-da125cabdbb4c5e2.d: crates/bench/benches/e11_mapping_ablation.rs

/root/repo/target/debug/deps/libe11_mapping_ablation-da125cabdbb4c5e2.rmeta: crates/bench/benches/e11_mapping_ablation.rs

crates/bench/benches/e11_mapping_ablation.rs:
