/root/repo/target/debug/deps/proptests-cc3f796585d7d866.d: crates/phys/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cc3f796585d7d866: crates/phys/tests/proptests.rs

crates/phys/tests/proptests.rs:
