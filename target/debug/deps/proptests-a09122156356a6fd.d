/root/repo/target/debug/deps/proptests-a09122156356a6fd.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a09122156356a6fd: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
