/root/repo/target/debug/deps/alloc_count-c8832633239c783a.d: crates/core/tests/alloc_count.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_count-c8832633239c783a.rmeta: crates/core/tests/alloc_count.rs Cargo.toml

crates/core/tests/alloc_count.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
