/root/repo/target/debug/deps/ccr_phys-ecd105e3c1b51d93.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libccr_phys-ecd105e3c1b51d93.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs Cargo.toml

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
