/root/repo/target/debug/deps/e9_services-6930055011be0fbb.d: crates/bench/benches/e9_services.rs Cargo.toml

/root/repo/target/debug/deps/libe9_services-6930055011be0fbb.rmeta: crates/bench/benches/e9_services.rs Cargo.toml

crates/bench/benches/e9_services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
