/root/repo/target/debug/deps/e6_shootout-15a224ac2a81d763.d: crates/bench/benches/e6_shootout.rs Cargo.toml

/root/repo/target/debug/deps/libe6_shootout-15a224ac2a81d763.rmeta: crates/bench/benches/e6_shootout.rs Cargo.toml

crates/bench/benches/e6_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
