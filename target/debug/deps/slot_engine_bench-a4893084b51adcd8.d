/root/repo/target/debug/deps/slot_engine_bench-a4893084b51adcd8.d: crates/bench/src/bin/slot_engine_bench.rs Cargo.toml

/root/repo/target/debug/deps/libslot_engine_bench-a4893084b51adcd8.rmeta: crates/bench/src/bin/slot_engine_bench.rs Cargo.toml

crates/bench/src/bin/slot_engine_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
