/root/repo/target/debug/deps/ccr_experiments-329bcc0de157c4f2.d: crates/netsim/src/bin/ccr_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libccr_experiments-329bcc0de157c4f2.rmeta: crates/netsim/src/bin/ccr_experiments.rs Cargo.toml

crates/netsim/src/bin/ccr_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
