/root/repo/target/debug/deps/ccr_traffic-41f076ae65a02a3a.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/debug/deps/libccr_traffic-41f076ae65a02a3a.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
