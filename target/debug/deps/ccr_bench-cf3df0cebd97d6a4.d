/root/repo/target/debug/deps/ccr_bench-cf3df0cebd97d6a4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libccr_bench-cf3df0cebd97d6a4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
