/root/repo/target/debug/deps/e7_spatial_reuse-c3b645fc15697e87.d: crates/bench/benches/e7_spatial_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libe7_spatial_reuse-c3b645fc15697e87.rmeta: crates/bench/benches/e7_spatial_reuse.rs Cargo.toml

crates/bench/benches/e7_spatial_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
