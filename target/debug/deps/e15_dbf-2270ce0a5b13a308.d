/root/repo/target/debug/deps/e15_dbf-2270ce0a5b13a308.d: crates/bench/benches/e15_dbf.rs

/root/repo/target/debug/deps/libe15_dbf-2270ce0a5b13a308.rmeta: crates/bench/benches/e15_dbf.rs

crates/bench/benches/e15_dbf.rs:
