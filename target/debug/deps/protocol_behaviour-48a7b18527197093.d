/root/repo/target/debug/deps/protocol_behaviour-48a7b18527197093.d: crates/core/tests/protocol_behaviour.rs

/root/repo/target/debug/deps/protocol_behaviour-48a7b18527197093: crates/core/tests/protocol_behaviour.rs

crates/core/tests/protocol_behaviour.rs:
