/root/repo/target/debug/deps/ccr_bench-7659bb4e85057539.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libccr_bench-7659bb4e85057539.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
