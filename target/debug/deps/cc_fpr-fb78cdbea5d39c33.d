/root/repo/target/debug/deps/cc_fpr-fb78cdbea5d39c33.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs Cargo.toml

/root/repo/target/debug/deps/libcc_fpr-fb78cdbea5d39c33.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
