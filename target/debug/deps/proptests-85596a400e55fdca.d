/root/repo/target/debug/deps/proptests-85596a400e55fdca.d: crates/phys/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-85596a400e55fdca.rmeta: crates/phys/tests/proptests.rs Cargo.toml

crates/phys/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
