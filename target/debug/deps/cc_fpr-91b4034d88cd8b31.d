/root/repo/target/debug/deps/cc_fpr-91b4034d88cd8b31.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/debug/deps/libcc_fpr-91b4034d88cd8b31.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
