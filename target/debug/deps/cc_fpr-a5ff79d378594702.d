/root/repo/target/debug/deps/cc_fpr-a5ff79d378594702.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/debug/deps/libcc_fpr-a5ff79d378594702.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
