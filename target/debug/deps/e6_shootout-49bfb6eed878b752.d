/root/repo/target/debug/deps/e6_shootout-49bfb6eed878b752.d: crates/bench/benches/e6_shootout.rs

/root/repo/target/debug/deps/libe6_shootout-49bfb6eed878b752.rmeta: crates/bench/benches/e6_shootout.rs

crates/bench/benches/e6_shootout.rs:
