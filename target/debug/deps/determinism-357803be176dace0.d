/root/repo/target/debug/deps/determinism-357803be176dace0.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-357803be176dace0: tests/determinism.rs

tests/determinism.rs:
