/root/repo/target/debug/deps/proptests-2448c411bec9b7fe.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2448c411bec9b7fe: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
