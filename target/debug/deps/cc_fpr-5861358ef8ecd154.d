/root/repo/target/debug/deps/cc_fpr-5861358ef8ecd154.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/debug/deps/libcc_fpr-5861358ef8ecd154.rlib: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/debug/deps/libcc_fpr-5861358ef8ecd154.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
