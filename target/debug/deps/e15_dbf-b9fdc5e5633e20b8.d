/root/repo/target/debug/deps/e15_dbf-b9fdc5e5633e20b8.d: crates/bench/benches/e15_dbf.rs Cargo.toml

/root/repo/target/debug/deps/libe15_dbf-b9fdc5e5633e20b8.rmeta: crates/bench/benches/e15_dbf.rs Cargo.toml

crates/bench/benches/e15_dbf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
