/root/repo/target/debug/deps/ccr_bench-f731436eb4989336.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/ccr_bench-f731436eb4989336: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
