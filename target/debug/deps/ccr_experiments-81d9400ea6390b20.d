/root/repo/target/debug/deps/ccr_experiments-81d9400ea6390b20.d: crates/netsim/src/bin/ccr_experiments.rs

/root/repo/target/debug/deps/ccr_experiments-81d9400ea6390b20: crates/netsim/src/bin/ccr_experiments.rs

crates/netsim/src/bin/ccr_experiments.rs:
