/root/repo/target/debug/deps/e10_slot_sweep-d1242529f2e3fb2c.d: crates/bench/benches/e10_slot_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libe10_slot_sweep-d1242529f2e3fb2c.rmeta: crates/bench/benches/e10_slot_sweep.rs Cargo.toml

crates/bench/benches/e10_slot_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
