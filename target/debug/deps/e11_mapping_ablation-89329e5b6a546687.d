/root/repo/target/debug/deps/e11_mapping_ablation-89329e5b6a546687.d: crates/bench/benches/e11_mapping_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libe11_mapping_ablation-89329e5b6a546687.rmeta: crates/bench/benches/e11_mapping_ablation.rs Cargo.toml

crates/bench/benches/e11_mapping_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
