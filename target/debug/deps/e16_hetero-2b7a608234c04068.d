/root/repo/target/debug/deps/e16_hetero-2b7a608234c04068.d: crates/bench/benches/e16_hetero.rs Cargo.toml

/root/repo/target/debug/deps/libe16_hetero-2b7a608234c04068.rmeta: crates/bench/benches/e16_hetero.rs Cargo.toml

crates/bench/benches/e16_hetero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
