/root/repo/target/debug/deps/hetero_links-7f4c2ac826e88e0b.d: crates/core/tests/hetero_links.rs

/root/repo/target/debug/deps/hetero_links-7f4c2ac826e88e0b: crates/core/tests/hetero_links.rs

crates/core/tests/hetero_links.rs:
