/root/repo/target/debug/deps/end_to_end-e06a4698a8fbfe96.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e06a4698a8fbfe96: tests/end_to_end.rs

tests/end_to_end.rs:
