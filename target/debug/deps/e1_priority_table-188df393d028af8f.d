/root/repo/target/debug/deps/e1_priority_table-188df393d028af8f.d: crates/bench/benches/e1_priority_table.rs

/root/repo/target/debug/deps/libe1_priority_table-188df393d028af8f.rmeta: crates/bench/benches/e1_priority_table.rs

crates/bench/benches/e1_priority_table.rs:
