/root/repo/target/debug/deps/ccr_edf_suite-b65d33b26bcb42c6.d: src/lib.rs

/root/repo/target/debug/deps/libccr_edf_suite-b65d33b26bcb42c6.rmeta: src/lib.rs

src/lib.rs:
