/root/repo/target/debug/deps/ccr_bench-4afce56216c4b78b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libccr_bench-4afce56216c4b78b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libccr_bench-4afce56216c4b78b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
