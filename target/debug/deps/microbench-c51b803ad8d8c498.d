/root/repo/target/debug/deps/microbench-c51b803ad8d8c498.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-c51b803ad8d8c498.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
