/root/repo/target/debug/deps/e3_slot_length-1dc5bb1fa6dd3e23.d: crates/bench/benches/e3_slot_length.rs

/root/repo/target/debug/deps/libe3_slot_length-1dc5bb1fa6dd3e23.rmeta: crates/bench/benches/e3_slot_length.rs

crates/bench/benches/e3_slot_length.rs:
