/root/repo/target/debug/deps/ccr_edf-7a077cf57ce9d2a4.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/analysis.rs crates/core/src/arbitration.rs crates/core/src/config.rs crates/core/src/connection.rs crates/core/src/dbf.rs crates/core/src/fault.rs crates/core/src/mac.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/network.rs crates/core/src/node.rs crates/core/src/priority.rs crates/core/src/queues.rs crates/core/src/services/mod.rs crates/core/src/services/barrier.rs crates/core/src/services/reduce.rs crates/core/src/services/reliable.rs crates/core/src/services/short_msg.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libccr_edf-7a077cf57ce9d2a4.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/analysis.rs crates/core/src/arbitration.rs crates/core/src/config.rs crates/core/src/connection.rs crates/core/src/dbf.rs crates/core/src/fault.rs crates/core/src/mac.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/network.rs crates/core/src/node.rs crates/core/src/priority.rs crates/core/src/queues.rs crates/core/src/services/mod.rs crates/core/src/services/barrier.rs crates/core/src/services/reduce.rs crates/core/src/services/reliable.rs crates/core/src/services/short_msg.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/analysis.rs:
crates/core/src/arbitration.rs:
crates/core/src/config.rs:
crates/core/src/connection.rs:
crates/core/src/dbf.rs:
crates/core/src/fault.rs:
crates/core/src/mac.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/network.rs:
crates/core/src/node.rs:
crates/core/src/priority.rs:
crates/core/src/queues.rs:
crates/core/src/services/mod.rs:
crates/core/src/services/barrier.rs:
crates/core/src/services/reduce.rs:
crates/core/src/services/reliable.rs:
crates/core/src/services/short_msg.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
