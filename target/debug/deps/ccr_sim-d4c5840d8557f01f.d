/root/repo/target/debug/deps/ccr_sim-d4c5840d8557f01f.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats/mod.rs crates/sim/src/stats/counter.rs crates/sim/src/stats/histogram.rs crates/sim/src/stats/series.rs crates/sim/src/stats/summary.rs crates/sim/src/stats/timeweighted.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libccr_sim-d4c5840d8557f01f.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats/mod.rs crates/sim/src/stats/counter.rs crates/sim/src/stats/histogram.rs crates/sim/src/stats/series.rs crates/sim/src/stats/summary.rs crates/sim/src/stats/timeweighted.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats/mod.rs:
crates/sim/src/stats/counter.rs:
crates/sim/src/stats/histogram.rs:
crates/sim/src/stats/series.rs:
crates/sim/src/stats/summary.rs:
crates/sim/src/stats/timeweighted.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
