/root/repo/target/debug/deps/ccr_phys-0ff8891549c060bb.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/debug/deps/ccr_phys-0ff8891549c060bb: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
