/root/repo/target/debug/deps/e4_umax-508e3c247db8b7da.d: crates/bench/benches/e4_umax.rs

/root/repo/target/debug/deps/libe4_umax-508e3c247db8b7da.rmeta: crates/bench/benches/e4_umax.rs

crates/bench/benches/e4_umax.rs:
