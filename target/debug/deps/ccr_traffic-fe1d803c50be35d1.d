/root/repo/target/debug/deps/ccr_traffic-fe1d803c50be35d1.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/debug/deps/libccr_traffic-fe1d803c50be35d1.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
