/root/repo/target/debug/deps/e4_umax-743cc8b6af5ea558.d: crates/bench/benches/e4_umax.rs Cargo.toml

/root/repo/target/debug/deps/libe4_umax-743cc8b6af5ea558.rmeta: crates/bench/benches/e4_umax.rs Cargo.toml

crates/bench/benches/e4_umax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
