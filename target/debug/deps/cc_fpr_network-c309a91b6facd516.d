/root/repo/target/debug/deps/cc_fpr_network-c309a91b6facd516.d: crates/baseline/tests/cc_fpr_network.rs

/root/repo/target/debug/deps/cc_fpr_network-c309a91b6facd516: crates/baseline/tests/cc_fpr_network.rs

crates/baseline/tests/cc_fpr_network.rs:
