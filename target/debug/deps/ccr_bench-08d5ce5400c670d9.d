/root/repo/target/debug/deps/ccr_bench-08d5ce5400c670d9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libccr_bench-08d5ce5400c670d9.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
