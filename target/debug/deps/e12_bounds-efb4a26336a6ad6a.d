/root/repo/target/debug/deps/e12_bounds-efb4a26336a6ad6a.d: crates/bench/benches/e12_bounds.rs

/root/repo/target/debug/deps/libe12_bounds-efb4a26336a6ad6a.rmeta: crates/bench/benches/e12_bounds.rs

crates/bench/benches/e12_bounds.rs:
