/root/repo/target/release/deps/ccr_edf_suite-ed97edc16f49951a.d: src/lib.rs

/root/repo/target/release/deps/libccr_edf_suite-ed97edc16f49951a.rlib: src/lib.rs

/root/repo/target/release/deps/libccr_edf_suite-ed97edc16f49951a.rmeta: src/lib.rs

src/lib.rs:
