/root/repo/target/release/deps/ccr_bench-25c1b40aa013f8ec.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libccr_bench-25c1b40aa013f8ec.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libccr_bench-25c1b40aa013f8ec.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
