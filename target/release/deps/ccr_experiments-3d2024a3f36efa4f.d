/root/repo/target/release/deps/ccr_experiments-3d2024a3f36efa4f.d: crates/netsim/src/bin/ccr_experiments.rs

/root/repo/target/release/deps/ccr_experiments-3d2024a3f36efa4f: crates/netsim/src/bin/ccr_experiments.rs

crates/netsim/src/bin/ccr_experiments.rs:
