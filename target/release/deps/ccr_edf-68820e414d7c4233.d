/root/repo/target/release/deps/ccr_edf-68820e414d7c4233.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/analysis.rs crates/core/src/arbitration.rs crates/core/src/config.rs crates/core/src/connection.rs crates/core/src/dbf.rs crates/core/src/fault.rs crates/core/src/mac.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/network.rs crates/core/src/node.rs crates/core/src/priority.rs crates/core/src/queues.rs crates/core/src/services/mod.rs crates/core/src/services/barrier.rs crates/core/src/services/reduce.rs crates/core/src/services/reliable.rs crates/core/src/services/short_msg.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libccr_edf-68820e414d7c4233.rlib: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/analysis.rs crates/core/src/arbitration.rs crates/core/src/config.rs crates/core/src/connection.rs crates/core/src/dbf.rs crates/core/src/fault.rs crates/core/src/mac.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/network.rs crates/core/src/node.rs crates/core/src/priority.rs crates/core/src/queues.rs crates/core/src/services/mod.rs crates/core/src/services/barrier.rs crates/core/src/services/reduce.rs crates/core/src/services/reliable.rs crates/core/src/services/short_msg.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libccr_edf-68820e414d7c4233.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/analysis.rs crates/core/src/arbitration.rs crates/core/src/config.rs crates/core/src/connection.rs crates/core/src/dbf.rs crates/core/src/fault.rs crates/core/src/mac.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/network.rs crates/core/src/node.rs crates/core/src/priority.rs crates/core/src/queues.rs crates/core/src/services/mod.rs crates/core/src/services/barrier.rs crates/core/src/services/reduce.rs crates/core/src/services/reliable.rs crates/core/src/services/short_msg.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/analysis.rs:
crates/core/src/arbitration.rs:
crates/core/src/config.rs:
crates/core/src/connection.rs:
crates/core/src/dbf.rs:
crates/core/src/fault.rs:
crates/core/src/mac.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/network.rs:
crates/core/src/node.rs:
crates/core/src/priority.rs:
crates/core/src/queues.rs:
crates/core/src/services/mod.rs:
crates/core/src/services/barrier.rs:
crates/core/src/services/reduce.rs:
crates/core/src/services/reliable.rs:
crates/core/src/services/short_msg.rs:
crates/core/src/wire.rs:
