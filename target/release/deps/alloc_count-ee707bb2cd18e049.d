/root/repo/target/release/deps/alloc_count-ee707bb2cd18e049.d: crates/core/tests/alloc_count.rs

/root/repo/target/release/deps/alloc_count-ee707bb2cd18e049: crates/core/tests/alloc_count.rs

crates/core/tests/alloc_count.rs:
