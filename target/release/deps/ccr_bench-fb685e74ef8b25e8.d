/root/repo/target/release/deps/ccr_bench-fb685e74ef8b25e8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libccr_bench-fb685e74ef8b25e8.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libccr_bench-fb685e74ef8b25e8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
