/root/repo/target/release/deps/protocol_behaviour-7a6ae527b00fb72c.d: crates/core/tests/protocol_behaviour.rs

/root/repo/target/release/deps/protocol_behaviour-7a6ae527b00fb72c: crates/core/tests/protocol_behaviour.rs

crates/core/tests/protocol_behaviour.rs:
