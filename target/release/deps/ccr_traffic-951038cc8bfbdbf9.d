/root/repo/target/release/deps/ccr_traffic-951038cc8bfbdbf9.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/release/deps/libccr_traffic-951038cc8bfbdbf9.rlib: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/release/deps/libccr_traffic-951038cc8bfbdbf9.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
