/root/repo/target/release/deps/fast_forward-fdcd1df7e7e088fa.d: crates/core/tests/fast_forward.rs

/root/repo/target/release/deps/fast_forward-fdcd1df7e7e088fa: crates/core/tests/fast_forward.rs

crates/core/tests/fast_forward.rs:
