/root/repo/target/release/deps/proptests-da9f8b5fd07e770e.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-da9f8b5fd07e770e: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
