/root/repo/target/release/deps/ccr_traffic-b8ce4e1b87f1d5d4.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/release/deps/ccr_traffic-b8ce4e1b87f1d5d4: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
