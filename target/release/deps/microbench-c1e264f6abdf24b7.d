/root/repo/target/release/deps/microbench-c1e264f6abdf24b7.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-c1e264f6abdf24b7: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
