/root/repo/target/release/deps/proptests-6fabf4936a912587.d: crates/sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-6fabf4936a912587: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
