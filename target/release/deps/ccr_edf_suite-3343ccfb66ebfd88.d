/root/repo/target/release/deps/ccr_edf_suite-3343ccfb66ebfd88.d: src/lib.rs

/root/repo/target/release/deps/ccr_edf_suite-3343ccfb66ebfd88: src/lib.rs

src/lib.rs:
