/root/repo/target/release/deps/cc_fpr-5d08d7c4d8b45e1e.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/release/deps/cc_fpr-5d08d7c4d8b45e1e: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
