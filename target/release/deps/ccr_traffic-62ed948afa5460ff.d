/root/repo/target/release/deps/ccr_traffic-62ed948afa5460ff.d: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/release/deps/libccr_traffic-62ed948afa5460ff.rlib: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

/root/repo/target/release/deps/libccr_traffic-62ed948afa5460ff.rmeta: crates/traffic/src/lib.rs crates/traffic/src/bursty.rs crates/traffic/src/periodic.rs crates/traffic/src/poisson.rs crates/traffic/src/scenarios.rs crates/traffic/src/uunifast.rs

crates/traffic/src/lib.rs:
crates/traffic/src/bursty.rs:
crates/traffic/src/periodic.rs:
crates/traffic/src/poisson.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/uunifast.rs:
