/root/repo/target/release/deps/ccr_phys-aa7000c6174d6843.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/release/deps/ccr_phys-aa7000c6174d6843: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
