/root/repo/target/release/deps/fault_tolerance-baf6f3580c7fde9f.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-baf6f3580c7fde9f: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
