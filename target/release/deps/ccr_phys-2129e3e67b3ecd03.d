/root/repo/target/release/deps/ccr_phys-2129e3e67b3ecd03.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/release/deps/libccr_phys-2129e3e67b3ecd03.rlib: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/release/deps/libccr_phys-2129e3e67b3ecd03.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
