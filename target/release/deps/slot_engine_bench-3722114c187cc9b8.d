/root/repo/target/release/deps/slot_engine_bench-3722114c187cc9b8.d: crates/bench/src/bin/slot_engine_bench.rs

/root/repo/target/release/deps/slot_engine_bench-3722114c187cc9b8: crates/bench/src/bin/slot_engine_bench.rs

crates/bench/src/bin/slot_engine_bench.rs:
