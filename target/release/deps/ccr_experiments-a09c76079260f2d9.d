/root/repo/target/release/deps/ccr_experiments-a09c76079260f2d9.d: crates/netsim/src/bin/ccr_experiments.rs

/root/repo/target/release/deps/ccr_experiments-a09c76079260f2d9: crates/netsim/src/bin/ccr_experiments.rs

crates/netsim/src/bin/ccr_experiments.rs:
