/root/repo/target/release/deps/ccr_bench-d3a76ec5ca0ad7dd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/ccr_bench-d3a76ec5ca0ad7dd: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
