/root/repo/target/release/deps/determinism-b8339226d4b062bf.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-b8339226d4b062bf: tests/determinism.rs

tests/determinism.rs:
