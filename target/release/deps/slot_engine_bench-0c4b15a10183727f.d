/root/repo/target/release/deps/slot_engine_bench-0c4b15a10183727f.d: crates/bench/src/bin/slot_engine_bench.rs

/root/repo/target/release/deps/slot_engine_bench-0c4b15a10183727f: crates/bench/src/bin/slot_engine_bench.rs

crates/bench/src/bin/slot_engine_bench.rs:
