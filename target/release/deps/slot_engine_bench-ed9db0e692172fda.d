/root/repo/target/release/deps/slot_engine_bench-ed9db0e692172fda.d: crates/bench/src/bin/slot_engine_bench.rs

/root/repo/target/release/deps/slot_engine_bench-ed9db0e692172fda: crates/bench/src/bin/slot_engine_bench.rs

crates/bench/src/bin/slot_engine_bench.rs:
