/root/repo/target/release/deps/ccr_phys-22fa39dfbd2ad2f2.d: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/release/deps/libccr_phys-22fa39dfbd2ad2f2.rlib: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

/root/repo/target/release/deps/libccr_phys-22fa39dfbd2ad2f2.rmeta: crates/phys/src/lib.rs crates/phys/src/params.rs crates/phys/src/ring.rs crates/phys/src/timing.rs

crates/phys/src/lib.rs:
crates/phys/src/params.rs:
crates/phys/src/ring.rs:
crates/phys/src/timing.rs:
