/root/repo/target/release/deps/cc_fpr-5f902310bc5857fa.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/release/deps/libcc_fpr-5f902310bc5857fa.rlib: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/release/deps/libcc_fpr-5f902310bc5857fa.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
