/root/repo/target/release/deps/cc_fpr_network-79f7791878113ca7.d: crates/baseline/tests/cc_fpr_network.rs

/root/repo/target/release/deps/cc_fpr_network-79f7791878113ca7: crates/baseline/tests/cc_fpr_network.rs

crates/baseline/tests/cc_fpr_network.rs:
