/root/repo/target/release/deps/guarantees-a20de669a1e311fe.d: tests/guarantees.rs

/root/repo/target/release/deps/guarantees-a20de669a1e311fe: tests/guarantees.rs

tests/guarantees.rs:
