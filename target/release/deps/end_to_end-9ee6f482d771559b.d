/root/repo/target/release/deps/end_to_end-9ee6f482d771559b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-9ee6f482d771559b: tests/end_to_end.rs

tests/end_to_end.rs:
