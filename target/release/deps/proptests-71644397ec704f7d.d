/root/repo/target/release/deps/proptests-71644397ec704f7d.d: crates/phys/tests/proptests.rs

/root/repo/target/release/deps/proptests-71644397ec704f7d: crates/phys/tests/proptests.rs

crates/phys/tests/proptests.rs:
