/root/repo/target/release/deps/cc_fpr-ac194a617aef753d.d: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/release/deps/libcc_fpr-ac194a617aef753d.rlib: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

/root/repo/target/release/deps/libcc_fpr-ac194a617aef753d.rmeta: crates/baseline/src/lib.rs crates/baseline/src/analysis.rs crates/baseline/src/mac.rs crates/baseline/src/tdma.rs

crates/baseline/src/lib.rs:
crates/baseline/src/analysis.rs:
crates/baseline/src/mac.rs:
crates/baseline/src/tdma.rs:
