/root/repo/target/release/deps/hetero_links-341377d0bc5468af.d: crates/core/tests/hetero_links.rs

/root/repo/target/release/deps/hetero_links-341377d0bc5468af: crates/core/tests/hetero_links.rs

crates/core/tests/hetero_links.rs:
