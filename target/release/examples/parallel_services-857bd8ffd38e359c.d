/root/repo/target/release/examples/parallel_services-857bd8ffd38e359c.d: examples/parallel_services.rs

/root/repo/target/release/examples/parallel_services-857bd8ffd38e359c: examples/parallel_services.rs

examples/parallel_services.rs:
