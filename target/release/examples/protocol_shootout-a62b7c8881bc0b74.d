/root/repo/target/release/examples/protocol_shootout-a62b7c8881bc0b74.d: examples/protocol_shootout.rs

/root/repo/target/release/examples/protocol_shootout-a62b7c8881bc0b74: examples/protocol_shootout.rs

examples/protocol_shootout.rs:
