/root/repo/target/release/examples/multimedia_admission-5aea8d69f3e492e1.d: examples/multimedia_admission.rs

/root/repo/target/release/examples/multimedia_admission-5aea8d69f3e492e1: examples/multimedia_admission.rs

examples/multimedia_admission.rs:
