/root/repo/target/release/examples/radar_pipeline-3c12d4b698ea3d08.d: examples/radar_pipeline.rs

/root/repo/target/release/examples/radar_pipeline-3c12d4b698ea3d08: examples/radar_pipeline.rs

examples/radar_pipeline.rs:
