/root/repo/target/release/examples/constrained_deadlines-5152763e85f2be56.d: examples/constrained_deadlines.rs

/root/repo/target/release/examples/constrained_deadlines-5152763e85f2be56: examples/constrained_deadlines.rs

examples/constrained_deadlines.rs:
