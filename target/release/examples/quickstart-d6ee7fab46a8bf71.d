/root/repo/target/release/examples/quickstart-d6ee7fab46a8bf71.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d6ee7fab46a8bf71: examples/quickstart.rs

examples/quickstart.rs:
