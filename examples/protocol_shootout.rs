//! CCR-EDF vs CC-FPR head-to-head on identical traffic — a miniature of
//! experiment E6 (the paper's motivating comparison).
//!
//! Run with: `cargo run --release --example protocol_shootout`

use ccr_edf_suite::edf::arbitration::CcrEdfMac;
use ccr_edf_suite::prelude::*;

fn main() {
    let n = 16u16;
    let cfg = NetworkConfig::builder(n)
        .slot_bytes(2048)
        .build_auto_slot()
        .unwrap();
    let model = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(42);
    let slots = 60_000u64;

    println!("N = {n}, U_max = {:.4} (Eq. 6)\n", model.u_max());
    println!(
        "{:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "load/U_max", "EDF miss%", "FPR miss%", "EDF p99 µs", "FPR p99 µs"
    );

    for load in [0.2, 0.4, 0.6, 0.8, 0.9, 1.0] {
        let mut rng = seq
            .subsequence("load", (load * 100.0) as u64)
            .stream("traffic", 0);
        let set = PeriodicSetBuilder::new(n, n as usize * 2, load * model.u_max(), cfg.slot_time())
            .periods(50, 2000)
            .generate(&mut rng);
        let wl = Workload::raw(set);
        let edf = run_with_mac(cfg.clone(), CcrEdfMac, &wl, slots);
        let fpr = run_with_mac(cfg.clone(), CcFprMac, &wl, slots);
        println!(
            "{:>10.2} | {:>11.3}% {:>11.3}% | {:>12.1} {:>12.1}",
            load,
            100.0 * edf.rt_miss_ratio,
            100.0 * fpr.rt_miss_ratio,
            edf.rt_latency_p99_us,
            fpr.rt_latency_p99_us,
        );
        if load <= 0.9 {
            assert!(
                edf.rt_miss_ratio < 1e-3,
                "CCR-EDF must be clean below U_max"
            );
        }
    }

    println!(
        "\nCC-FPR's round-robin clock break and ring-order booking cost it deadlines \
         well below the load CCR-EDF sustains — the paper's core claim."
    );
}
