//! Radar signal-processing pipeline (the paper's flagship application,
//! Section 1 / refs [1], [2]).
//!
//! Five processing stages are mapped to ring nodes 0..4; every coherent
//! processing interval (CPI) each stage ships its data cube to the next.
//! All transfers are admitted hard real-time connections; spatial reuse
//! lets several neighbour transfers share a slot.
//!
//! Run with: `cargo run --release --example radar_pipeline`

use ccr_edf_suite::prelude::*;

fn main() {
    let n = 8u16;
    let cfg = NetworkConfig::builder(n)
        .slot_bytes(4096)
        .link_length_m(5.0) // an embedded cabinet-scale system
        .build_auto_slot()
        .unwrap();
    let slot = cfg.slot_time();

    let mut radar = RadarScenario::default_on(n);
    radar.cube_slots = 24; // ~96 KiB cubes at 4 KiB slots
    radar.cpi = TimeDelta::from_ms(1);

    println!(
        "radar pipeline  : {} stages, CPI {}",
        radar.stages, radar.cpi
    );
    println!(
        "pipeline demand : {:.4} of capacity (U_max {:.4})",
        radar.utilisation(slot),
        AnalyticModel::new(&cfg).u_max()
    );

    let mut net = RingNetwork::new_ccr_edf(cfg);
    for conn in radar.connections() {
        net.open_connection(conn).expect("pipeline admitted");
    }

    // Background: bulk recording traffic (non-real-time) from the last
    // stage to an archive node — it must never disturb the pipeline.
    use ccr_edf_suite::edf::message::{Destination, Message};
    for k in 0..2_000u64 {
        let at = SimTime::from_us(k * 20);
        net.submit_message(
            at,
            Message::non_real_time(NodeId(4), Destination::Unicast(NodeId(7)), 4, at),
        );
    }

    // Simulate 50 ms — 50 CPIs through the pipeline.
    net.run_until(SimTime::from_ms(50));

    let m = net.metrics();
    println!("\n--- results ---");
    println!("slots executed  : {}", m.slots.get());
    println!(
        "cube transfers  : {} delivered, {} misses",
        m.delivered_rt.get(),
        m.rt_deadline_misses.get()
    );
    println!(
        "archive traffic : {} bulk messages delivered",
        m.delivered_nrt.get()
    );
    println!("reuse factor    : {:.2} grants/slot", m.reuse_factor());
    println!(
        "cube latency    : mean {:.1} µs, p99 {:.1} µs (CPI = 1000 µs)",
        m.latency_rt.mean().unwrap_or(0.0) / 1e6,
        m.latency_rt.quantile(0.99).unwrap_or(0) as f64 / 1e6,
    );

    assert_eq!(m.rt_deadline_misses.get(), 0, "pipeline must be loss-free");
    assert!(m.delivered_rt.get() >= 4 * 45, "pipeline stalled");
    println!("\nOK: every data cube arrived within its CPI.");
}
