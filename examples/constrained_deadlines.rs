//! Constrained deadlines and sound admission (the `ccr_edf::dbf`
//! extension) — when a message must arrive well before its next release.
//!
//! A control loop samples every 500 µs but needs the sample delivered
//! within 60 µs of release (deadline « period). The paper's utilisation
//! test only sees `e·t_slot/P` and admits far too much; the demand-bound
//! policy admits exactly what the tight deadlines allow.
//!
//! Run with: `cargo run --release --example constrained_deadlines`

use ccr_edf_suite::prelude::*;

fn control_loop(src: u16, dst: u16) -> ConnectionSpec {
    ConnectionSpec::unicast(NodeId(src), NodeId(dst))
        .period(TimeDelta::from_us(500))
        .size_slots(8) // a 16 KiB sample at 2 KiB slots
        .deadline(TimeDelta::from_us(60))
}

fn drive(policy: AdmissionPolicy) -> (u32, u64, u64) {
    let cfg = NetworkConfig::builder(8)
        .slot_bytes(2048)
        .admission_policy(policy)
        .build_auto_slot()
        .unwrap();
    let mut net = RingNetwork::new_ccr_edf(cfg);
    let mut admitted = 0u32;
    for i in 0..8u16 {
        if net.open_connection(control_loop(i, (i + 3) % 8)).is_ok() {
            admitted += 1;
        }
    }
    net.run_until(SimTime::from_ms(20));
    let m = net.metrics();
    (admitted, m.delivered_rt.get(), m.rt_deadline_misses.get())
}

fn main() {
    let cfg = NetworkConfig::builder(8)
        .slot_bytes(2048)
        .build_auto_slot()
        .unwrap();
    let model = AnalyticModel::new(&cfg);
    let spec = control_loop(0, 3);
    println!(
        "control loop: e = {} slots every {}, deadline {}",
        spec.size_slots,
        spec.period,
        spec.effective_deadline()
    );
    println!(
        "utilisation per loop: {:.4} (u_max {:.4}) — Eq. 5 would admit ~{} of them\n",
        spec.utilisation(cfg.slot_time()),
        model.u_max(),
        (model.u_max() / spec.utilisation(cfg.slot_time())) as u32
    );

    let (u_adm, u_del, u_miss) = drive(AdmissionPolicy::Utilisation);
    let (d_adm, d_del, d_miss) = drive(AdmissionPolicy::DemandBound);

    println!("policy       admitted  delivered  misses");
    println!(
        "utilisation  {u_adm:>8}  {u_del:>9}  {u_miss:>6}   <- paper's Eq. 5: unsound for D < P"
    );
    println!("demand-bound {d_adm:>8}  {d_del:>9}  {d_miss:>6}   <- ccr_edf::dbf extension");

    assert!(u_miss > 0, "utilisation policy should overcommit here");
    assert_eq!(d_miss, 0, "demand-bound admission keeps the guarantee");
    assert!(d_adm < u_adm);
    println!(
        "\nOK: the demand-bound test refused {} loops the utilisation test \
         wrongly admitted — and everything it admitted met every 60 µs deadline.",
        u_adm - d_adm
    );
}
