//! Distributed multimedia with runtime admission control (Sections 1, 6).
//!
//! Voice channels ask for guaranteed connections *through the network
//! itself* (best-effort request/response to the designated admission node);
//! bursty video rides best effort; once the ring is full, further voice
//! channels are refused — and everything admitted stays miss-free.
//!
//! Run with: `cargo run --release --example multimedia_admission`

use ccr_edf_suite::prelude::*;

fn main() {
    let n = 16u16;
    let cfg = NetworkConfig::builder(n)
        .slot_bytes(2048)
        .build_auto_slot()
        .unwrap();
    let mut net = RingNetwork::new_ccr_edf(cfg);
    let mut app = AdmissionApp::for_network(&net);
    let u_max = net.analytic().u_max();

    let media = MultimediaScenario {
        n_nodes: n,
        voice_channels: 64, // far more than fit — admission must refuse some
        voice_period: TimeDelta::from_us(40),
        video_streams: 6,
        video_on_rate: 150_000.0,
    };

    // Best-effort video bursts, pre-scheduled.
    let seq = SeedSequence::new(2002);
    for (i, gen) in media.video_generators().iter().enumerate() {
        let mut rng = seq.stream("video", i as u64);
        for (at, msg) in gen.schedule(&mut rng, SimTime::ZERO, TimeDelta::from_ms(30)) {
            net.submit_message(at, msg);
        }
    }

    // Voice channels request admission over the network, one every 50 slots.
    let voice = media.voice_connections();
    let mut next_request = 0usize;
    for s in 0..40_000u64 {
        if s % 50 == 0 && next_request < voice.len() {
            let spec = voice[next_request].clone();
            let requester = spec.src;
            app.request(&mut net, requester, spec);
            next_request += 1;
        }
        let deliveries = net.step_slot().deliveries.clone();
        app.process_deliveries(&mut net, &deliveries);
    }

    let m = net.metrics();
    println!("--- admission over the network ---");
    println!("voice requested : {}", app.stats.requested.get());
    println!("voice admitted  : {}", app.stats.accepted.get());
    println!("voice refused   : {}", app.stats.rejected.get());
    println!(
        "admitted U      : {:.4} of U_max {:.4}",
        net.admission().admitted_utilisation(),
        u_max
    );
    println!(
        "decision latency: mean {:.1} slots",
        app.stats.decision_latency.mean().unwrap_or(0.0) / net.config().slot_time().as_ps() as f64
    );

    println!("\n--- traffic ---");
    println!(
        "voice delivered : {} ({} misses, {} bound violations)",
        m.delivered_rt.get(),
        m.rt_deadline_misses.get(),
        m.rt_bound_violations.get()
    );
    println!(
        "video delivered : {} best-effort messages ({} soft-late)",
        m.delivered_be.get(),
        m.be_deadline_misses.get()
    );

    assert!(app.stats.accepted.get() > 0);
    assert!(
        app.stats.rejected.get() > 0,
        "overload should refuse someone"
    );
    assert_eq!(m.rt_bound_violations.get(), 0);
    assert!(net.admission().admitted_utilisation() <= u_max + 1e-9);
    println!("\nOK: the ring filled to U_max and refused the rest — guarantees held.");
}
