//! A real UDP client riding the certified fabric: the gateway binds a
//! loopback socket, admits two virtual links through EDF + calculus
//! admission, and a client thread fires datagrams at it — the guaranteed
//! link at its admitted rate, the best-effort link well past its rate so
//! the token bucket has to shed.
//!
//! Run with: `cargo run --release --example udp_gateway`

use ccr_edf_suite::gateway::{Header, PacketKind, UdpBackend};
use ccr_edf_suite::prelude::*;
use ccr_edf_suite::sim::TimeDelta;
use std::net::UdpSocket;
use std::time::Duration;

const PERIOD: TimeDelta = TimeDelta::from_ms(2);
const GUARANTEED: u16 = 1;
const BEST_EFFORT: u16 = 2;

fn data(link: u16, seq: u32, payload: &[u8]) -> Vec<u8> {
    Header {
        kind: PacketKind::Data,
        link,
        seq,
        len: 0, // encode overrides with payload.len()
        budget_us: 0,
    }
    .encode(payload)
}

fn main() {
    // 1. A two-ring chain fabric, six nodes per ring.
    let topo = FabricTopology::chain(2, 6);
    let cfg = FabricConfig::uniform(topo, 2_048, 7).expect("fabric config");
    let mut fabric = Fabric::new(cfg).expect("fabric");

    // 2. Two virtual links, admitted through the same gate as any native
    //    connection: one guaranteed, one best-effort.
    let gw_cfg = GatewayConfig::new(vec![
        VirtualLink::new(GUARANTEED, GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
            .period(PERIOD),
        VirtualLink::new(
            BEST_EFFORT,
            GlobalNodeId::new(0, 2),
            GlobalNodeId::new(1, 4),
        )
        .period(PERIOD)
        .class(DeadlineClass::BestEffort),
    ])
    .expect("gateway config");
    let (mut gateway, report) = Gateway::open(&gw_cfg, &mut fabric);
    println!("admitted links   : {:?}", report.admitted);
    assert!(report.rejected.is_empty());

    // 3. Bind the UDP backend on an ephemeral loopback port. Wall slots
    //    are dilated to ~0.5 ms so the demo runs at a watchable pace.
    let slot = fabric.segment_envs()[0].slot;
    let dilation = (500_000 / (slot.as_ps() / 1_000).max(1)).max(1);
    let mut backend =
        UdpBackend::bind("127.0.0.1:0", slot, dilation, 256).expect("bind gateway socket");
    let gateway_addr = backend.local_addr().expect("bound address");
    println!("gateway listening: {gateway_addr}");

    // 4. The client: a plain UdpSocket on its own thread. The guaranteed
    //    link gets one datagram per period; the best-effort link is
    //    driven 4x too fast, so most of its datagrams must be shed.
    let client = std::thread::spawn(move || {
        let sock = UdpSocket::bind("127.0.0.1:0").expect("client socket");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // One sim period in dilated wall time, so the guaranteed link is
        // driven exactly at its admitted rate.
        let period_wall = Duration::from_millis(2 * dilation);
        for k in 0..6u32 {
            let msg = format!("guaranteed-{k}");
            sock.send_to(&data(GUARANTEED, k, msg.as_bytes()), gateway_addr)
                .expect("send");
            for b in 0..4u32 {
                let msg = format!("besteffort-{k}-{b}");
                sock.send_to(&data(BEST_EFFORT, k * 4 + b, msg.as_bytes()), gateway_addr)
                    .expect("send");
            }
            std::thread::sleep(period_wall);
        }
        // Collect replies until the socket goes quiet.
        let mut buf = [0u8; 2_048];
        let mut replies = Vec::new();
        while let Ok((n, _)) = sock.recv_from(&mut buf) {
            if let Ok((h, payload)) = Header::decode(&buf[..n]) {
                replies.push((h, payload.to_vec()));
            }
            sock.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
        }
        replies
    });

    // 5. Drive the gateway for enough wall-dilated slots to carry it all.
    let period_slots = PERIOD.as_ps().div_ceil(slot.as_ps()) + 1;
    let stats = backend
        .run(&mut gateway, &mut fabric, 10 * period_slots)
        .expect("gateway run");
    println!(
        "gateway run      : {} slots, {} frames in, {} out, {} handoff drops",
        stats.slots, stats.frames_in, stats.frames_out, stats.handoff_dropped
    );

    let replies = client.join().expect("client thread");
    for (h, payload) in &replies {
        println!(
            "  {:?} link {} seq {} budget {} µs  {:?}",
            h.kind,
            h.link,
            h.seq,
            h.budget_us,
            String::from_utf8_lossy(payload)
        );
    }

    // 6. The contract in numbers: the guaranteed link missed nothing;
    //    the best-effort overdrive was shed at the edge, counted.
    let g = gateway.link_metrics(GUARANTEED).unwrap();
    let be = gateway.link_metrics(BEST_EFFORT).unwrap();
    println!(
        "guaranteed link  : {} injected, {} delivered, {} missed",
        g.injected.get(),
        g.delivered.get(),
        g.deadline_missed.get()
    );
    println!(
        "best-effort link : {} offered, {} injected, {} shed",
        be.ingress_frames.get(),
        be.injected.get(),
        be.shed.get()
    );
    assert_eq!(g.deadline_missed.get(), 0, "guaranteed misses nothing");
    assert!(be.shed.get() > 0, "the 4x overdrive had to shed");
}
