//! Parallel-computing services (Sections 1, 7 / ref [11]): barrier
//! synchronisation, global reduction, short messages and reliable
//! transmission — all carried by the control channel, so they cost slots,
//! not data bandwidth.
//!
//! Simulates a bulk-synchronous-parallel (BSP) computation: each superstep
//! the nodes exchange data, reduce a checksum, and barrier before the next
//! step — while a lossy link exercises the acknowledgement machinery.
//!
//! Run with: `cargo run --release --example parallel_services`

use ccr_edf_suite::edf::config::FaultConfig;
use ccr_edf_suite::edf::message::{Destination, Message};
use ccr_edf_suite::edf::services::ReduceOp;
use ccr_edf_suite::edf::wire::ServiceWireConfig;
use ccr_edf_suite::prelude::*;

fn main() {
    let n = 8u16;
    let cfg = NetworkConfig::builder(n)
        .slot_bytes(1024)
        .services(ServiceWireConfig::ALL)
        .faults(FaultConfig {
            data_loss_prob: 0.02, // 2% packet loss to exercise reliability
            ..Default::default()
        })
        .build_auto_slot()
        .unwrap();
    let mut net = RingNetwork::new_ccr_edf(cfg);
    net.set_reduce_op(ReduceOp::Sum);

    let supersteps = 25u32;
    println!("BSP computation: {n} workers, {supersteps} supersteps, 2% packet loss\n");

    for step in 0..supersteps {
        // 1. Each worker ships a (reliable) partial result to its neighbour.
        for i in 0..n {
            let dst = NodeId((i + 1) % n);
            let now = net.now();
            net.submit_message(
                now,
                Message::non_real_time(NodeId(i), Destination::Unicast(dst), 2, now)
                    .with_reliable(),
            );
        }
        // 2. Everyone contributes to a global checksum reduction.
        for i in 0..n {
            net.reduce_submit(NodeId(i), (step + 1) * (i as u32 + 1));
        }
        let mut reduced = None;
        for _ in 0..200 {
            let out = net.step_slot();
            if let Some(v) = out.reduce_result {
                reduced = Some(v);
                break;
            }
        }
        let expect: u32 = (1..=n as u32).map(|i| (step + 1) * i).sum();
        assert_eq!(reduced, Some(expect), "checksum mismatch at step {step}");

        // 3. Barrier before the next superstep.
        for i in 0..n {
            net.barrier_enter(NodeId(i));
        }
        let mut released = false;
        for _ in 0..200 {
            if net.step_slot().barrier_completed {
                released = true;
                break;
            }
        }
        assert!(released, "barrier stalled at step {step}");

        // 4. A couple of short control notes between workers.
        net.short_send(NodeId(0), NodeId(4), step as u16);
        net.step_slot();
    }

    // Drain remaining reliable traffic.
    for _ in 0..20_000 {
        if net.queued_messages() == 0 {
            break;
        }
        net.step_slot();
    }

    let m = net.metrics();
    println!("slots executed      : {}", m.slots.get());
    println!("reductions          : {}", m.reductions_completed.get());
    println!("barriers            : {}", m.barriers_completed.get());
    println!("short messages      : {}", m.short_delivered.get());
    println!("reliable messages   : {}", m.delivered_nrt.get());
    println!("packets lost (fault): {}", m.data_lost.get());
    println!("retransmissions     : {}", m.retransmissions.get());
    println!(
        "barrier latency     : mean {:.1} slots",
        m.barrier_latency.mean().unwrap_or(0.0) / net.config().slot_time().as_ps() as f64
    );

    assert_eq!(m.reductions_completed.get() as u32, supersteps);
    assert_eq!(m.barriers_completed.get() as u32, supersteps);
    assert_eq!(
        m.delivered_nrt.get() as u32,
        supersteps * n as u32,
        "every reliable message must arrive despite loss"
    );
    println!("\nOK: all supersteps completed; loss was absorbed by retransmission.");
}
