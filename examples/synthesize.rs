//! Topology synthesis end to end: parse a traffic matrix from TOML,
//! synthesize the cheapest calculus-certified bridged-ring fabric for it,
//! then build that fabric and watch it honour every certificate live.
//!
//! Run with: `cargo run --release --example synthesize`

use ccr_edf_suite::prelude::*;
use ccr_edf_suite::synth::Criticality;

/// An avionics-flavoured matrix: two sensor neighbourhoods with tight
/// local control loops, a slower cross-bay telemetry pair, and one
/// best-effort logging flow that only needs a route.
const MATRIX_TOML: &str = r#"
[[matrix]]
stations = 8

# Bay A control loop: 0 -> 1 -> 2 -> 3 -> 0, 500 us period, 350 us deadline.
[[flow]]
src = 0
dst = 1
period_us = 500
deadline_us = 350

[[flow]]
src = 1
dst = 2
period_us = 500
deadline_us = 350

[[flow]]
src = 2
dst = 3
period_us = 500
deadline_us = 350

[[flow]]
src = 3
dst = 0
period_us = 500
deadline_us = 350

# Bay B control loop: 4 -> 5 -> 6 -> 7 -> 4.
[[flow]]
src = 4
dst = 5
period_us = 500
deadline_us = 350

[[flow]]
src = 5
dst = 6
period_us = 500
deadline_us = 350

[[flow]]
src = 6
dst = 7
period_us = 500
deadline_us = 350

[[flow]]
src = 7
dst = 4
period_us = 500
deadline_us = 350

# Cross-bay telemetry, slower but still guaranteed.
[[flow]]
src = 0
dst = 4
period_us = 2000
deadline_us = 1200
size_slots = 2

[[flow]]
src = 6
dst = 2
period_us = 2000
deadline_us = 1200

# Maintenance logging: routed, never certified.
[[flow]]
src = 3
dst = 5
period_us = 1000
criticality = "best-effort"
"#;

fn main() {
    // 1. Parse and synthesize. The synthesizer owns every topology
    //    decision: ring count, ring sizes, station placement, bridges.
    let matrix = TrafficMatrix::parse(MATRIX_TOML).expect("matrix parses");
    let synth = synthesize(&matrix, &SynthConfig::default()).expect("matrix is feasible");

    println!("{}", synth.report);
    println!("machine-readable report:\n{}", synth.report.to_json());

    // 2. Build the synthesized fabric. `fabric_config` carries the exact
    //    slot size the final certification used, so the engine's own
    //    calculus certificates reproduce the synthesis bounds bit for bit.
    let mut fabric =
        Fabric::new(synth.fabric_config(7).expect("config builds")).expect("fabric builds");

    let mut opened = Vec::new();
    for (k, flow) in matrix.flows.iter().enumerate() {
        match flow.criticality {
            Criticality::Guaranteed => {
                let fid = fabric
                    .open_connection(synth.connection_spec(k))
                    .expect("synthesized topology admits its own matrix");
                opened.push((k, fid));
            }
            Criticality::BestEffort => {
                fabric
                    .open_best_effort(synth.connection_spec(k))
                    .expect("best-effort flow routes");
            }
        }
    }

    // Certificates are a property of the whole admitted set — read them
    // only once every flow is resident.
    println!("flow  certificate     synthesis bound  match");
    for &(k, fid) in &opened {
        let engine = fabric.e2e_bound(fid).expect("certified");
        let (_, synthesis) = synth.bounds.iter().find(|(i, _)| *i == k).expect("bound");
        println!(
            "{k:>4}  {engine:>14}  {synthesis:>15}  {}",
            if engine == *synthesis { "yes" } else { "NO" }
        );
        assert_eq!(engine, *synthesis, "certificates must agree");
    }

    // 3. Soak: periodic sources drive the guaranteed flows for 10k slots;
    //    every delivery must land inside its certificate.
    fabric.run_slots(10_000);
    let delivered = fabric.metrics().e2e_delivered.get();
    let met = fabric.metrics().e2e_met.get();
    println!("\nsoak: {delivered} guaranteed deliveries, {met} within deadline");
    assert_eq!(delivered, met, "a certified fabric never misses");

    for &(k, fid) in &opened {
        if let Some(observed) = fabric.observed_e2e_max(fid) {
            let bound = fabric.e2e_bound(fid).expect("certified");
            assert!(observed <= bound, "flow {k} broke its certificate");
            println!(
                "flow {k}: observed max {observed} within bound {bound} ({:.0}% of budget)",
                100.0 * observed.as_ps() as f64 / bound.as_ps() as f64
            );
        }
    }
    println!("\nevery delivery stayed inside its calculus certificate.");
}
