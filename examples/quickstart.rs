//! Quickstart: build an 8-node CCR-EDF ring, admit one guaranteed
//! connection, mix in best-effort traffic, and read the metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use ccr_edf_suite::edf::message::{Destination, Message};
use ccr_edf_suite::prelude::*;

fn main() {
    // 1. Configure the ring: 8 nodes, 10 m fibre-ribbon links, 2 KiB slots.
    //    `build_auto_slot` enlarges the slot if Equation 2 needs more room.
    let cfg = NetworkConfig::builder(8)
        .slot_bytes(2048)
        .link_length_m(10.0)
        .build_auto_slot()
        .expect("valid configuration");

    println!("ring            : {} nodes", cfg.n_nodes);
    println!(
        "slot            : {} B = {}",
        cfg.slot_bytes,
        cfg.slot_time()
    );
    println!("collection phase: {}", cfg.collection_time());

    let mut net = RingNetwork::new_ccr_edf(cfg);
    let analytic = *net.analytic();
    println!("U_max (Eq. 6)   : {:.4}", analytic.u_max());
    println!("t_latency (Eq.4): {}", analytic.worst_latency());

    // 2. Open a guaranteed logical real-time connection: one slot-sized
    //    message from node 1 to node 5 every 100 µs (admission-controlled).
    let spec = ConnectionSpec::unicast(NodeId(1), NodeId(5))
        .period(TimeDelta::from_us(100))
        .size_slots(1);
    let conn = net.open_connection(spec).expect("admitted");
    println!(
        "admitted conn {:?}: utilisation now {:.4}",
        conn,
        net.admission().admitted_utilisation()
    );

    // 3. Sprinkle some best-effort messages on top.
    for k in 0..50u64 {
        let at = SimTime::from_us(k * 37);
        net.submit_message(
            at,
            Message::best_effort(
                NodeId((k % 8) as u16),
                Destination::Unicast(NodeId(((k + 3) % 8) as u16)),
                1,
                at,
                at + TimeDelta::from_ms(1),
            ),
        );
    }

    // 4. Run 100k slots (~0.5 ms of network time per 200 slots here).
    net.run_slots(100_000);

    // 5. Inspect the outcome.
    let m = net.metrics();
    println!("\n--- after {} slots ({}) ---", m.slots.get(), net.now());
    println!(
        "delivered        : {} (RT {}, BE {})",
        m.delivered.get(),
        m.delivered_rt.get(),
        m.delivered_be.get()
    );
    println!("RT misses        : {}", m.rt_deadline_misses.get());
    println!(
        "RT bound violations (Eq. 3): {}",
        m.rt_bound_violations.get()
    );
    println!(
        "RT latency       : mean {:.2} µs, max {:.2} µs",
        m.latency_rt.mean().unwrap_or(0.0) / 1e6,
        m.latency_rt.max().unwrap_or(0) as f64 / 1e6
    );
    println!(
        "hand-over gap    : mean {:.1} ns (worst case {:.1} ns)",
        m.handover_gap.mean().unwrap_or(0.0) / 1e3,
        analytic.timing().max_handover().as_ns_f64()
    );

    assert_eq!(
        m.rt_deadline_misses.get(),
        0,
        "admitted traffic never misses"
    );
    println!("\nOK: guaranteed traffic met every deadline.");
}
