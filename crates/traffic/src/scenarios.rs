//! Application scenarios from the paper's introduction.
//!
//! * **Radar signal processing** (Section 1, refs \[1], \[2]): a pipeline of
//!   processing stages mapped around the ring — pulse compression →
//!   Doppler filtering → envelope detection → CFAR → tracking. Each stage
//!   forwards a data cube to the next stage every coherent processing
//!   interval (CPI); all transfers are hard real-time connections. Because
//!   consecutive stages are ring neighbours, the workload is highly local
//!   and benefits maximally from spatial reuse.
//! * **Distributed multimedia**: a mix of periodic voice channels (hard
//!   connections), bursty video (best effort) and background file traffic
//!   (non-real-time).

use crate::bursty::BurstyGen;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::{NodeId, TimeDelta};

/// Parameters of the radar pipeline scenario.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadarScenario {
    /// Nodes in the ring (pipeline stages occupy nodes `0..stages`).
    pub n_nodes: u16,
    /// Number of pipeline stages (≥ 2, ≤ n_nodes).
    pub stages: u16,
    /// Coherent processing interval — the period of every transfer.
    pub cpi: TimeDelta,
    /// Data-cube size in slots transferred between consecutive stages.
    pub cube_slots: u32,
    /// Extra corner-turn transfer: stage `s` also broadcasts a reduced
    /// result every `report_every` CPIs (0 = disabled).
    pub report_every: u32,
}

impl RadarScenario {
    /// A default five-stage pipeline on an 8-node ring, 2 ms CPI.
    pub fn default_on(n_nodes: u16) -> Self {
        RadarScenario {
            n_nodes,
            stages: 5.min(n_nodes),
            cpi: TimeDelta::from_ms(2),
            cube_slots: 8,
            report_every: 0,
        }
    }

    /// The hard real-time connections of the pipeline: stage *i* (node i)
    /// → stage *i+1* (node i+1), staggered phases so the cube "flows".
    pub fn connections(&self) -> Vec<ConnectionSpec> {
        assert!(self.stages >= 2 && self.stages <= self.n_nodes);
        let stagger = TimeDelta::from_ps(self.cpi.as_ps() / u64::from(self.stages));
        (0..self.stages - 1)
            .map(|s| {
                ConnectionSpec::unicast(NodeId(s), NodeId(s + 1))
                    .period(self.cpi)
                    .size_slots(self.cube_slots)
                    .phase(stagger * s as u64)
            })
            .collect()
    }

    /// Total utilisation of the pipeline at slot length `slot`.
    pub fn utilisation(&self, slot: TimeDelta) -> f64 {
        self.connections().iter().map(|c| c.utilisation(slot)).sum()
    }
}

/// Parameters of the distributed multimedia scenario.
#[derive(Debug, Clone)]
pub struct MultimediaScenario {
    /// Ring size.
    pub n_nodes: u16,
    /// Number of periodic voice channels (RT connections, 1 slot / 20 ms
    /// scaled down to simulation time below).
    pub voice_channels: usize,
    /// Voice packet period.
    pub voice_period: TimeDelta,
    /// Number of bursty video streams (best effort).
    pub video_streams: usize,
    /// Video burst rate during ON periods (messages/s).
    pub video_on_rate: f64,
}

impl MultimediaScenario {
    /// A small default mix.
    pub fn default_on(n_nodes: u16) -> Self {
        MultimediaScenario {
            n_nodes,
            voice_channels: n_nodes as usize,
            voice_period: TimeDelta::from_us(125), // scaled-down 8 kHz frame
            video_streams: (n_nodes / 2) as usize,
            video_on_rate: 100_000.0,
        }
    }

    /// The guaranteed voice connections: channel *i* runs node *i mod N* →
    /// node *(i + N/2) mod N* (long spans — worst case for spatial reuse).
    pub fn voice_connections(&self) -> Vec<ConnectionSpec> {
        let n = self.n_nodes;
        (0..self.voice_channels)
            .map(|i| {
                let src = NodeId(i as u16 % n);
                let dst = NodeId((src.0 + n / 2).max(src.0 + 1) % n);
                let dst = if dst == src {
                    NodeId((src.0 + 1) % n)
                } else {
                    dst
                };
                ConnectionSpec::unicast(src, dst)
                    .period(self.voice_period)
                    .size_slots(1)
                    .phase(TimeDelta::from_ps(
                        (i as u64 * self.voice_period.as_ps()) / self.voice_channels.max(1) as u64,
                    ))
            })
            .collect()
    }

    /// The bursty video generators (one per stream).
    pub fn video_generators(&self) -> Vec<BurstyGen> {
        let n = self.n_nodes;
        (0..self.video_streams)
            .map(|i| BurstyGen {
                src: NodeId((2 * i as u16 + 1) % n),
                dst: NodeId((2 * i as u16 + 3) % n),
                on_rate_per_s: self.video_on_rate,
                mean_on: TimeDelta::from_us(200),
                mean_off: TimeDelta::from_us(600),
                size_slots: 4,
                rel_deadline: TimeDelta::from_ms(2),
            })
            .filter(|g| g.src != g.dst)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_phys::RingTopology;

    #[test]
    fn radar_pipeline_connects_consecutive_stages() {
        let r = RadarScenario::default_on(8);
        let conns = r.connections();
        assert_eq!(conns.len(), 4); // 5 stages → 4 transfers
        let topo = RingTopology::new(8);
        for (i, c) in conns.iter().enumerate() {
            c.validate(topo).unwrap();
            assert_eq!(c.src, NodeId(i as u16));
            assert_eq!(c.dest.span_hops(topo, c.src), 1, "neighbour transfer");
            assert_eq!(c.period, r.cpi);
        }
        // staggered phases strictly increasing
        assert!(conns.windows(2).all(|w| w[0].phase < w[1].phase));
    }

    #[test]
    fn radar_utilisation_scales_with_cube() {
        let slot = TimeDelta::from_us(2);
        let mut small = RadarScenario::default_on(8);
        small.cube_slots = 2;
        let mut big = small;
        big.cube_slots = 20;
        assert!(big.utilisation(slot) > small.utilisation(slot) * 9.0);
    }

    #[test]
    fn multimedia_specs_valid() {
        let m = MultimediaScenario::default_on(8);
        let topo = RingTopology::new(8);
        let voice = m.voice_connections();
        assert_eq!(voice.len(), 8);
        for c in &voice {
            c.validate(topo).unwrap();
        }
        let vids = m.video_generators();
        assert!(!vids.is_empty());
        for g in &vids {
            assert_ne!(g.src, g.dst);
            assert!(g.src.0 < 8 && g.dst.0 < 8);
        }
    }

    #[test]
    fn tiny_ring_still_works() {
        let r = RadarScenario {
            n_nodes: 2,
            stages: 2,
            cpi: TimeDelta::from_ms(1),
            cube_slots: 1,
            report_every: 0,
        };
        assert_eq!(r.connections().len(), 1);
        let m = MultimediaScenario::default_on(3);
        let topo = RingTopology::new(3);
        for c in m.voice_connections() {
            c.validate(topo).unwrap();
        }
    }
}
