//! Random periodic connection-set generation.
//!
//! Builds sets of [`ConnectionSpec`]s whose total utilisation (Equation 5's
//! left side) hits a requested target, with log-uniform periods — the
//! standard methodology for schedulability experiments. Used by experiments
//! E4–E6 and E11.

use crate::uunifast::uunifast;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::{NodeId, TimeDelta};
use ccr_sim::rng::DetRng;

/// Builder for random periodic connection sets.
#[derive(Debug, Clone)]
pub struct PeriodicSetBuilder {
    /// Ring size (sources/destinations drawn from `0..n_nodes`).
    pub n_nodes: u16,
    /// Number of connections.
    pub n_conns: usize,
    /// Total utilisation target (Σ e·t_slot/P).
    pub total_utilisation: f64,
    /// Slot length used to convert utilisation to periods.
    pub slot: TimeDelta,
    /// Period range (log-uniform), in slots.
    pub period_slots_range: (u64, u64),
    /// Maximum message size in slots (sizes are derived from the period so
    /// the utilisation target is met exactly, then clamped here).
    pub max_size_slots: u32,
    /// Draw sources/destinations locally (≤ `locality_hops` downstream)
    /// instead of uniformly. `None` = uniform destinations.
    pub locality_hops: Option<u16>,
}

impl PeriodicSetBuilder {
    /// A sensible default builder for an `n`-node ring at a target load.
    pub fn new(n_nodes: u16, n_conns: usize, total_utilisation: f64, slot: TimeDelta) -> Self {
        PeriodicSetBuilder {
            n_nodes,
            n_conns,
            total_utilisation,
            slot,
            period_slots_range: (20, 2_000),
            max_size_slots: 16,
            locality_hops: None,
        }
    }

    /// Restrict destinations to at most `hops` downstream of the source.
    pub fn locality(mut self, hops: u16) -> Self {
        self.locality_hops = Some(hops);
        self
    }

    /// Set the period range, in slots.
    pub fn periods(mut self, lo: u64, hi: u64) -> Self {
        self.period_slots_range = (lo, hi);
        self
    }

    /// Generate the set. Total utilisation matches the target to within
    /// rounding of sizes/periods (each connection's size is at least 1
    /// slot, so very small shares round *up*; callers that need an exact
    /// cap should check with [`ccr_edf::analysis::AnalyticModel`]).
    pub fn generate(&self, rng: &mut DetRng) -> Vec<ConnectionSpec> {
        assert!(self.n_nodes >= 2, "need at least 2 nodes");
        let shares = uunifast(rng, self.n_conns, self.total_utilisation);
        let (lo, hi) = self.period_slots_range;
        assert!(lo >= 1 && hi >= lo, "bad period range");
        let log_lo = (lo as f64).ln();
        let log_hi = (hi as f64).ln();
        shares
            .into_iter()
            .map(|u| {
                let src = NodeId(rng.gen_range(0..self.n_nodes));
                let hops_limit = self.locality_hops.unwrap_or(self.n_nodes - 1).max(1);
                let hops = rng.gen_range(1..=hops_limit.min(self.n_nodes - 1));
                let dst = NodeId((src.0 + hops) % self.n_nodes);
                // log-uniform period
                let p_slots = (log_lo + rng.gen_f64() * (log_hi - log_lo)).exp();
                // size from share: u = e * slot / P  →  e = u * P_slots,
                // clamped in f64 first so the cast cannot wrap on extreme
                // draws.
                let e_f64 = (u * p_slots)
                    .round()
                    .clamp(1.0, f64::from(self.max_size_slots));
                let e = e_f64 as u32;
                // re-derive the period so the utilisation share is honoured
                // with the clamped integral size: P = e * slot / u.
                let period_ps = if u > 0.0 {
                    TimeDelta::from_ps_f64_saturating(f64::from(e) * self.slot.as_ps() as f64 / u)
                        .as_ps()
                } else {
                    self.slot.as_ps() * hi
                };
                ConnectionSpec::unicast(src, dst)
                    .period(TimeDelta::from_ps(period_ps.max(self.slot.as_ps())))
                    .size_slots(e)
                    .phase(TimeDelta::from_ps(rng.gen_range(0..period_ps.max(1))))
            })
            .collect()
    }

    /// Generate and report the achieved utilisation (after rounding).
    pub fn generate_with_util(&self, rng: &mut DetRng) -> (Vec<ConnectionSpec>, f64) {
        let set = self.generate(rng);
        let u = set.iter().map(|s| s.utilisation(self.slot)).sum();
        (set, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_phys::RingTopology;
    use ccr_sim::SeedSequence;

    fn slot() -> TimeDelta {
        TimeDelta::from_us(2)
    }

    #[test]
    fn hits_utilisation_target() {
        let mut rng = SeedSequence::new(3).stream("per", 0);
        let b = PeriodicSetBuilder::new(8, 12, 0.6, slot());
        let (set, u) = b.generate_with_util(&mut rng);
        assert_eq!(set.len(), 12);
        // periods are re-derived after size clamping, so the achieved
        // utilisation is close to the target (clamping at e=1/P≥slot can
        // distort extreme shares slightly)
        assert!((u - 0.6).abs() < 0.05, "achieved {u}");
    }

    #[test]
    fn specs_are_valid() {
        let topo = RingTopology::new(8);
        let mut rng = SeedSequence::new(3).stream("per", 1);
        let b = PeriodicSetBuilder::new(8, 30, 0.8, slot());
        for spec in b.generate(&mut rng) {
            spec.validate(topo).expect("valid spec");
            assert!(spec.size_slots >= 1);
            assert!(spec.phase < spec.period);
        }
    }

    #[test]
    fn locality_limits_span() {
        let topo = RingTopology::new(16);
        let mut rng = SeedSequence::new(3).stream("per", 2);
        let b = PeriodicSetBuilder::new(16, 40, 0.5, slot()).locality(2);
        for spec in b.generate(&mut rng) {
            let hops = spec.dest.span_hops(topo, spec.src);
            assert!((1..=2).contains(&hops), "span {hops}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = SeedSequence::new(seed).stream("per", 0);
            PeriodicSetBuilder::new(8, 10, 0.5, slot()).generate(&mut rng)
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn zero_connections() {
        let mut rng = SeedSequence::new(1).stream("per", 3);
        let b = PeriodicSetBuilder::new(4, 0, 0.5, slot());
        assert!(b.generate(&mut rng).is_empty());
    }
}
