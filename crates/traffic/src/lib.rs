//! # ccr-traffic — deterministic workload generation
//!
//! Workload generators for the CCR-EDF experiments: random periodic
//! connection sets (UUniFast utilisation partitioning), Poisson and bursty
//! best-effort arrival processes, and the two application scenarios the
//! paper motivates (radar signal processing, Section 1 / refs \[1]\[2], and
//! distributed multimedia).
//!
//! All generators are pure functions of a [`ccr_sim::SeedSequence`]-derived
//! RNG, so every experiment is reproducible from one master seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursty;
pub mod periodic;
pub mod poisson;
pub mod scenarios;
pub mod uunifast;

pub use bursty::BurstyGen;
pub use periodic::PeriodicSetBuilder;
pub use poisson::PoissonGen;
pub use uunifast::uunifast;
