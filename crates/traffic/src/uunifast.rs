//! UUniFast utilisation partitioning (Bini & Buttazzo 2005).
//!
//! Splits a total utilisation `u_total` into `n` unbiased uniform shares —
//! the standard way to generate random periodic task/connection sets for
//! schedulability experiments. Used by [`crate::periodic`] to build
//! connection sets at a precise offered load.

use ccr_sim::rng::DetRng;

/// Partition `u_total` into `n` utilisations, uniformly distributed over
/// the simplex. Returns an empty vec for `n = 0`.
///
/// # Panics
/// Panics if `u_total` is negative or not finite.
pub fn uunifast(rng: &mut DetRng, n: usize, u_total: f64) -> Vec<f64> {
    assert!(u_total >= 0.0 && u_total.is_finite(), "bad utilisation");
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = u_total;
    for i in 1..n {
        let next = sum * rng.gen_f64().powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_sim::SeedSequence;

    #[test]
    fn partitions_sum_to_total() {
        let mut rng = SeedSequence::new(1).stream("uuf", 0);
        for n in [1usize, 2, 5, 50] {
            let parts = uunifast(&mut rng, n, 0.7);
            assert_eq!(parts.len(), n);
            let sum: f64 = parts.iter().sum();
            assert!((sum - 0.7).abs() < 1e-9, "sum {sum}");
            assert!(parts.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn zero_tasks() {
        let mut rng = SeedSequence::new(1).stream("uuf", 1);
        assert!(uunifast(&mut rng, 0, 0.5).is_empty());
    }

    #[test]
    fn zero_utilisation() {
        let mut rng = SeedSequence::new(1).stream("uuf", 2);
        let parts = uunifast(&mut rng, 4, 0.0);
        assert!(parts.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn mean_share_is_unbiased() {
        // Over many draws, each position's share should average u/n.
        let mut rng = SeedSequence::new(7).stream("uuf", 3);
        let n = 4;
        let mut acc = vec![0.0; n];
        let reps = 4_000;
        for _ in 0..reps {
            for (a, u) in acc.iter_mut().zip(uunifast(&mut rng, n, 0.8)) {
                *a += u;
            }
        }
        for a in &acc {
            let mean = a / reps as f64;
            assert!((mean - 0.2).abs() < 0.01, "biased share {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "bad utilisation")]
    fn negative_total_rejected() {
        let mut rng = SeedSequence::new(1).stream("uuf", 4);
        uunifast(&mut rng, 3, -0.1);
    }
}
