//! Bursty (two-state on/off) best-effort traffic.
//!
//! A Markov-modulated process: in the ON state, messages arrive at a high
//! Poisson rate; in the OFF state, none arrive. Dwell times in each state
//! are exponential. Models the "distributed multimedia" style load the
//! paper lists among its applications (video frames arrive in bursts).

use ccr_edf::message::{Destination, Message};
use ccr_edf::{NodeId, SimTime, TimeDelta};
use ccr_sim::rng::DetRng;

/// On/off burst generator for one (src, dst) stream.
#[derive(Debug, Clone)]
pub struct BurstyGen {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Arrival rate during ON periods (messages/s).
    pub on_rate_per_s: f64,
    /// Mean ON duration.
    pub mean_on: TimeDelta,
    /// Mean OFF duration.
    pub mean_off: TimeDelta,
    /// Message size in slots.
    pub size_slots: u32,
    /// Relative deadline of each message.
    pub rel_deadline: TimeDelta,
}

impl BurstyGen {
    fn exp_draw(rng: &mut DetRng, mean_ps: f64) -> TimeDelta {
        let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
        TimeDelta::from_ps_f64_saturating(-u.ln() * mean_ps)
    }

    /// Generate arrivals over `[start, start + horizon)`.
    pub fn schedule(
        &self,
        rng: &mut DetRng,
        start: SimTime,
        horizon: TimeDelta,
    ) -> Vec<(SimTime, Message)> {
        assert!(self.on_rate_per_s > 0.0);
        let end = start + horizon;
        let mut out = Vec::new();
        let mut t = start;
        let gap_mean_ps = 1e12 / self.on_rate_per_s;
        loop {
            // ON period
            let on_end = t + Self::exp_draw(rng, self.mean_on.as_ps() as f64);
            let mut a = t + Self::exp_draw(rng, gap_mean_ps);
            while a < on_end.min(end) {
                out.push((
                    a,
                    Message::best_effort(
                        self.src,
                        Destination::Unicast(self.dst),
                        self.size_slots,
                        a,
                        a + self.rel_deadline,
                    ),
                ));
                a += Self::exp_draw(rng, gap_mean_ps);
            }
            t = on_end + Self::exp_draw(rng, self.mean_off.as_ps() as f64);
            if t >= end || on_end >= end {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_sim::SeedSequence;

    fn gen() -> BurstyGen {
        BurstyGen {
            src: NodeId(0),
            dst: NodeId(3),
            on_rate_per_s: 200_000.0,
            mean_on: TimeDelta::from_us(100),
            mean_off: TimeDelta::from_us(400),
            size_slots: 2,
            rel_deadline: TimeDelta::from_us(500),
        }
    }

    #[test]
    fn produces_bursts_with_gaps() {
        let mut rng = SeedSequence::new(11).stream("burst", 0);
        let arr = gen().schedule(&mut rng, SimTime::ZERO, TimeDelta::from_ms(20));
        assert!(arr.len() > 100, "got {}", arr.len());
        // Duty cycle 0.2 → rate ≈ 40k/s → ~800 in 20 ms; allow wide band.
        assert!(arr.len() < 2_500);
        // sortedness
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        // gap distribution should contain both tiny intra-burst gaps and
        // large inter-burst gaps
        let gaps: Vec<u64> = arr.windows(2).map(|w| (w[1].0 - w[0].0).as_ps()).collect();
        let small = gaps.iter().filter(|&&g| g < 20_000_000).count(); // <20 µs
        let large = gaps.iter().filter(|&&g| g > 200_000_000).count(); // >200 µs
        assert!(small > 0 && large > 0, "small {small}, large {large}");
    }

    #[test]
    fn respects_window() {
        let mut rng = SeedSequence::new(11).stream("burst", 1);
        let start = SimTime::from_ms(3);
        let arr = gen().schedule(&mut rng, start, TimeDelta::from_ms(5));
        assert!(arr
            .iter()
            .all(|(t, _)| *t >= start && *t < start + TimeDelta::from_ms(5)));
    }

    #[test]
    fn deterministic() {
        let run = |s| {
            let mut rng = SeedSequence::new(s).stream("burst", 2);
            gen()
                .schedule(&mut rng, SimTime::ZERO, TimeDelta::from_ms(5))
                .len()
        };
        assert_eq!(run(1), run(1));
    }
}
