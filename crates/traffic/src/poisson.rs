//! Poisson best-effort / non-real-time arrival processes.

use ccr_edf::message::{Destination, Message};
use ccr_edf::{NodeId, SimTime, TimeDelta};
use ccr_sim::rng::DetRng;

/// Generates messages with exponential inter-arrival times, uniformly
/// random (src, dst) pairs, geometric-ish sizes and uniform relative
/// deadlines (for best-effort traffic).
#[derive(Debug, Clone)]
pub struct PoissonGen {
    /// Ring size.
    pub n_nodes: u16,
    /// Mean arrivals per second (aggregate over the whole ring).
    pub rate_per_s: f64,
    /// Message size range in slots (uniform).
    pub size_slots: (u32, u32),
    /// Relative deadline range (uniform) for best-effort messages.
    pub deadline: (TimeDelta, TimeDelta),
    /// Generate non-real-time (deadline-less) messages instead.
    pub non_real_time: bool,
}

impl PoissonGen {
    /// Best-effort generator with sensible defaults.
    pub fn best_effort(n_nodes: u16, rate_per_s: f64) -> Self {
        PoissonGen {
            n_nodes,
            rate_per_s,
            size_slots: (1, 4),
            deadline: (TimeDelta::from_us(50), TimeDelta::from_ms(1)),
            non_real_time: false,
        }
    }

    /// Non-real-time (bulk) generator.
    pub fn non_real_time(n_nodes: u16, rate_per_s: f64) -> Self {
        PoissonGen {
            non_real_time: true,
            size_slots: (2, 16),
            ..Self::best_effort(n_nodes, rate_per_s)
        }
    }

    /// Draw one exponential inter-arrival gap.
    fn gap(&self, rng: &mut DetRng) -> TimeDelta {
        let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let secs = -u.ln() / self.rate_per_s;
        TimeDelta::from_ps_f64_saturating(secs * 1e12)
    }

    /// Generate all arrivals in `[start, start + horizon)` as
    /// `(release, message)` pairs, sorted by release time.
    pub fn schedule(
        &self,
        rng: &mut DetRng,
        start: SimTime,
        horizon: TimeDelta,
    ) -> Vec<(SimTime, Message)> {
        assert!(self.n_nodes >= 2);
        assert!(self.rate_per_s > 0.0);
        let end = start + horizon;
        let mut t = start + self.gap(rng);
        let mut out = Vec::new();
        while t < end {
            let src = NodeId(rng.gen_range(0..self.n_nodes));
            let hops = rng.gen_range(1..self.n_nodes);
            let dst = NodeId((src.0 + hops) % self.n_nodes);
            let size = rng.gen_range(self.size_slots.0..=self.size_slots.1);
            let msg = if self.non_real_time {
                Message::non_real_time(src, Destination::Unicast(dst), size, t)
            } else {
                let dl = rng.gen_range(self.deadline.0.as_ps()..=self.deadline.1.as_ps());
                Message::best_effort(
                    src,
                    Destination::Unicast(dst),
                    size,
                    t,
                    t + TimeDelta::from_ps(dl),
                )
            };
            out.push((t, msg));
            t += self.gap(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_sim::SeedSequence;

    #[test]
    fn rate_is_respected() {
        let mut rng = SeedSequence::new(5).stream("poi", 0);
        let g = PoissonGen::best_effort(8, 100_000.0); // 100k msg/s
        let arr = g.schedule(&mut rng, SimTime::ZERO, TimeDelta::from_ms(50));
        // expect ~5000 arrivals; loose 3-sigma bound
        let n = arr.len() as f64;
        assert!(
            (n - 5_000.0).abs() < 3.0 * 5_000.0_f64.sqrt() + 50.0,
            "n {n}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let mut rng = SeedSequence::new(5).stream("poi", 1);
        let g = PoissonGen::best_effort(4, 50_000.0);
        let start = SimTime::from_ms(1);
        let arr = g.schedule(&mut rng, start, TimeDelta::from_ms(2));
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(arr
            .iter()
            .all(|(t, _)| *t >= start && *t < start + TimeDelta::from_ms(2)));
    }

    #[test]
    fn messages_valid_and_classed() {
        let topo = ccr_phys::RingTopology::new(8);
        let mut rng = SeedSequence::new(5).stream("poi", 2);
        for (t, m) in PoissonGen::best_effort(8, 10_000.0).schedule(
            &mut rng,
            SimTime::ZERO,
            TimeDelta::from_ms(10),
        ) {
            m.validate(topo).unwrap();
            assert_eq!(m.class, ccr_edf::message::TrafficClass::BestEffort);
            assert_eq!(m.released, t);
            assert!(m.deadline > t);
        }
        for (_, m) in PoissonGen::non_real_time(8, 10_000.0).schedule(
            &mut rng,
            SimTime::ZERO,
            TimeDelta::from_ms(5),
        ) {
            assert_eq!(m.class, ccr_edf::message::TrafficClass::NonRealTime);
            assert_eq!(m.deadline, SimTime::MAX);
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut rng = SeedSequence::new(5).stream("poi", 3);
            PoissonGen::best_effort(6, 20_000.0)
                .schedule(&mut rng, SimTime::ZERO, TimeDelta::from_ms(5))
                .len()
        };
        assert_eq!(run(), run());
    }
}
