//! Ring topology: node/link identifiers, hop arithmetic and link sets.
//!
//! The ring is unidirectional: node `i` transmits downstream to node
//! `(i+1) mod N` over link `i` (Figure 2 of the paper). A transmission from
//! `s` to destination set `D` occupies the contiguous segment of links from
//! `s` up to the furthest downstream destination — this is what makes
//! spatial reuse (several simultaneous transmissions in non-overlapping
//! segments) possible.

use std::fmt;

/// Maximum number of nodes supported by the [`LinkSet`] bitmask.
pub const MAX_NODES: u16 = 64;

/// Identifies a node on the ring (0-based index).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

/// Identifies a unidirectional link: link `i` runs node `i` → node `i+1 mod N`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl NodeId {
    /// Index as usize (for array indexing).
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index as usize (for array indexing).
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A set of ring links, stored as a bitmask (hence `N ≤ 64`).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkSet(pub u64);

impl LinkSet {
    /// The empty set.
    pub const EMPTY: LinkSet = LinkSet(0);

    /// Set containing a single link.
    #[inline]
    pub fn single(l: LinkId) -> Self {
        LinkSet(1 << l.0)
    }

    /// True if no links are in the set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of links in the set.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if `l` is in the set.
    #[inline]
    pub const fn contains(self, l: LinkId) -> bool {
        self.0 & (1 << l.0) != 0
    }

    /// True if the two sets share no link.
    #[inline]
    pub const fn is_disjoint(self, other: LinkSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: LinkSet) -> LinkSet {
        LinkSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: LinkSet) -> LinkSet {
        LinkSet(self.0 & other.0)
    }

    /// Insert a link.
    #[inline]
    pub fn insert(&mut self, l: LinkId) {
        self.0 |= 1 << l.0;
    }

    /// Iterate over member links in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = LinkId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(LinkId(i))
            }
        })
    }
}

impl FromIterator<LinkId> for LinkSet {
    fn from_iter<T: IntoIterator<Item = LinkId>>(iter: T) -> Self {
        let mut s = LinkSet::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

/// The unidirectional ring of `N` nodes (Figure 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingTopology {
    n: u16,
}

impl RingTopology {
    /// Create a ring of `n` nodes.
    ///
    /// # Panics
    /// Panics unless `2 ≤ n ≤ 64` (the paper targets small LAN/SAN rings;
    /// the 64 limit comes from the [`LinkSet`] bitmask).
    pub fn new(n: u16) -> Self {
        assert!(
            (2..=MAX_NODES).contains(&n),
            "ring size {n} outside supported range 2..=64"
        );
        RingTopology { n }
    }

    /// Number of nodes (equals the number of links).
    #[inline]
    pub const fn n_nodes(self) -> u16 {
        self.n
    }

    /// Iterate over all node ids.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// Iterate over all link ids.
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        (0..self.n).map(LinkId)
    }

    /// The node `k` hops downstream of `from`.
    #[inline]
    pub fn downstream(self, from: NodeId, k: u16) -> NodeId {
        debug_assert!(from.0 < self.n);
        NodeId((from.0 + k) % self.n)
    }

    /// The node `k` hops upstream of `from`.
    #[inline]
    pub fn upstream(self, from: NodeId, k: u16) -> NodeId {
        debug_assert!(from.0 < self.n);
        NodeId((from.0 + self.n - (k % self.n)) % self.n)
    }

    /// Downstream hop count from `from` to `to` (0 when equal; otherwise
    /// 1 ..= N-1).
    #[inline]
    pub fn hops(self, from: NodeId, to: NodeId) -> u16 {
        debug_assert!(from.0 < self.n && to.0 < self.n);
        (to.0 + self.n - from.0) % self.n
    }

    /// The link leaving node `from` (link `from`).
    #[inline]
    pub fn egress(self, from: NodeId) -> LinkId {
        LinkId(from.0)
    }

    /// The link entering node `to` (link `to − 1 mod N`).
    ///
    /// This is the link that carries **no clock** when `to` is the slot
    /// master: the master's clock travels N−1 hops and stops just short of
    /// returning (Section 2), so no transmission may use this link.
    #[inline]
    pub fn ingress(self, to: NodeId) -> LinkId {
        LinkId((to.0 + self.n - 1) % self.n)
    }

    /// Links occupied by a unicast from `from` to `to`
    /// (`hops(from, to)` consecutive links starting at `egress(from)`).
    ///
    /// # Panics
    /// Panics in debug builds if `from == to` (a node cannot send to itself).
    pub fn segment(self, from: NodeId, to: NodeId) -> LinkSet {
        debug_assert_ne!(from, to, "self-transmission has no segment");
        self.segment_hops(from, self.hops(from, to))
    }

    /// Links occupied by a transmission of `hops` hops starting at `from`.
    pub fn segment_hops(self, from: NodeId, hops: u16) -> LinkSet {
        debug_assert!(
            hops < self.n,
            "segment of {hops} hops on an {}-ring",
            self.n
        );
        let mut set = LinkSet::EMPTY;
        for k in 0..hops {
            set.insert(LinkId((from.0 + k) % self.n));
        }
        set
    }

    /// Links occupied by a multicast from `from` to every node in `dests`:
    /// the contiguous segment up to the furthest downstream destination
    /// (Figure 2 — Node 4 multicasting to Node 5 and Node 1 spans links
    /// 4 and 5).
    ///
    /// Returns `LinkSet::EMPTY` when `dests` is empty or contains only
    /// `from` itself.
    pub fn multicast_segment(
        self,
        from: NodeId,
        dests: impl IntoIterator<Item = NodeId>,
    ) -> LinkSet {
        let max_hops = dests
            .into_iter()
            .map(|d| self.hops(from, d))
            .max()
            .unwrap_or(0);
        self.segment_hops(from, max_hops)
    }

    /// The destination set for a broadcast: every node except the sender.
    pub fn broadcast_dests(self, from: NodeId) -> Vec<NodeId> {
        self.nodes().filter(|&d| d != from).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_arithmetic_wraps() {
        let r = RingTopology::new(5);
        assert_eq!(r.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(r.hops(NodeId(3), NodeId(0)), 2);
        assert_eq!(r.hops(NodeId(4), NodeId(4)), 0);
        assert_eq!(r.downstream(NodeId(4), 2), NodeId(1));
        assert_eq!(r.upstream(NodeId(0), 1), NodeId(4));
        assert_eq!(r.upstream(NodeId(2), 7), NodeId(0));
    }

    #[test]
    fn ingress_egress_relationship() {
        let r = RingTopology::new(4);
        for node in r.nodes() {
            assert_eq!(r.egress(node), LinkId(node.0));
            let up = r.upstream(node, 1);
            assert_eq!(r.ingress(node), r.egress(up));
        }
    }

    #[test]
    fn unicast_segment_is_contiguous() {
        let r = RingTopology::new(5);
        // Figure 2: node 1 → node 3 uses links 1 and 2.
        let seg = r.segment(NodeId(1), NodeId(3));
        assert_eq!(seg, [LinkId(1), LinkId(2)].into_iter().collect());
        // wrap-around: node 4 → node 1 uses links 4 and 0.
        let seg = r.segment(NodeId(4), NodeId(1));
        assert_eq!(seg, [LinkId(4), LinkId(0)].into_iter().collect());
    }

    #[test]
    fn figure2_scenario_is_disjoint() {
        // Figure 2: node 1 → node 3 (links 1,2) and node 4 → {5 ≡ 0, 1}
        // (links 4, 0) can proceed simultaneously. Paper numbers nodes 1..5;
        // we use 0..4, so "node 5" is our node 4... translate: nodes 0..=4,
        // tx A: 0→2 (links 0,1); tx B: 3→{4,0} (links 3,4).
        let r = RingTopology::new(5);
        let a = r.segment(NodeId(0), NodeId(2));
        let b = r.multicast_segment(NodeId(3), [NodeId(4), NodeId(0)]);
        assert!(a.is_disjoint(b));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn multicast_covers_furthest_destination() {
        let r = RingTopology::new(6);
        let seg = r.multicast_segment(NodeId(2), [NodeId(3), NodeId(5), NodeId(4)]);
        assert_eq!(seg.len(), 3); // links 2,3,4
        assert!(seg.contains(LinkId(2)) && seg.contains(LinkId(4)));
        assert!(!seg.contains(LinkId(5)));
    }

    #[test]
    fn empty_multicast_is_empty() {
        let r = RingTopology::new(4);
        assert!(r.multicast_segment(NodeId(0), []).is_empty());
        assert!(r.multicast_segment(NodeId(0), [NodeId(0)]).is_empty());
    }

    #[test]
    fn broadcast_spans_n_minus_1_links() {
        let r = RingTopology::new(7);
        for from in r.nodes() {
            let dests = r.broadcast_dests(from);
            assert_eq!(dests.len(), 6);
            let seg = r.multicast_segment(from, dests);
            assert_eq!(seg.len(), 6);
            assert!(!seg.contains(r.ingress(from)));
        }
    }

    #[test]
    fn linkset_operations() {
        let a: LinkSet = [LinkId(0), LinkId(2)].into_iter().collect();
        let b: LinkSet = [LinkId(1), LinkId(3)].into_iter().collect();
        assert!(a.is_disjoint(b));
        assert!(!a.is_disjoint(a));
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), LinkSet::EMPTY);
        assert!(a.contains(LinkId(2)));
        assert!(!a.contains(LinkId(1)));
        let collected: Vec<LinkId> = a.iter().collect();
        assert_eq!(collected, vec![LinkId(0), LinkId(2)]);
        assert_eq!(LinkSet::single(LinkId(5)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn oversized_ring_rejected() {
        let _ = RingTopology::new(65);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn degenerate_ring_rejected() {
        let _ = RingTopology::new(1);
    }

    #[test]
    fn max_ring_size_works() {
        let r = RingTopology::new(64);
        let seg = r.segment_hops(NodeId(1), 63);
        assert_eq!(seg.len(), 63);
        assert!(!seg.contains(r.ingress(NodeId(1))));
    }
}
