//! Closed-form timing model — Equations 1 and 2 of the paper.
//!
//! * **Equation 1** — clock hand-over time: `t_handover = P · L · D`, where
//!   `P` is the propagation delay per metre, `L` the (common) link length
//!   and `D` the number of segments between the old and the new master.
//!   Worst case `D = N − 1` (hand-over to the upstream neighbour).
//! * **Equation 2** — minimum slot length: `t_minslot = N · t_node + t_prop`,
//!   where `t_node` is the control-packet delay through one node during the
//!   collection phase and `t_prop` the propagation around the whole ring:
//!   the collection phase must complete within one slot.
//!
//! `TimingModel` bundles the physical parameters with a ring size so that
//! the protocol crates and the experiment harness compute these quantities
//! from one place.

use crate::params::PhysParams;
use crate::ring::RingTopology;
use ccr_sim::time::TimeDelta;

/// Timing calculator for a concrete ring instance.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Physical constants.
    pub phys: PhysParams,
    /// Ring size (N).
    pub n_nodes: u16,
}

impl TimingModel {
    /// Bundle parameters for an `n`-node ring.
    pub fn new(phys: PhysParams, n_nodes: u16) -> Self {
        // Constructing the topology validates the node count.
        let _ = RingTopology::new(n_nodes);
        TimingModel { phys, n_nodes }
    }

    /// The ring topology this model describes.
    pub fn topology(&self) -> RingTopology {
        RingTopology::new(self.n_nodes)
    }

    /// **Equation 1**: hand-over time over `d` segments, `P · L · d`.
    ///
    /// `d = 0` (the same node stays master) costs nothing.
    pub fn handover_time(&self, d: u16) -> TimeDelta {
        debug_assert!(d < self.n_nodes, "hand-over distance {d} ≥ N");
        self.phys.hops_prop(d)
    }

    /// Worst-case hand-over time: `d = N − 1` (upstream neighbour).
    pub fn max_handover(&self) -> TimeDelta {
        self.handover_time(self.n_nodes - 1)
    }

    /// Propagation delay around the entire ring (`t_prop` in Equation 2).
    pub fn ring_prop(&self) -> TimeDelta {
        self.phys.hops_prop(self.n_nodes)
    }

    /// **Equation 2**: minimum slot length `N · t_node + t_prop`, given the
    /// per-node control-packet delay `t_node` (which the protocol layer
    /// derives from its request size — see `ccr-edf`'s wire module).
    pub fn min_slot(&self, t_node: TimeDelta) -> TimeDelta {
        t_node * self.n_nodes as u64 + self.ring_prop()
    }

    /// Duration of a slot carrying `slot_bytes` data bytes.
    pub fn slot_time(&self, slot_bytes: u32) -> TimeDelta {
        self.phys.data_tx_time(slot_bytes)
    }

    /// Smallest slot payload (in bytes) whose slot time satisfies
    /// Equation 2 for the given `t_node`, i.e. the shortest feasible slot.
    pub fn min_slot_bytes(&self, t_node: TimeDelta) -> u32 {
        let min = self.min_slot(t_node).as_ps();
        let per_byte = self.phys.clock_period.as_ps();
        min.div_ceil(per_byte) as u32
    }

    /// End-to-end delivery latency of a `bytes`-byte packet sent over
    /// `hops` hops: serialisation + propagation (cut-through, byte-level
    /// pipelining as in the paper's ribbon links).
    pub fn delivery_latency(&self, bytes: u32, hops: u16) -> TimeDelta {
        self.phys.data_tx_time(bytes) + self.phys.hops_prop(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: u16, len_m: f64) -> TimingModel {
        TimingModel::new(PhysParams::with_link_length(len_m), n)
    }

    #[test]
    fn equation1_linear_in_distance() {
        let m = model(10, 20.0); // 20 m links → 100 ns per hop
        assert_eq!(m.handover_time(0), TimeDelta::ZERO);
        assert_eq!(m.handover_time(1), TimeDelta::from_ns(100));
        assert_eq!(m.handover_time(5), TimeDelta::from_ns(500));
        assert_eq!(m.max_handover(), TimeDelta::from_ns(900)); // D = N-1 = 9
    }

    #[test]
    fn equation2_min_slot() {
        let m = model(8, 10.0);
        let t_node = TimeDelta::from_ns(50);
        // 8 * 50 ns + 8 links * 50 ns = 400 + 400 = 800 ns
        assert_eq!(m.min_slot(t_node), TimeDelta::from_ns(800));
    }

    #[test]
    fn min_slot_bytes_rounds_up() {
        let m = model(8, 10.0);
        let t_node = TimeDelta::from_ns(50);
        // 800 ns / 2.5 ns per byte = 320 bytes exactly
        assert_eq!(m.min_slot_bytes(t_node), 320);
        // one ps more forces one more byte
        let t_node2 = TimeDelta::from_ps(50_001);
        assert_eq!(m.min_slot_bytes(t_node2), 321);
    }

    #[test]
    fn slot_time_is_payload_serialisation() {
        let m = model(4, 10.0);
        assert_eq!(m.slot_time(1_000), TimeDelta::from_ns(2_500));
    }

    #[test]
    fn delivery_latency_combines_tx_and_prop() {
        let m = model(6, 10.0);
        // 100 bytes = 250 ns; 3 hops * 50 ns = 150 ns
        assert_eq!(m.delivery_latency(100, 3), TimeDelta::from_ns(400));
    }

    #[test]
    fn max_handover_grows_with_ring() {
        let small = model(4, 10.0);
        let large = model(32, 10.0);
        assert!(large.max_handover() > small.max_handover());
        assert_eq!(large.max_handover(), TimeDelta::from_ns(50) * 31);
    }
}
