//! Physical-layer parameters.
//!
//! Defaults model the hardware the paper assumes: Motorola OPTOBUS
//! fibre-ribbon links at 400 Mbit/s per fibre (ref \[10] of the paper quotes
//! parallel optical links at 3 Gbit/s aggregate over ten fibres, i.e.
//! several hundred Mbit/s per fibre). One clock tick moves one *byte* on the
//! 8-fibre data channel and one *bit* on the serial control fibre
//! (Section 1: "The clock signal … that is used to clock data also clocks
//! each bit in the control-packets").

use ccr_sim::time::TimeDelta;
use std::fmt;

/// Why a [`PhysParams`] construction was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysParamsError {
    /// `link_length_m` was NaN or ±infinity.
    NonFiniteLinkLength(f64),
    /// `link_length_m` was negative (a fibre cannot have negative length).
    NegativeLinkLength(f64),
    /// `clock_period` was zero (bandwidth would be infinite).
    ZeroClockPeriod,
}

impl fmt::Display for PhysParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysParamsError::NonFiniteLinkLength(l) => {
                write!(f, "link_length_m must be finite, got {l}")
            }
            PhysParamsError::NegativeLinkLength(l) => {
                write!(f, "link_length_m must be non-negative, got {l}")
            }
            PhysParamsError::ZeroClockPeriod => write!(f, "clock_period must be non-zero"),
        }
    }
}

impl std::error::Error for PhysParamsError {}

/// Physical constants of the ring.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysParams {
    /// Clock period: time for one byte on the data channel / one bit on the
    /// control channel. Default 2.5 ns (400 MHz, OPTOBUS-class).
    pub clock_period: TimeDelta,
    /// Propagation delay per metre of fibre (`P` in Equation 1).
    /// Default 5 ns/m (group index ≈ 1.5).
    pub prop_per_m: TimeDelta,
    /// Length of each link in metres (`L` in Equation 1; the paper assumes
    /// all links equal). Default 10 m (SAN scale).
    pub link_length_m: f64,
    /// Fixed per-node processing latency experienced by the circulating
    /// control packet, *excluding* the serialisation of the node's own
    /// request bits (those depend on N and are counted by the protocol
    /// layer). Default 4 clock ticks of combinational/FIFO delay.
    pub node_proc_ticks: u32,
}

impl Default for PhysParams {
    fn default() -> Self {
        PhysParams {
            clock_period: TimeDelta::from_ps(2_500),
            prop_per_m: TimeDelta::from_ps(5_000),
            link_length_m: 10.0,
            node_proc_ticks: 4,
        }
    }
}

impl PhysParams {
    /// OPTOBUS-style defaults at a given link length.
    ///
    /// # Panics
    /// Panics on NaN, infinite or negative lengths; use
    /// [`PhysParams::try_with_link_length`] to handle those as errors.
    pub fn with_link_length(link_length_m: f64) -> Self {
        Self::try_with_link_length(link_length_m)
            .expect("invariant: link_length_m is finite and non-negative")
    }

    /// OPTOBUS-style defaults at a given link length, rejecting degenerate
    /// lengths (NaN, ±∞, negative) instead of letting them wrap into
    /// garbage propagation delays downstream.
    pub fn try_with_link_length(link_length_m: f64) -> Result<Self, PhysParamsError> {
        let p = PhysParams {
            link_length_m,
            ..Default::default()
        };
        p.validate()?;
        Ok(p)
    }

    /// Check the invariants every constructor must uphold. Fields are
    /// public (struct-literal construction is allowed for tests and
    /// exotic hardware models), so consumers that accept a caller-built
    /// `PhysParams` — e.g. `NetworkConfig::validate` — re-run this.
    pub fn validate(&self) -> Result<(), PhysParamsError> {
        if !self.link_length_m.is_finite() {
            return Err(PhysParamsError::NonFiniteLinkLength(self.link_length_m));
        }
        if self.link_length_m < 0.0 {
            return Err(PhysParamsError::NegativeLinkLength(self.link_length_m));
        }
        if self.clock_period.is_zero() {
            return Err(PhysParamsError::ZeroClockPeriod);
        }
        Ok(())
    }

    /// Data-channel bandwidth in bits per second (8 fibres × clock rate).
    pub fn data_bandwidth_bps(&self) -> f64 {
        8.0 / self.clock_period.as_secs_f64()
    }

    /// Control-channel bandwidth in bits per second (1 fibre × clock rate).
    pub fn control_bandwidth_bps(&self) -> f64 {
        1.0 / self.clock_period.as_secs_f64()
    }

    /// Propagation delay across one link.
    ///
    /// # Panics
    /// Panics when `link_length_m` violates [`PhysParams::validate`] (the
    /// struct was built by hand with a degenerate length) — loudly, rather
    /// than wrapping NaN/negative lengths into a garbage delay.
    pub fn link_prop(&self) -> TimeDelta {
        TimeDelta::try_from_ps_f64(self.prop_per_m.as_ps() as f64 * self.link_length_m)
            .expect("invariant: validated link_length_m yields a representable delay")
    }

    /// Propagation delay across `hops` consecutive links.
    pub fn hops_prop(&self, hops: u16) -> TimeDelta {
        self.link_prop() * hops as u64
    }

    /// Serialisation time for `bytes` on the 8-fibre data channel.
    pub fn data_tx_time(&self, bytes: u32) -> TimeDelta {
        self.clock_period * bytes as u64
    }

    /// Serialisation time for `bits` on the control fibre.
    pub fn control_tx_time(&self, bits: u32) -> TimeDelta {
        self.clock_period * bits as u64
    }

    /// Fixed per-node control-packet processing delay.
    pub fn node_proc_delay(&self) -> TimeDelta {
        self.clock_period * self.node_proc_ticks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_optobus_era() {
        let p = PhysParams::default();
        // 400 MHz clock → 3.2 Gbit/s data channel, 400 Mbit/s control.
        assert!((p.data_bandwidth_bps() - 3.2e9).abs() < 1e3);
        assert!((p.control_bandwidth_bps() - 4.0e8).abs() < 1e2);
    }

    #[test]
    fn link_prop_scales_with_length() {
        let p = PhysParams::with_link_length(100.0);
        assert_eq!(p.link_prop(), TimeDelta::from_ns(500));
        assert_eq!(p.hops_prop(3), TimeDelta::from_ns(1_500));
        assert_eq!(p.hops_prop(0), TimeDelta::ZERO);
    }

    #[test]
    fn fractional_length_rounds_to_ps() {
        let p = PhysParams::with_link_length(0.3333);
        // 0.3333 m * 5000 ps/m = 1666.5 ps → 1667 (round half up)
        assert_eq!(p.link_prop(), TimeDelta::from_ps(1_667));
    }

    #[test]
    fn degenerate_link_lengths_are_rejected_at_construction() {
        assert!(matches!(
            PhysParams::try_with_link_length(f64::NAN),
            Err(PhysParamsError::NonFiniteLinkLength(_))
        ));
        assert!(matches!(
            PhysParams::try_with_link_length(f64::INFINITY),
            Err(PhysParamsError::NonFiniteLinkLength(_))
        ));
        assert!(matches!(
            PhysParams::try_with_link_length(-3.0),
            Err(PhysParamsError::NegativeLinkLength(_))
        ));
        assert!(PhysParams::try_with_link_length(0.0).is_ok());
        assert!(PhysParams::try_with_link_length(10.0).is_ok());
    }

    #[test]
    fn validate_catches_hand_built_garbage() {
        let mut p = PhysParams {
            link_length_m: f64::NAN,
            ..PhysParams::default()
        };
        assert!(p.validate().is_err());
        p.link_length_m = 10.0;
        p.clock_period = TimeDelta::ZERO;
        assert_eq!(p.validate(), Err(PhysParamsError::ZeroClockPeriod));
    }

    #[test]
    #[should_panic(expected = "invariant")]
    fn link_prop_panics_loudly_on_hand_built_nan() {
        let p = PhysParams {
            link_length_m: f64::NAN,
            ..PhysParams::default()
        };
        let _ = p.link_prop();
    }

    #[test]
    fn serialisation_times() {
        let p = PhysParams::default();
        assert_eq!(p.data_tx_time(1_024), TimeDelta::from_ns(2_560));
        assert_eq!(p.control_tx_time(1), TimeDelta::from_ps(2_500));
        assert_eq!(p.node_proc_delay(), TimeDelta::from_ns(10));
    }
}
