//! # ccr-phys — physical model of the pipelined fibre-ribbon ring
//!
//! Models the network architecture of Section 2 of the paper: a
//! unidirectional ring of `N` nodes joined by 10-fibre ribbon links
//! (8 data fibres + 1 clock fibre + 1 control fibre, Figure 1). The paper
//! assumes Motorola OPTOBUS links; since no such hardware exists here, this
//! crate is the *simulated substitute*: it reproduces exactly the quantities
//! the MAC protocol and the analysis of Section 4 observe — byte/bit times,
//! per-hop propagation, clock hand-over delay (Equation 1) and the minimum
//! slot length (Equation 2) — at picosecond resolution.
//!
//! Contents:
//! * [`ring`] — node/link identifiers, hop arithmetic, segment and link-set
//!   computation for spatial reuse;
//! * [`params`] — physical constants (clock period, propagation velocity,
//!   link length, node delays) with OPTOBUS-era defaults;
//! * [`timing`] — closed-form implementations of Equations 1 and 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;
pub mod ring;
pub mod timing;

pub use params::{PhysParams, PhysParamsError};
pub use ring::{LinkId, LinkSet, NodeId, RingTopology};
pub use timing::TimingModel;
