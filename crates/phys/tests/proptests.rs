//! Property-based tests for ring geometry and timing invariants.

use ccr_phys::{LinkSet, NodeId, PhysParams, RingTopology, TimingModel};
use proptest::prelude::*;

fn ring_and_nodes() -> impl Strategy<Value = (u16, u16, u16)> {
    (2u16..=64).prop_flat_map(|n| (Just(n), 0..n, 0..n))
}

proptest! {
    /// hops(a,b) + hops(b,a) is 0 (same node) or N.
    #[test]
    fn hops_antisymmetric((n, a, b) in ring_and_nodes()) {
        let t = RingTopology::new(n);
        let ab = t.hops(NodeId(a), NodeId(b));
        let ba = t.hops(NodeId(b), NodeId(a));
        if a == b {
            prop_assert_eq!(ab + ba, 0);
        } else {
            prop_assert_eq!(ab + ba, n);
        }
    }

    /// downstream/upstream are inverses.
    #[test]
    fn down_up_inverse((n, a, k) in ring_and_nodes()) {
        let t = RingTopology::new(n);
        let down = t.downstream(NodeId(a), k);
        prop_assert_eq!(t.upstream(down, k), NodeId(a));
    }

    /// A segment of h hops has exactly h links, starts at the egress link
    /// and never contains the sender's ingress link.
    #[test]
    fn segment_shape((n, a, _b) in ring_and_nodes(), h in 0u16..64) {
        let t = RingTopology::new(n);
        let h = h % n;
        let seg = t.segment_hops(NodeId(a), h);
        prop_assert_eq!(seg.len(), h as u32);
        if h > 0 {
            prop_assert!(seg.contains(t.egress(NodeId(a))));
        }
        prop_assert!(!seg.contains(t.ingress(NodeId(a))) || h == n, "h={h} n={n}");
    }

    /// Two segments are disjoint iff their link sets do not intersect —
    /// and the bitmask operations agree with a naive set model.
    #[test]
    fn linkset_matches_naive_model(
        n in 2u16..=64,
        xs in prop::collection::vec(0u16..64, 0..20),
        ys in prop::collection::vec(0u16..64, 0..20),
    ) {
        use std::collections::BTreeSet;
        let xs: Vec<u16> = xs.into_iter().map(|x| x % n).collect();
        let ys: Vec<u16> = ys.into_iter().map(|y| y % n).collect();
        let a: LinkSet = xs.iter().map(|&x| ccr_phys::LinkId(x)).collect();
        let b: LinkSet = ys.iter().map(|&y| ccr_phys::LinkId(y)).collect();
        let sa: BTreeSet<u16> = xs.iter().copied().collect();
        let sb: BTreeSet<u16> = ys.iter().copied().collect();
        prop_assert_eq!(a.len() as usize, sa.len());
        prop_assert_eq!(a.is_disjoint(b), sa.is_disjoint(&sb));
        prop_assert_eq!(a.union(b).len() as usize, sa.union(&sb).count());
        prop_assert_eq!(a.intersection(b).len() as usize, sa.intersection(&sb).count());
        let listed: Vec<u16> = a.iter().map(|l| l.0).collect();
        let expect: Vec<u16> = sa.iter().copied().collect();
        prop_assert_eq!(listed, expect);
    }

    /// Equation 1 is linear: handover(a) + handover(b) = handover(a+b).
    #[test]
    fn handover_linear(n in 2u16..=64, len_m in 1.0f64..500.0, a in 0u16..32, b in 0u16..32) {
        let m = TimingModel::new(PhysParams::with_link_length(len_m), n);
        let a = a % n;
        let b = b % n;
        prop_assume!(a + b < n);
        let lhs = m.handover_time(a) + m.handover_time(b);
        prop_assert_eq!(lhs, m.handover_time(a + b));
    }

    /// Equation 2 grows monotonically in N and t_node, and the minimum
    /// feasible slot bytes always produce a feasible slot.
    #[test]
    fn min_slot_monotone(n in 2u16..=63, len_m in 1.0f64..100.0, tn_ns in 1u64..500) {
        let t_node = ccr_sim::TimeDelta::from_ns(tn_ns);
        let small = TimingModel::new(PhysParams::with_link_length(len_m), n);
        let large = TimingModel::new(PhysParams::with_link_length(len_m), n + 1);
        prop_assert!(small.min_slot(t_node) < large.min_slot(t_node));
        let bytes = small.min_slot_bytes(t_node);
        prop_assert!(small.slot_time(bytes) >= small.min_slot(t_node));
        if bytes > 0 {
            prop_assert!(small.slot_time(bytes - 1) < small.min_slot(t_node));
        }
    }

    /// Multicast segments cover the segment of every member destination.
    #[test]
    fn multicast_covers_members(
        n in 3u16..=64,
        src in 0u16..64,
        dests in prop::collection::vec(0u16..64, 1..8),
    ) {
        let t = RingTopology::new(n);
        let src = NodeId(src % n);
        let dests: Vec<NodeId> = dests
            .into_iter()
            .map(|d| NodeId(d % n))
            .filter(|&d| d != src)
            .collect();
        prop_assume!(!dests.is_empty());
        let seg = t.multicast_segment(src, dests.clone());
        for d in dests {
            let sub = t.segment(src, d);
            prop_assert_eq!(sub.intersection(seg), sub, "member segment not covered");
        }
    }
}
