//! Randomised tests for ring geometry and timing invariants.
//!
//! Formerly `proptest` properties; now driven by the seeded [`DetRng`]
//! from `ccr-sim` so the workspace needs no external dependencies.

use ccr_phys::{LinkSet, NodeId, PhysParams, RingTopology, TimingModel};
use ccr_sim::rng::DetRng;
use ccr_sim::SeedSequence;

const CASES: u64 = 256;

fn ring_and_nodes(rng: &mut DetRng) -> (u16, u16, u16) {
    let n = rng.gen_range(2u16..=64);
    (n, rng.gen_range(0..n), rng.gen_range(0..n))
}

/// hops(a,b) + hops(b,a) is 0 (same node) or N.
#[test]
fn hops_antisymmetric() {
    let mut rng = SeedSequence::new(0x9407).stream("hops", 0);
    for _ in 0..CASES {
        let (n, a, b) = ring_and_nodes(&mut rng);
        let t = RingTopology::new(n);
        let ab = t.hops(NodeId(a), NodeId(b));
        let ba = t.hops(NodeId(b), NodeId(a));
        if a == b {
            assert_eq!(ab + ba, 0);
        } else {
            assert_eq!(ab + ba, n);
        }
    }
}

/// downstream/upstream are inverses.
#[test]
fn down_up_inverse() {
    let mut rng = SeedSequence::new(0x9407).stream("updown", 0);
    for _ in 0..CASES {
        let (n, a, k) = ring_and_nodes(&mut rng);
        let t = RingTopology::new(n);
        let down = t.downstream(NodeId(a), k);
        assert_eq!(t.upstream(down, k), NodeId(a));
    }
}

/// A segment of h hops has exactly h links, starts at the egress link
/// and never contains the sender's ingress link.
#[test]
fn segment_shape() {
    let mut rng = SeedSequence::new(0x9407).stream("seg", 0);
    for _ in 0..CASES {
        let (n, a, _) = ring_and_nodes(&mut rng);
        let h = rng.gen_range(0u16..64) % n;
        let t = RingTopology::new(n);
        let seg = t.segment_hops(NodeId(a), h);
        assert_eq!(seg.len(), h as u32);
        if h > 0 {
            assert!(seg.contains(t.egress(NodeId(a))));
        }
        assert!(!seg.contains(t.ingress(NodeId(a))) || h == n, "h={h} n={n}");
    }
}

/// Two segments are disjoint iff their link sets do not intersect —
/// and the bitmask operations agree with a naive set model.
#[test]
fn linkset_matches_naive_model() {
    use std::collections::BTreeSet;
    let mut rng = SeedSequence::new(0x9407).stream("linkset", 0);
    for _ in 0..CASES {
        let n = rng.gen_range(2u16..=64);
        let xs: Vec<u16> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0u16..64) % n)
            .collect();
        let ys: Vec<u16> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0u16..64) % n)
            .collect();
        let a: LinkSet = xs.iter().map(|&x| ccr_phys::LinkId(x)).collect();
        let b: LinkSet = ys.iter().map(|&y| ccr_phys::LinkId(y)).collect();
        let sa: BTreeSet<u16> = xs.iter().copied().collect();
        let sb: BTreeSet<u16> = ys.iter().copied().collect();
        assert_eq!(a.len() as usize, sa.len());
        assert_eq!(a.is_disjoint(b), sa.is_disjoint(&sb));
        assert_eq!(a.union(b).len() as usize, sa.union(&sb).count());
        assert_eq!(
            a.intersection(b).len() as usize,
            sa.intersection(&sb).count()
        );
        let listed: Vec<u16> = a.iter().map(|l| l.0).collect();
        let expect: Vec<u16> = sa.iter().copied().collect();
        assert_eq!(listed, expect);
    }
}

/// Equation 1 is linear: handover(a) + handover(b) = handover(a+b).
#[test]
fn handover_linear() {
    let mut rng = SeedSequence::new(0x9407).stream("handover", 0);
    for _ in 0..CASES {
        let n = rng.gen_range(2u16..=64);
        let len_m = rng.gen_range(1.0f64..500.0);
        let a = rng.gen_range(0u16..32) % n;
        let b = rng.gen_range(0u16..32) % n;
        if a + b >= n {
            continue;
        }
        let m = TimingModel::new(PhysParams::with_link_length(len_m), n);
        let lhs = m.handover_time(a) + m.handover_time(b);
        assert_eq!(lhs, m.handover_time(a + b));
    }
}

/// Equation 2 grows monotonically in N and t_node, and the minimum
/// feasible slot bytes always produce a feasible slot.
#[test]
fn min_slot_monotone() {
    let mut rng = SeedSequence::new(0x9407).stream("minslot", 0);
    for _ in 0..CASES {
        let n = rng.gen_range(2u16..=63);
        let len_m = rng.gen_range(1.0f64..100.0);
        let tn_ns = rng.gen_range(1u64..500);
        let t_node = ccr_sim::TimeDelta::from_ns(tn_ns);
        let small = TimingModel::new(PhysParams::with_link_length(len_m), n);
        let large = TimingModel::new(PhysParams::with_link_length(len_m), n + 1);
        assert!(small.min_slot(t_node) < large.min_slot(t_node));
        let bytes = small.min_slot_bytes(t_node);
        assert!(small.slot_time(bytes) >= small.min_slot(t_node));
        if bytes > 0 {
            assert!(small.slot_time(bytes - 1) < small.min_slot(t_node));
        }
    }
}

/// Multicast segments cover the segment of every member destination.
#[test]
fn multicast_covers_members() {
    let mut rng = SeedSequence::new(0x9407).stream("mcast", 0);
    for _ in 0..CASES {
        let n = rng.gen_range(3u16..=64);
        let src = NodeId(rng.gen_range(0u16..64) % n);
        let dests: Vec<NodeId> = (0..rng.gen_range(1usize..8))
            .map(|_| NodeId(rng.gen_range(0u16..64) % n))
            .filter(|&d| d != src)
            .collect();
        if dests.is_empty() {
            continue;
        }
        let t = RingTopology::new(n);
        let seg = t.multicast_segment(src, dests.clone());
        for d in dests {
            let sub = t.segment(src, d);
            assert_eq!(sub.intersection(seg), sub, "member segment not covered");
        }
    }
}
