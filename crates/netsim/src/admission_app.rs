//! In-network admission control (Section 6, experiment E8).
//!
//! The paper: "A specific node in the system is designated to solely handle
//! new logical real-time connections … Communication with this node is
//! handled with the best effort traffic user service."
//!
//! This module implements that application layer on top of the simulated
//! network: a requesting node sends a best-effort message to the designated
//! admission node; the admission node runs the Equation 5/6 test and sends
//! a best-effort response back; on acceptance the requester activates the
//! connection. Message *payloads* (the specs) are carried out-of-band in an
//! id-keyed map — the simulator does not model payload bytes, only their
//! slot occupancy — which is behaviour-preserving because the decision
//! latency comes from the two best-effort round-trip messages, which are
//! fully simulated.

use ccr_edf::admission::AdmissionController;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::connection::{ConnectionId, ConnectionSpec};
use ccr_edf::mac::MacProtocol;
use ccr_edf::message::{Destination, Message, MessageId};
use ccr_edf::metrics::Delivery;
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, SimTime, TimeDelta};
use ccr_sim::stats::{Counter, Histogram};
use std::collections::HashMap;

/// Relative deadline given to admission-protocol best-effort messages.
const CONTROL_DEADLINE: TimeDelta = TimeDelta(2_000_000_000); // 2 ms

#[derive(Debug, Clone)]
enum AppPayload {
    Request {
        spec: ConnectionSpec,
        requester: NodeId,
        requested_at: SimTime,
    },
    Response {
        spec: ConnectionSpec,
        accept: bool,
        requested_at: SimTime,
    },
}

/// Statistics of the admission application.
#[derive(Debug)]
pub struct AdmissionAppStats {
    /// Requests issued.
    pub requested: Counter,
    /// Requests accepted (connection activated).
    pub accepted: Counter,
    /// Requests rejected.
    pub rejected: Counter,
    /// Request → activation latency (ps).
    pub decision_latency: Histogram,
}

impl AdmissionAppStats {
    fn new() -> Self {
        AdmissionAppStats {
            requested: Counter::new(),
            accepted: Counter::new(),
            rejected: Counter::new(),
            decision_latency: Histogram::for_latency(),
        }
    }
}

/// The distributed admission-control application.
#[derive(Debug)]
pub struct AdmissionApp {
    admission_node: NodeId,
    controller: AdmissionController,
    payloads: HashMap<MessageId, AppPayload>,
    /// Statistics.
    pub stats: AdmissionAppStats,
    /// Ids of connections activated through this app.
    pub activated: Vec<ConnectionId>,
}

impl AdmissionApp {
    /// Create the app with its own mirror of the admission state (the
    /// designated node's view).
    pub fn new(admission_node: NodeId, model: AnalyticModel, topo: ccr_phys::RingTopology) -> Self {
        AdmissionApp {
            admission_node,
            controller: AdmissionController::new(model, topo),
            payloads: HashMap::new(),
            stats: AdmissionAppStats::new(),
            activated: Vec::new(),
        }
    }

    /// Convenience constructor from a network.
    pub fn for_network<P: MacProtocol>(net: &RingNetwork<P>) -> Self {
        Self::new(NodeId(0), *net.analytic(), net.config().topology())
    }

    /// Issue a connection request from `requester`. The request travels as
    /// a best-effort message unless the requester *is* the admission node,
    /// in which case it is decided locally (still activating next slot).
    pub fn request<P: MacProtocol>(
        &mut self,
        net: &mut RingNetwork<P>,
        requester: NodeId,
        spec: ConnectionSpec,
    ) {
        self.stats.requested.incr();
        let now = net.now();
        if requester == self.admission_node {
            self.decide_and_respond(net, spec, requester, now, true);
            return;
        }
        let msg = Message::best_effort(
            requester,
            Destination::Unicast(self.admission_node),
            1,
            now,
            now + CONTROL_DEADLINE,
        );
        let id = net.submit_message(now, msg);
        self.payloads.insert(
            id,
            AppPayload::Request {
                spec,
                requester,
                requested_at: now,
            },
        );
    }

    /// Decide a spec at the admission node; if remote, send the response
    /// message, else finish locally.
    fn decide_and_respond<P: MacProtocol>(
        &mut self,
        net: &mut RingNetwork<P>,
        spec: ConnectionSpec,
        requester: NodeId,
        requested_at: SimTime,
        local: bool,
    ) {
        let accept = self.controller.admit(&spec).is_ok();
        if local {
            self.finish(net, spec, accept, requested_at);
            return;
        }
        let now = net.now();
        let msg = Message::best_effort(
            self.admission_node,
            Destination::Unicast(requester),
            1,
            now,
            now + CONTROL_DEADLINE,
        );
        let id = net.submit_message(now, msg);
        self.payloads.insert(
            id,
            AppPayload::Response {
                spec,
                accept,
                requested_at,
            },
        );
    }

    /// Complete a decided request at the requester.
    fn finish<P: MacProtocol>(
        &mut self,
        net: &mut RingNetwork<P>,
        spec: ConnectionSpec,
        accept: bool,
        requested_at: SimTime,
    ) {
        let now = net.now();
        self.stats
            .decision_latency
            .record(now.saturating_since(requested_at).as_ps());
        if accept {
            // The network's own controller runs the same test on the same
            // admitted set, so this cannot fail.
            let id = net
                .open_connection(spec)
                .expect("mirror admission must agree");
            self.activated.push(id);
            self.stats.accepted.incr();
        } else {
            self.stats.rejected.incr();
        }
    }

    /// Process the deliveries of one slot (clone them out of the outcome
    /// first). Call after every `step_slot`.
    pub fn process_deliveries<P: MacProtocol>(
        &mut self,
        net: &mut RingNetwork<P>,
        deliveries: &[Delivery],
    ) {
        for d in deliveries {
            let Some(payload) = self.payloads.remove(&d.msg.id) else {
                continue;
            };
            match payload {
                AppPayload::Request {
                    spec,
                    requester,
                    requested_at,
                } => self.decide_and_respond(net, spec, requester, requested_at, false),
                AppPayload::Response {
                    spec,
                    accept,
                    requested_at,
                } => self.finish(net, spec, accept, requested_at),
            }
        }
    }

    /// The mirror controller's admitted utilisation.
    pub fn admitted_utilisation(&self) -> f64 {
        self.controller.admitted_utilisation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_edf::config::NetworkConfig;

    fn net() -> RingNetwork {
        let cfg = NetworkConfig::builder(8)
            .slot_bytes(1024)
            .build_auto_slot()
            .unwrap();
        RingNetwork::new_ccr_edf(cfg)
    }

    fn drive(net: &mut RingNetwork, app: &mut AdmissionApp, slots: u64) {
        for _ in 0..slots {
            let deliveries = net.step_slot().deliveries.clone();
            app.process_deliveries(net, &deliveries);
        }
    }

    #[test]
    fn remote_request_round_trip_activates_connection() {
        let mut n = net();
        let mut app = AdmissionApp::for_network(&n);
        let spec = ConnectionSpec::unicast(NodeId(3), NodeId(5))
            .period(TimeDelta::from_us(100))
            .size_slots(1);
        app.request(&mut n, NodeId(3), spec);
        drive(&mut n, &mut app, 200);
        assert_eq!(app.stats.accepted.get(), 1);
        assert_eq!(app.stats.rejected.get(), 0);
        assert_eq!(app.activated.len(), 1);
        // decision took at least two slots (request + response)
        let lat = app.stats.decision_latency.min().unwrap();
        assert!(lat >= 2 * n.config().slot_time().as_ps());
        // and traffic then flows
        drive(&mut n, &mut app, 2_000);
        assert!(n.metrics().delivered_rt.get() > 10);
        assert_eq!(n.metrics().rt_deadline_misses.get(), 0);
    }

    #[test]
    fn local_request_decided_immediately() {
        let mut n = net();
        let mut app = AdmissionApp::for_network(&n);
        let spec = ConnectionSpec::unicast(NodeId(0), NodeId(4))
            .period(TimeDelta::from_us(100))
            .size_slots(1);
        app.request(&mut n, NodeId(0), spec);
        assert_eq!(app.stats.accepted.get(), 1);
        assert_eq!(app.stats.decision_latency.max(), Some(0));
    }

    #[test]
    fn overload_rejected_via_protocol() {
        let mut n = net();
        let mut app = AdmissionApp::for_network(&n);
        let slot = n.config().slot_time();
        // u_max ≈ 0.88 at N = 8: two hogs of u = 0.40 fit, the third must
        // be rejected
        let hog = |src: u16, dst: u16| {
            ConnectionSpec::unicast(NodeId(src), NodeId(dst))
                .period(TimeDelta::from_ps((slot.as_ps() as f64 / 0.40) as u64))
                .size_slots(1)
        };
        app.request(&mut n, NodeId(1), hog(1, 2));
        app.request(&mut n, NodeId(3), hog(3, 4));
        app.request(&mut n, NodeId(5), hog(5, 6));
        drive(&mut n, &mut app, 500);
        assert_eq!(app.stats.accepted.get(), 2);
        assert_eq!(app.stats.rejected.get(), 1);
        assert!(app.admitted_utilisation() <= n.analytic().u_max());
    }
}
