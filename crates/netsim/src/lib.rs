//! # ccr-netsim — end-to-end simulation and the experiment harness
//!
//! Glues the protocol crates (`ccr-edf`, `cc-fpr`), the physical model and
//! the workload generators into runnable experiments. Every table/figure of
//! the reproduction (DESIGN.md §4, experiments E1–E16) has a runner in
//! [`experiments`] and a subcommand in the `ccr-experiments` binary.
//!
//! The harness is deliberately deterministic: every experiment takes a
//! master seed and derives all randomness through
//! [`ccr_sim::SeedSequence`]; repeated runs produce identical tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission_app;
pub mod experiments;
pub mod runner;
pub mod sweep;
pub mod trace;

pub use runner::{expand_periodic, run_with_mac, RunSummary, Workload};
pub use trace::{SlotRecord, TraceRecorder};
