//! The experiment registry — one runner per reproduced table/figure.
//!
//! See DESIGN.md §4 for the experiment index. Every runner is a pure
//! function of [`ExpOptions`] (seeded, deterministic) returning rendered
//! tables; the `ccr-experiments` binary prints them and EXPERIMENTS.md
//! records the measured results against the paper's claims.

pub mod e01_priority;
pub mod e02_handover;
pub mod e03_slot_length;
pub mod e04_umax;
pub mod e05_latency_bound;
pub mod e06_shootout;
pub mod e07_spatial_reuse;
pub mod e08_admission;
pub mod e09_services;
pub mod e10_slot_sweep;
pub mod e11_mapping;
pub mod e12_bounds;
pub mod e13_fairness;
pub mod e14_three_way;
pub mod e15_dbf;
pub mod e16_hetero;
pub mod e17_multiring;
pub mod e18_chaos;
pub mod e19_calculus;
pub mod e20_churn;
pub mod e21_gateway;
pub mod e22_survivability;
pub mod e23_synthesis;

use ccr_edf::config::{NetworkConfig, NetworkConfigBuilder};
use ccr_sim::report::Table;

/// Options shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Shrink sweeps/horizons for CI and tests.
    pub quick: bool,
    /// Worker threads for parallel sweeps.
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 0x000C_CEDF_2002,
            quick: false,
            threads: crate::sweep::default_threads(),
        }
    }
}

impl ExpOptions {
    /// A quick configuration for tests.
    pub fn quick(seed: u64) -> Self {
        ExpOptions {
            seed,
            quick: true,
            threads: 2,
        }
    }

    /// Simulation horizon in slots for full/quick mode.
    pub fn slots(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(2_000)
        } else {
            full
        }
    }

    /// Seeds per sweep point.
    pub fn reps(&self, full: u64) -> u64 {
        if self.quick {
            1
        } else {
            full
        }
    }
}

/// Result of one experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Rendered tables (printed by the CLI, dumped as CSV on request).
    pub tables: Vec<Table>,
    /// Free-form observations the runner wants recorded.
    pub notes: Vec<String>,
}

/// The registry entry type.
pub type Runner = fn(&ExpOptions) -> ExperimentResult;

/// All experiments: `(id, title, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "e1",
            "Table 1: priority-level allocation and laxity mapping",
            e01_priority::run,
        ),
        (
            "e2",
            "Eq. 1 / Figs. 6-7: clock hand-over time vs hop distance",
            e02_handover::run,
        ),
        (
            "e3",
            "Eq. 2: minimum slot length and control-phase budget",
            e03_slot_length::run,
        ),
        (
            "e4",
            "Eqs. 5-6: U_max and the admission boundary",
            e04_umax::run,
        ),
        (
            "e5",
            "Eqs. 3-4: worst-case latency bound vs measured maxima",
            e05_latency_bound::run,
        ),
        (
            "e6",
            "Headline: CCR-EDF vs CC-FPR deadline misses vs offered load",
            e06_shootout::run,
        ),
        (
            "e7",
            "Spatial reuse: aggregate throughput vs traffic locality",
            e07_spatial_reuse::run,
        ),
        (
            "e8",
            "Runtime admission control over best-effort messages",
            e08_admission::run,
        ),
        (
            "e9",
            "Services: barrier, reduction, short messages, reliability",
            e09_services::run,
        ),
        (
            "e10",
            "Ablation: slot length vs latency and utilisation",
            e10_slot_sweep::run,
        ),
        (
            "e11",
            "Ablation: logarithmic vs linear laxity mapping",
            e11_mapping::run,
        ),
        (
            "e12",
            "CC-FPR pessimistic bound vs CCR-EDF guarantee",
            e12_bounds::run,
        ),
        (
            "e13",
            "Ablation: tie-break rule and per-node fairness",
            e13_fairness::run,
        ),
        (
            "e14",
            "Three-way: CCR-EDF vs CC-FPR vs static TDMA",
            e14_three_way::run,
        ),
        (
            "e15",
            "Extension: constrained deadlines and demand-bound admission",
            e15_dbf::run,
        ),
        (
            "e16",
            "Extension: heterogeneous link lengths",
            e16_hetero::run,
        ),
        (
            "e17",
            "Extension: multi-ring fabric with end-to-end EDF admission",
            e17_multiring::run,
        ),
        (
            "e18",
            "Robustness: chaos soak, self-healing, and bridge failover",
            e18_chaos::run,
        ),
        (
            "e19",
            "Extension: network-calculus certified bounds on cyclic fabrics",
            e19_calculus::run,
        ),
        (
            "e20",
            "Extension: incremental admission-churn soak at 10k-scale resident sets",
            e20_churn::run,
        ),
        (
            "e21",
            "Extension: real-wire gateway — virtual links paced through EDF admission",
            e21_gateway::run,
        ),
        (
            "e22",
            "Robustness: edge survivability — chaos, link churn, record/replay",
            e22_survivability::run,
        ),
        (
            "e23",
            "Extension: calculus-certified topology synthesis from traffic matrices",
            e23_synthesis::run,
        ),
    ]
}

/// Look up one experiment by id.
pub fn by_id(id: &str) -> Option<(&'static str, &'static str, Runner)> {
    registry().into_iter().find(|(eid, _, _)| *eid == id)
}

/// Standard network-config builder used by most experiments.
pub fn base_config(n: u16, slot_bytes: u32) -> NetworkConfigBuilder {
    NetworkConfig::builder(n).slot_bytes(slot_bytes)
}

/// The standard ring sizes swept by N-dependent experiments.
pub fn ring_sizes(opts: &ExpOptions) -> Vec<u16> {
    if opts.quick {
        vec![4, 8, 16]
    } else {
        vec![4, 8, 16, 32, 64]
    }
}
