//! E16 — extension: heterogeneous link lengths.
//!
//! Section 2 assumes "all links … of the same length", which makes
//! Equation 1 a single line `P·L·D`. Real installations differ; this
//! experiment gives every link a random length (log-uniform over one
//! order of magnitude around a 10 m mean) and measures:
//!
//! 1. the gap distribution vs two analytic models — Eq. 1 evaluated with
//!    the *average* length (the paper's natural approximation) and the
//!    segment-exact heterogeneous bound;
//! 2. whether the average-length `U_max` over- or under-promises, and that
//!    the hetero-aware bound keeps the guarantee.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::network::RingNetwork;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E16.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let seq = SeedSequence::new(opts.seed);
    let slots = opts.slots(100_000);
    let reps: Vec<u64> = (0..opts.reps(4)).collect();

    let rows = parallel_map(reps, opts.threads, |&rep| {
        let mut rng = seq.subsequence("e16", rep).stream("lengths", 0);
        // log-uniform lengths in [3, 30] m, mean ≈ 10 m
        let lengths: Vec<f64> = (0..n).map(|_| 3.0 * 10f64.powf(rng.gen_f64())).collect();
        let mean_len = lengths.iter().sum::<f64>() / n as f64;
        let hetero = base_config(n, 2_048)
            .link_lengths_m(lengths)
            .build_auto_slot()
            .unwrap();
        let homo_avg = base_config(n, hetero.slot_bytes)
            .link_length_m(mean_len)
            .build_auto_slot()
            .unwrap();

        let hetero_model = AnalyticModel::new(&hetero);
        let avg_model = AnalyticModel::new(&homo_avg);

        // drive at 0.8 of the hetero-aware (sound) u_max
        let mut trng = seq.subsequence("e16", rep).stream("traffic", 0);
        let set = PeriodicSetBuilder::new(
            n,
            n as usize * 2,
            0.8 * hetero_model.u_max(),
            hetero.slot_time(),
        )
        .periods(50, 2_000)
        .generate(&mut trng);
        let mut net = RingNetwork::new_ccr_edf(hetero.clone());
        for spec in set {
            let _ = net.open_connection(spec);
        }
        net.run_slots(slots);
        let m = net.metrics();
        (
            rep,
            mean_len,
            m.handover_gap.mean().unwrap_or(f64::NAN) / 1e3,
            m.handover_gap.max().map_or(f64::NAN, |v| v as f64 / 1e3),
            avg_model.max_handover().as_ns_f64(),
            hetero.max_handover().as_ns_f64(),
            avg_model.u_max(),
            hetero_model.u_max(),
            m.rt_deadline_misses.get(),
            m.rt_bound_violations.get(),
        )
    });

    let mut table = Table::new(
        "E16 — heterogeneous link lengths (log-uniform 3-30 m, N = 16, load 0.8·u_max)",
        &[
            "rep",
            "mean_len_m",
            "gap_mean_ns",
            "gap_max_ns",
            "eq1_avgL_max_ns",
            "hetero_max_ns",
            "u_max_avgL",
            "u_max_hetero",
            "misses",
        ],
    );
    let mut notes = vec![];
    let mut avg_underestimates = 0;
    for (rep, mean_len, gmean, gmax, avg_bound, het_bound, u_avg, u_het, misses, viol) in &rows {
        assert_eq!(*misses, 0, "hetero-admitted set missed (rep {rep})");
        assert_eq!(*viol, 0);
        assert!(
            *gmax <= het_bound + 1e-6,
            "gap exceeded the hetero bound (rep {rep})"
        );
        if gmax > avg_bound {
            avg_underestimates += 1;
        }
        table.row(&[
            rep.to_string(),
            fmt_f64(*mean_len, 1),
            fmt_f64(*gmean, 1),
            fmt_f64(*gmax, 1),
            fmt_f64(*avg_bound, 1),
            fmt_f64(*het_bound, 1),
            fmt_f64(*u_avg, 4),
            fmt_f64(*u_het, 4),
            misses.to_string(),
        ]);
    }
    notes.push(format!(
        "in {avg_underestimates}/{} repetitions the measured worst gap exceeded Eq. 1 \
         evaluated with the average length — the paper's equal-length assumption \
         under-promises there; the segment-exact hetero bound held every time",
        rows.len()
    ));
    notes.push(
        "admitted traffic at 0.8 of the hetero-aware u_max: zero misses on every ring".into(),
    );

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_hetero() {
        let r = run(&ExpOptions::quick(16));
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].n_rows() >= 1);
    }
}
