//! E23 — calculus-certified topology synthesis from traffic matrices.
//!
//! Every fabric so far was drawn by hand: pick rings, place nodes, wire
//! bridges, then hope the admission layer certifies the workload.
//! `ccr-synth` inverts that: the traffic matrix is the specification and
//! the topology is the output, searched under the same (min,+) calculus
//! engine the runtime admits against, so the synthesized fabric is
//! admissible by construction. This experiment validates the synthesizer
//! three ways:
//!
//! 1. **Headline** — a 12-station, 3-cluster reference matrix is
//!    synthesized and compared against the hand-built 3×8-node cyclic
//!    triangle (24 nodes + 3 bridges = cost 27): the synthesized fabric
//!    certifies the same matrix at strictly lower cost, and a slot-engine
//!    soak — with every best-effort flow flooding far past its declared
//!    rate — meets **every** guaranteed deadline with zero observed
//!    latencies above the certificates.
//! 2. **Differential sweep** — seeded random matrices are synthesized;
//!    for every returned topology a cold forced-full solve must reproduce
//!    the search's warm-started bounds **bit-identically** (zero
//!    mismatches), and a slot-engine confirmation run must observe zero
//!    guaranteed misses and zero certified-bound violations.
//! 3. **Refusals** — infeasible matrices (overloaded stations, hopeless
//!    deadlines) come back as typed errors with a census, never as an
//!    uncertified topology.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e23_synthesis.csv`, `results/e23_differential.csv`.

use super::{ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::rng::DetRng;
use ccr_sim::{SeedSequence, TimeDelta};
use ccr_synth::{synthesize, Criticality, SynthConfig, TrafficMatrix};

/// The reference matrix: 12 stations in three locality clusters of four,
/// heavy intra-cluster traffic, light cross-cluster coupling, plus two
/// best-effort flows that only need routes.
fn reference_matrix() -> TrafficMatrix {
    let mut m = TrafficMatrix::new(12);
    for cluster in 0..3u16 {
        let base = cluster * 4;
        // A ring of flows inside each cluster at a demanding period.
        for i in 0..4u16 {
            let f = m.flow(base + i, base + (i + 1) % 4, TimeDelta::from_us(400));
            f.deadline = TimeDelta::from_us(300);
        }
    }
    // Cross-cluster couplings, one per cluster pair, slower.
    for &(a, b) in &[(0u16, 4u16), (4, 8), (8, 0)] {
        let f = m.flow(a, b, TimeDelta::from_ms(2));
        f.deadline = TimeDelta::from_ms(1);
    }
    // Best-effort telemetry: placed, routed, never certified.
    for &(a, b) in &[(1u16, 9u16), (5, 2)] {
        let f = m.flow(a, b, TimeDelta::from_ms(1));
        f.criticality = Criticality::BestEffort;
    }
    m
}

/// The hand-built comparison fabric: the E19 cyclic triangle, 3 rings of
/// 8 nodes and 3 bridges — cost 24·1 + 3·1 = 27 under the synth cost
/// model.
fn hand_built_triangle() -> FabricTopology {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(8);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
    b.allow_cycles_with(CycleBound::Calculus);
    b.build().expect("triangle builds under the calculus bound")
}

/// Run E23.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e23", 0);
    let mut notes = vec![];

    let headline = headline_table(opts, &seq, &mut notes);
    let differential = differential_table(opts, &seq, &mut notes);

    for (path, table) in [
        ("results/e23_synthesis.csv", &headline),
        ("results/e23_differential.csv", &differential),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![headline, differential],
        notes,
    }
}

/// E23a: synthesize the reference matrix, beat the hand-built triangle on
/// cost, and confirm every certificate in the slot engine under
/// best-effort flood.
fn headline_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let matrix = reference_matrix();
    let synth = synthesize(&matrix, &SynthConfig::default())
        .expect("the reference matrix is synthesizable");

    // The hand-built yardstick under the same cost model.
    let triangle = hand_built_triangle();
    let hand_nodes: u64 = (0..triangle.n_rings())
        .map(|r| u64::from(triangle.ring_size(RingId(r))))
        .sum();
    let hand_cost = hand_nodes + triangle.bridges().len() as u64;
    assert_eq!(hand_cost, 27, "3x8 triangle + 3 bridges");
    assert!(
        synth.report.cost < hand_cost,
        "synthesized cost {} is not below the hand-built {hand_cost}",
        synth.report.cost
    );

    // Slot-engine confirmation: build the synthesized fabric, open every
    // guaranteed flow (periodic sources) and every best-effort flow
    // (flooded manually), soak, then audit.
    let mut fabric = Fabric::new(
        synth
            .fabric_config(seq.child_seed("headline", 0))
            .expect("synthesized fabric config builds")
            .threads(opts.threads),
    )
    .expect("synthesized fabric builds");
    assert!(fabric.calculus_enabled());

    let mut guaranteed = vec![];
    for (k, _) in matrix.guaranteed() {
        let fid = fabric
            .open_connection(synth.connection_spec(k))
            .expect("synthesized topology admits its own matrix");
        guaranteed.push((k, fid));
    }
    // Certificates are a property of the whole admitted set, so compare
    // only once every flow is resident: the engine's one-by-one warm
    // admissions must land on the same fixed point the synthesizer's
    // batch certification found.
    let guaranteed: Vec<(usize, FabricConnectionId, TimeDelta)> = guaranteed
        .into_iter()
        .map(|(k, fid)| {
            let engine_bound = fabric.e2e_bound(fid).expect("certified");
            let (_, synth_bound) = synth
                .bounds
                .iter()
                .find(|(i, _)| *i == k)
                .expect("every guaranteed flow carries a synthesis bound");
            assert_eq!(
                engine_bound, *synth_bound,
                "flow {k}: the fabric's certificate differs from the synthesizer's"
            );
            (k, fid, engine_bound)
        })
        .collect();
    let mut best_effort = vec![];
    for (k, _) in matrix.best_effort() {
        let fid = fabric
            .open_best_effort(synth.connection_spec(k))
            .expect("best-effort flows route on the synthesized topology");
        best_effort.push(fid);
    }

    // Soak with the best-effort flows flooding every slot — far past
    // their declared periods.
    let horizon = opts.slots(40_000);
    for _ in 0..horizon {
        for &fid in &best_effort {
            let _ = fabric.inject(fid);
        }
        fabric.run_slots(1);
    }
    fabric.run_slots(2_000); // drain

    let mut table = Table::new(
        "E23a — headline: synthesized fabric vs the hand-built 3x8 triangle",
        &[
            "fabric",
            "nodes",
            "bridges",
            "cost",
            "rings",
            "worst_tightness",
            "guaranteed_misses",
        ],
    );
    let mut worst_ratio = 0.0f64;
    for &(k, fid, bound) in &guaranteed {
        if let Some(observed) = fabric.observed_e2e_max(fid) {
            assert!(
                observed <= bound,
                "flow {k}: observed {observed} exceeds certified bound {bound}"
            );
            worst_ratio = worst_ratio.max(observed.as_ps() as f64 / bound.as_ps() as f64);
        }
    }
    let misses = fabric.metrics().e2e_delivered.get() - fabric.metrics().e2e_met.get();
    assert_eq!(misses, 0, "guaranteed deliveries missed deadlines");
    assert!(
        fabric.metrics().be_delivered.get() > 0,
        "best-effort flood never got through"
    );
    table.row(&[
        "synthesized".into(),
        synth.report.nodes.to_string(),
        synth.report.bridges.to_string(),
        synth.report.cost.to_string(),
        synth.report.rings.len().to_string(),
        fmt_f64(worst_ratio, 3),
        misses.to_string(),
    ]);
    table.row(&[
        "hand-built 3x8".into(),
        hand_nodes.to_string(),
        triangle.bridges().len().to_string(),
        hand_cost.to_string(),
        "3".into(),
        "-".into(),
        "-".into(),
    ]);
    notes.push(format!(
        "synthesized fabric: cost {} vs hand-built 27; {} certifier call(s) ({} full); \
         every guaranteed deadline met under best-effort flood ({} best-effort deliveries)",
        synth.report.cost,
        synth.report.certifier_calls,
        synth.report.full_solves,
        fabric.metrics().be_delivered.get(),
    ));
    notes.push(format!("synth report: {}", synth.report));
    table
}

/// Outcome of one random matrix in the differential sweep.
struct DiffOutcome {
    synthesized: bool,
    bit_mismatches: u64,
    bound_violations: u64,
    guaranteed_misses: u64,
    cost: u64,
}

/// E23b: random matrices — bit-identical forced-full re-certification and
/// slot-engine confirmation with zero guaranteed misses.
fn differential_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let n_cases: u64 = if opts.quick { 12 } else { 30 };
    let horizon = opts.slots(20_000);
    let cases: Vec<u64> = (0..n_cases).collect();

    let rows = parallel_map(cases, opts.threads, |&i| {
        let seed = seq.child_seed("diff", i);
        let mut rng = DetRng::new(seed);
        let stations = 4 + rng.gen_range(0..7u16); // 4..=10
        let mut m = TrafficMatrix::new(stations);
        let n_flows = 3 + rng.gen_range(0..6usize);
        for _ in 0..n_flows {
            let src = rng.gen_range(0..stations);
            let mut dst = rng.gen_range(0..stations);
            if dst == src {
                dst = (dst + 1) % stations;
            }
            let period_us = 300 + rng.gen_range(0..2_000u64);
            let f = m.flow(src, dst, TimeDelta::from_us(period_us));
            f.deadline = TimeDelta::from_us((period_us * (50 + rng.gen_range(0..51u64))) / 100);
            if rng.gen_bool(0.1) {
                f.criticality = Criticality::BestEffort;
            }
        }
        let synth = match synthesize(&m, &SynthConfig::default()) {
            Ok(s) => s,
            Err(_) => {
                return DiffOutcome {
                    synthesized: false,
                    bit_mismatches: 0,
                    bound_violations: 0,
                    guaranteed_misses: 0,
                    cost: 0,
                }
            }
        };

        // Bit-identical forced-full reference.
        let reference = synth
            .recertify_full()
            .expect("returned topologies re-certify");
        let bit_mismatches = synth
            .search_bounds
            .iter()
            .zip(reference.iter())
            .filter(|(a, b)| a != b)
            .count() as u64;

        // Slot-engine confirmation.
        let mut fabric = Fabric::new(
            synth
                .fabric_config(seed)
                .expect("synthesized config builds"),
        )
        .expect("synthesized fabric builds");
        let mut fids = vec![];
        for (k, _) in synth.matrix.guaranteed() {
            let fid = fabric
                .open_connection(synth.connection_spec(k))
                .expect("synthesized topology admits its matrix");
            fids.push(fid);
        }
        for (k, _) in synth.matrix.best_effort() {
            let _ = fabric.open_best_effort(synth.connection_spec(k));
        }
        fabric.run_slots(horizon);
        let bound_violations = fids
            .iter()
            .filter(
                |&&fid| match (fabric.observed_e2e_max(fid), fabric.e2e_bound(fid)) {
                    (Some(obs), Some(bound)) => obs > bound,
                    _ => false,
                },
            )
            .count() as u64;
        let guaranteed_misses =
            fabric.metrics().e2e_delivered.get() - fabric.metrics().e2e_met.get();
        DiffOutcome {
            synthesized: true,
            bit_mismatches,
            bound_violations,
            guaranteed_misses,
            cost: synth.report.cost,
        }
    });

    let synthesized = rows.iter().filter(|r| r.synthesized).count() as u64;
    let mismatches: u64 = rows.iter().map(|r| r.bit_mismatches).sum();
    let violations: u64 = rows.iter().map(|r| r.bound_violations).sum();
    let misses: u64 = rows.iter().map(|r| r.guaranteed_misses).sum();
    assert!(synthesized >= n_cases / 2, "sweep generator too brutal");
    assert_eq!(
        mismatches, 0,
        "warm-started bounds diverged from forced-full reference"
    );
    assert_eq!(violations, 0, "observed latency exceeded a certified bound");
    assert_eq!(
        misses, 0,
        "a synthesized fabric missed a guaranteed deadline"
    );

    let mut table = Table::new(
        "E23b — differential sweep: random matrices, forced-full re-certification, slot-engine confirmation",
        &[
            "matrices",
            "synthesized",
            "rejected_typed",
            "bit_mismatches",
            "bound_violations",
            "guaranteed_misses",
            "mean_cost",
        ],
    );
    let mean_cost = if synthesized > 0 {
        rows.iter().map(|r| r.cost).sum::<u64>() as f64 / synthesized as f64
    } else {
        0.0
    };
    table.row(&[
        n_cases.to_string(),
        synthesized.to_string(),
        (n_cases - synthesized).to_string(),
        mismatches.to_string(),
        violations.to_string(),
        misses.to_string(),
        fmt_f64(mean_cost, 1),
    ]);
    notes.push(format!(
        "{synthesized}/{n_cases} random matrices synthesized; every returned topology \
         re-certified bit-identically under a forced-full solve and confirmed in the \
         slot engine with zero bound violations and zero guaranteed misses"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_quick_runs_clean() {
        let result = run(&ExpOptions::quick(7));
        assert_eq!(result.tables.len(), 2);
        assert!(result.notes.iter().any(|n| n.contains("bit-identically")));
    }
}
