//! E11 — ablation of the laxity → priority mapping function.
//!
//! Section 3 mandates a mapping with "higher resolution of laxity, the
//! closer to its deadline a packet gets" and assumes a logarithmic
//! function, deferring details. This experiment justifies that choice: the
//! same near-saturation workloads run under the paper's logarithmic map and
//! under linear maps with wide and narrow horizons. Coarse resolution near
//! the deadline turns the per-slot priority into a lottery among almost-due
//! messages and misses rise.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::runner::{run_with_mac, Workload};
use crate::sweep::parallel_map;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::arbitration::CcrEdfMac;
use ccr_edf::priority::MapperKind;
use ccr_sim::report::{fmt_f64, fmt_pct, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E11.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let base = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&base);
    let seq = SeedSequence::new(opts.seed);
    let mappers: Vec<(&str, MapperKind)> = vec![
        ("log (paper)", MapperKind::Logarithmic),
        (
            "linear wide",
            MapperKind::Linear {
                horizon_slots: 1 << 14,
            },
        ),
        ("linear narrow", MapperKind::Linear { horizon_slots: 64 }),
    ];
    let loads: Vec<f64> = if opts.quick {
        vec![0.8, 1.0]
    } else {
        vec![0.6, 0.8, 0.9, 0.95, 1.0, 1.05]
    };
    let reps = opts.reps(3);
    let slots = opts.slots(150_000);

    let cases: Vec<(usize, f64, u64)> = (0..mappers.len())
        .flat_map(|mi| {
            loads
                .iter()
                .flat_map(move |&l| (0..reps).map(move |r| (mi, l, r)))
                .collect::<Vec<_>>()
        })
        .collect();
    let mappers_ref = &mappers;
    let base_ref = &base;
    let rows = parallel_map(cases, opts.threads, |&(mi, load, rep)| {
        let mut cfg = base_ref.clone();
        cfg.mapper = mappers_ref[mi].1;
        let target = load * model.u_max();
        // Same traffic for every mapper at a given (load, rep).
        let mut rng = seq
            .subsequence("e11", (load * 1000.0) as u64)
            .stream("traffic", rep);
        let set = PeriodicSetBuilder::new(n, n as usize * 2, target, cfg.slot_time())
            .periods(50, 2_000)
            .generate(&mut rng);
        let s = run_with_mac(cfg, CcrEdfMac, &Workload::raw(set), slots);
        (mi, load, s.rt_miss_ratio, s.rt_latency_p99_us)
    });

    let mut table = Table::new(
        "E11 — miss ratio by laxity mapper at rising load (N = 16, identical traffic)",
        &["load/u_max", "log_miss", "lin_wide_miss", "lin_narrow_miss"],
    );
    let mut notes = vec![];
    for &load in &loads {
        let miss = |mi: usize| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.0 == mi && (r.1 - load).abs() < 1e-9)
                .map(|r| r.2)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        table.row(&[
            fmt_f64(load, 2),
            fmt_pct(miss(0)),
            fmt_pct(miss(1)),
            fmt_pct(miss(2)),
        ]);
    }
    // Aggregate comparison across the near-saturation region.
    let agg = |mi: usize| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.0 == mi && r.1 >= 0.9 && r.1 <= 1.0)
            .map(|r| r.2)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    notes.push(format!(
        "mean miss ratio for load in [0.9, 1.0]·u_max — log: {:.4}, linear-wide: {:.4}, \
         linear-narrow: {:.4}",
        agg(0),
        agg(1),
        agg(2)
    ));

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mapping_ablation() {
        let r = run(&ExpOptions::quick(11));
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].n_rows(), 2);
    }
}
