//! E3 — Equation 2: minimum slot length `N·t_node + t_prop`.
//!
//! Reports the control-phase budget per ring size and service mix, checks
//! the feasibility frontier (a slot one byte below the minimum must be
//! rejected, the minimum itself accepted), and measures the control-channel
//! overhead of a running network.

use super::{base_config, ring_sizes, ExpOptions, ExperimentResult};
use ccr_edf::config::ConfigError;
use ccr_edf::network::RingNetwork;
use ccr_edf::wire::ServiceWireConfig;
use ccr_sim::report::{fmt_f64, fmt_pct, Table};

/// Run E3.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut notes = vec![];

    let mut ta = Table::new(
        "E3a — Equation 2 budget (L = 10 m): t_node, collection, distribution, minimum slot",
        &[
            "n_nodes",
            "services",
            "t_node_ns",
            "collect_us",
            "distrib_us",
            "min_slot_us",
            "min_slot_bytes",
        ],
    );
    for &n in &ring_sizes(opts) {
        for (label, svc) in [
            ("none", ServiceWireConfig::default()),
            ("all", ServiceWireConfig::ALL),
        ] {
            let cfg = base_config(n, 1).services(svc).build_auto_slot().unwrap();
            ta.row(&[
                n.to_string(),
                label.to_string(),
                fmt_f64(cfg.t_node().as_ns_f64(), 1),
                fmt_f64(cfg.collection_time().as_us_f64(), 3),
                fmt_f64(cfg.distribution_time().as_us_f64(), 3),
                fmt_f64(cfg.control_phases_time().as_us_f64(), 3),
                cfg.min_feasible_slot_bytes().to_string(),
            ]);
        }
    }

    // ---- feasibility frontier -------------------------------------------
    let mut tb = Table::new(
        "E3b — feasibility frontier: one byte below the minimum is rejected",
        &["n_nodes", "min_bytes", "below_rejected", "at_accepted"],
    );
    for &n in &ring_sizes(opts) {
        let probe = base_config(n, 1).build_auto_slot().unwrap();
        let need = probe.min_feasible_slot_bytes();
        let below = base_config(n, need - 1).build();
        let at = base_config(n, need).build();
        let below_rejected = matches!(below, Err(ConfigError::SlotTooShort { .. }));
        let at_accepted = at.is_ok();
        assert!(below_rejected && at_accepted, "frontier broken at N={n}");
        tb.row(&[
            n.to_string(),
            need.to_string(),
            below_rejected.to_string(),
            at_accepted.to_string(),
        ]);
    }
    notes.push("Equation 2 frontier verified for every swept N".into());

    // ---- control overhead of a running network ---------------------------
    let mut tc = Table::new(
        "E3c — control-channel usage per slot (measured from runs)",
        &[
            "n_nodes",
            "slot_bytes",
            "control_bits_per_slot",
            "control_vs_data",
        ],
    );
    let slots = opts.slots(20_000);
    for &n in &ring_sizes(opts) {
        let cfg = base_config(n, 4096).build_auto_slot().unwrap();
        let slot_bytes = cfg.slot_bytes;
        let mut net = RingNetwork::new_ccr_edf(cfg);
        net.run_slots(slots);
        let m = net.metrics();
        let per_slot = m.control_bits.get() as f64 / m.slots.get() as f64;
        // Control channel is 1 fibre of 8+... compare bit counts directly:
        // data channel moves slot_bytes*8 bits per slot.
        let ratio = per_slot / (slot_bytes as f64 * 8.0);
        tc.row(&[
            n.to_string(),
            slot_bytes.to_string(),
            fmt_f64(per_slot, 0),
            fmt_pct(ratio),
        ]);
    }
    notes.push(
        "control overhead stays a small fraction of the data channel — the \
         paper's 'control and data are overlapped in time' benefit"
            .into(),
    );

    ExperimentResult {
        tables: vec![ta, tb, tc],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run() {
        let r = run(&ExpOptions::quick(7));
        assert_eq!(r.tables.len(), 3);
        assert!(!r.tables[1].to_csv().contains("false"));
    }
}
