//! E15 — extension: constrained deadlines and the demand-bound admission
//! test.
//!
//! Section 5 assumes relative deadline = period, making the Equation 5
//! utilisation test exact. This experiment extends the framework to
//! constrained deadlines (D < P) and shows:
//!
//! 1. the utilisation test becomes **unsound** — it admits
//!    constrained-deadline sets whose messages then miss even on an
//!    otherwise idle ring;
//! 2. the processor-demand test (`ccr_edf::dbf`) refuses exactly those
//!    sets, and everything it admits runs clean;
//! 3. the price of sound admission: acceptance ratio vs deadline tightness.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::admission::AdmissionPolicy;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, TimeDelta};
use ccr_sim::report::{fmt_f64, fmt_pct, Table};
use ccr_sim::rng::DetRng;
use ccr_sim::SeedSequence;

/// Build a random constrained-deadline set: n_conns connections at total
/// utilisation `u`, each with deadline `D = tightness · P`.
fn constrained_set(
    rng: &mut DetRng,
    n: u16,
    n_conns: usize,
    u_total: f64,
    tightness: f64,
    slot: TimeDelta,
) -> Vec<ConnectionSpec> {
    let shares = ccr_traffic::uunifast(rng, n_conns, u_total);
    shares
        .into_iter()
        .map(|u| {
            let src = NodeId(rng.gen_range(0..n));
            let hops = rng.gen_range(1..n);
            let dst = NodeId((src.0 + hops) % n);
            let p_slots = rng.gen_range(30.0..400.0_f64);
            let e = ((u * p_slots).round() as u32).clamp(1, 12);
            let period_ps = if u > 0.0 {
                ((e as f64 * slot.as_ps() as f64) / u).round() as u64
            } else {
                slot.as_ps() * 400
            }
            .max(slot.as_ps() * 2);
            let period = TimeDelta::from_ps(period_ps);
            let d_ps = ((period_ps as f64 * tightness) as u64).max(slot.as_ps());
            ConnectionSpec::unicast(src, dst)
                .period(period)
                .size_slots(e)
                .deadline(TimeDelta::from_ps(d_ps.min(period_ps)))
        })
        .collect()
}

/// Run E15.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(opts.seed);
    let slots = opts.slots(120_000);
    let tightnesses: Vec<f64> = if opts.quick {
        vec![0.1, 0.5]
    } else {
        vec![0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let load = 0.6; // fixed moderate utilisation — the misses come from D, not U

    let cfg_ref = &cfg;
    let rows = parallel_map(tightnesses.clone(), opts.threads, |&tight| {
        let mut rng = seq
            .subsequence("e15", (tight * 1000.0) as u64)
            .stream("traffic", 0);
        let set = constrained_set(
            &mut rng,
            n,
            n as usize * 2,
            load * model.u_max(),
            tight,
            cfg_ref.slot_time(),
        );

        // Utilisation-policy network: admits on ΣU alone (paper's test).
        let mut util_cfg = cfg_ref.clone();
        util_cfg.admission_policy = AdmissionPolicy::Utilisation;
        let mut util_net = RingNetwork::new_ccr_edf(util_cfg);
        let mut util_admitted = 0u32;
        for spec in &set {
            if util_net.open_connection(spec.clone()).is_ok() {
                util_admitted += 1;
            }
        }
        util_net.run_slots(slots);

        // Demand-bound-policy network on the same candidate set.
        let mut dbf_cfg = cfg_ref.clone();
        dbf_cfg.admission_policy = AdmissionPolicy::DemandBound;
        let mut dbf_net = RingNetwork::new_ccr_edf(dbf_cfg);
        let mut dbf_admitted = 0u32;
        for spec in &set {
            if dbf_net.open_connection(spec.clone()).is_ok() {
                dbf_admitted += 1;
            }
        }
        dbf_net.run_slots(slots);

        let um = util_net.metrics();
        let dm = dbf_net.metrics();
        (
            tight,
            set.len() as u32,
            util_admitted,
            um.rt_miss_ratio(),
            dbf_admitted,
            dm.rt_miss_ratio(),
            dm.delivered_rt.get(),
        )
    });

    let mut table = Table::new(
        "E15 — constrained deadlines (D = tightness·P, ΣU = 0.6·u_max, N = 16)",
        &[
            "tightness",
            "offered",
            "util_admitted",
            "util_miss",
            "dbf_admitted",
            "dbf_miss",
            "dbf_delivered",
        ],
    );
    let mut notes = vec![];
    for (tight, offered, ua, umiss, da, dmiss, ddel) in &rows {
        table.row(&[
            fmt_f64(*tight, 2),
            offered.to_string(),
            ua.to_string(),
            fmt_pct(*umiss),
            da.to_string(),
            fmt_pct(*dmiss),
            ddel.to_string(),
        ]);
        // The extension's soundness claim: everything dbf admits runs
        // clean at every tightness.
        assert!(
            *dmiss < 1e-9,
            "demand-bound-admitted set missed at tightness {tight}"
        );
        assert!(da <= ua, "dbf can never admit more than the util test");
    }
    // The unsoundness claim: at some tight setting the util test admits
    // a set that misses.
    if let Some((t, ..)) = rows.iter().find(|r| r.3 > 0.001) {
        notes.push(format!(
            "utilisation test admitted a missing set at tightness {t:.2} — unsound for D < P"
        ));
    }
    notes.push(
        "demand-bound admission: zero misses at every tightness; acceptance \
         falls as deadlines tighten — the price of a sound guarantee"
            .into(),
    );

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dbf_soundness() {
        let r = run(&ExpOptions::quick(15));
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].n_rows(), 2);
    }
}
