//! E19 — the network-calculus certifier: bounds vs reality on cyclic
//! fabrics.
//!
//! The seed fabric rejected every cyclic topology at build time because
//! its per-segment admission has no way to bound traffic that can loop
//! between rings. The `ccr-calculus` engine closes that gap with the
//! min-plus fixed-point analysis of Amari & Mifdaoui (arXiv:1605.07353):
//! rings become rate-latency servers, connections token buckets, and
//! every admission re-solves the cyclic fixed point, converging to a
//! certified end-to-end delay bound or rejecting outright. This
//! experiment validates the certificates three ways:
//!
//! 1. **Headline** — the cyclic 3×8-node triangle the seed refuses to
//!    build is admitted under [`CycleBound::Calculus`] with a finite
//!    certified bound per connection, and a long simulation never
//!    observes an end-to-end latency above any certificate.
//! 2. **Differential sweep** — ≥20 seeded random fabrics (acyclic chains
//!    and cyclic triangles, random ring sizes, random connection sets)
//!    run with the certifier armed; across every admitted connection the
//!    observed worst-case end-to-end latency must stay at or below the
//!    certified bound — **zero violations** — and the tightness ratio
//!    `observed / bound` is recorded per fabric.
//! 3. **Solver behaviour** — the raw fixed-point solver on a symmetric
//!    cyclic triangle under increasing utilisation: it either converges
//!    in a few iterations to finite bounds or rejects with an explicit
//!    diagnostic (`Utilisation` past capacity); it never silently loops
//!    or returns an uncertified bound.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e19_headline.csv`, `results/e19_differential.csv`,
//! `results/e19_solver.csv`.

use super::{ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_calculus::{solve, ArrivalCurve, FabricModel, FlowSpec, ServiceCurve, SolveError};
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::config::NetworkConfig;
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::rng::DetRng;
use ccr_sim::{SeedSequence, TimeDelta};

/// Triangle of three rings: 0—1 (bridge 0), 1—2 (bridge 1), 2—0
/// (bridge 2) — genuinely cyclic.
fn triangle(ring_size: u16, bound: CycleBound) -> FabricTopology {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(ring_size);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
    b.allow_cycles_with(bound);
    b.build().expect("triangle builds under an explicit bound")
}

/// Run E19.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e19", 0);
    let mut notes = vec![];

    // --- 1. headline: the cyclic triangle the seed cannot build --------
    {
        let mut b = FabricTopology::builder();
        for _ in 0..3 {
            b.ring(8);
        }
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
        b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
        assert!(
            b.build().is_err(),
            "the seed behaviour: cyclic topologies are rejected at build"
        );
        notes.push(
            "seed behaviour confirmed: the cyclic 3x8 triangle is rejected at topology \
             build without an explicit cycle bound"
                .to_string(),
        );
    }

    let headline = headline_table(opts, &seq, &mut notes);

    // --- 2. differential sweep: bound vs observed on random fabrics ----
    let differential = differential_table(opts, &seq, &mut notes);

    // --- 3. raw solver behaviour under increasing utilisation ----------
    let solver = solver_table(&mut notes);

    for (path, table) in [
        ("results/e19_headline.csv", &headline),
        ("results/e19_differential.csv", &differential),
        ("results/e19_solver.csv", &solver),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![headline, differential, solver],
        notes,
    }
}

/// E19a: admit three crossing connections on the calculus-certified
/// triangle and soak them; every observed worst case must respect its
/// certificate.
fn headline_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let topo = triangle(8, CycleBound::Calculus);
    let cfg = FabricConfig::uniform(topo, 2_048, seq.child_seed("headline", 0))
        .expect("fabric config")
        .threads(opts.threads);
    let mut fabric = Fabric::new(cfg).expect("fabric builds with the certifier armed");
    assert!(fabric.calculus_enabled());

    let conns = [
        (GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3), 5u64),
        (GlobalNodeId::new(1, 4), GlobalNodeId::new(2, 3), 4),
        (GlobalNodeId::new(2, 4), GlobalNodeId::new(0, 3), 5),
        (GlobalNodeId::new(0, 5), GlobalNodeId::new(2, 6), 8),
    ];
    let mut fids = vec![];
    for &(src, dst, period_ms) in &conns {
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(src, dst).period(TimeDelta::from_ms(period_ms)),
            )
            .expect("the certifier admits the headline set");
        fids.push((fid, src, dst, period_ms));
    }
    fabric.run_slots(opts.slots(40_000));

    let mut table = Table::new(
        "E19a — headline: certified bounds on the cyclic 3x8 triangle",
        &[
            "conn",
            "src",
            "dst",
            "period_ms",
            "bound_us",
            "observed_us",
            "tightness",
        ],
    );
    for (i, &(fid, src, dst, period_ms)) in fids.iter().enumerate() {
        let bound = fabric.e2e_bound(fid).expect("certified bound");
        let observed = fabric
            .observed_e2e_max(fid)
            .expect("headline traffic flowed");
        assert!(
            observed <= bound,
            "conn {i}: observed {observed} exceeds certified bound {bound}"
        );
        table.row(&[
            i.to_string(),
            format!("{src}"),
            format!("{dst}"),
            period_ms.to_string(),
            fmt_f64(bound.as_ps() as f64 / 1e6, 1),
            fmt_f64(observed.as_ps() as f64 / 1e6, 1),
            fmt_f64(observed.as_ps() as f64 / bound.as_ps() as f64, 3),
        ]);
    }
    notes.push(
        "the previously unbuildable cyclic triangle now admits crossing connections \
         with finite certified end-to-end bounds, and the soak never observed a \
         latency above any certificate"
            .to_string(),
    );
    table
}

/// One randomly generated fabric of the differential sweep.
struct DiffOutcome {
    topo_name: &'static str,
    admitted: u64,
    refused: u64,
    violations: u64,
    /// Worst (largest) `observed / bound` ratio across admitted flows
    /// that carried traffic; `None` when nothing was delivered.
    worst_ratio: Option<f64>,
}

/// E19b: ≥20 seeded random fabrics, certifier armed on all of them
/// (acyclic included), observed worst case vs certified bound per flow.
fn differential_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let n_fabrics: u64 = if opts.quick { 20 } else { 40 };
    let horizon = opts.slots(20_000);
    let cases: Vec<u64> = (0..n_fabrics).collect();

    let rows = parallel_map(cases, opts.threads, |&i| {
        let seed = seq.child_seed("diff", i);
        let mut rng = DetRng::new(seed);
        let ring_size = 6 + rng.gen_range(0..=4u32) as u16;
        let cyclic = i % 2 == 0;
        let topo = if cyclic {
            triangle(ring_size, CycleBound::Calculus)
        } else {
            FabricTopology::chain(2 + (rng.gen_range(0..=1u32) as u16), ring_size)
        };
        let n_rings = topo.n_rings();
        let cfg = FabricConfig::uniform(topo, 2_048, seed)
            .expect("fabric config")
            .calculus(true);
        let mut fabric = Fabric::new(cfg).expect("fabric builds");
        assert!(fabric.calculus_enabled());

        let n_conns = 4 + rng.gen_range(0..=4u32);
        let mut admitted = vec![];
        let mut refused = 0u64;
        for _ in 0..n_conns {
            let src_ring = rng.gen_range(0..n_rings as u32) as u16;
            let mut dst_ring = rng.gen_range(0..n_rings as u32) as u16;
            if dst_ring == src_ring {
                dst_ring = (dst_ring + 1) % n_rings;
            }
            // Stay clear of the first two node indices — bridge ports
            // live there on every topology this sweep generates.
            let src = GlobalNodeId::new(
                src_ring,
                2 + rng.gen_range(0..(ring_size - 2) as u32) as u16,
            );
            let dst = GlobalNodeId::new(
                dst_ring,
                2 + rng.gen_range(0..(ring_size - 2) as u32) as u16,
            );
            let period = TimeDelta::from_us(2_000 + 500 * rng.gen_range(0..=16u64));
            let spec = FabricConnectionSpec::unicast(src, dst)
                .period(period)
                .size_slots(1 + rng.gen_range(0..=1u32));
            match fabric.open_connection(spec) {
                Ok(fid) => admitted.push(fid),
                Err(_) => refused += 1,
            }
        }
        fabric.run_slots(horizon);

        let mut violations = 0u64;
        let mut worst_ratio: Option<f64> = None;
        for &fid in &admitted {
            let bound = fabric.e2e_bound(fid).expect("every admission is certified");
            if let Some(observed) = fabric.observed_e2e_max(fid) {
                if observed > bound {
                    violations += 1;
                }
                let ratio = observed.as_ps() as f64 / bound.as_ps() as f64;
                worst_ratio = Some(worst_ratio.map_or(ratio, |w: f64| w.max(ratio)));
            }
        }
        DiffOutcome {
            topo_name: if cyclic { "triangle" } else { "chain" },
            admitted: admitted.len() as u64,
            refused,
            violations,
            worst_ratio,
        }
    });

    let mut table = Table::new(
        "E19b — differential: certified bound vs observed max, random fabrics",
        &[
            "fabric",
            "topology",
            "admitted",
            "refused",
            "violations",
            "worst_obs/bound",
        ],
    );
    let mut total_admitted = 0u64;
    let mut total_violations = 0u64;
    let mut global_worst: f64 = 0.0;
    for (i, o) in rows.iter().enumerate() {
        total_admitted += o.admitted;
        total_violations += o.violations;
        if let Some(r) = o.worst_ratio {
            global_worst = global_worst.max(r);
        }
        table.row(&[
            i.to_string(),
            o.topo_name.to_string(),
            o.admitted.to_string(),
            o.refused.to_string(),
            o.violations.to_string(),
            o.worst_ratio
                .map_or_else(|| "-".to_string(), |r| fmt_f64(r, 3)),
        ]);
    }
    assert!(total_admitted > 0, "the sweep must admit real traffic");
    assert_eq!(
        total_violations, 0,
        "a certified bound was violated by the simulation"
    );
    notes.push(format!(
        "differential sweep: {n_fabrics} seeded random fabrics, {total_admitted} admitted \
         connections, zero bound violations; worst observed/bound tightness ratio {} \
         (1.0 would mean a bound met exactly)",
        fmt_f64(global_worst, 3)
    ));
    table
}

/// E19c: the raw fixed-point solver on a symmetric cyclic triangle —
/// three flows chase each other around the cycle while per-ring
/// utilisation sweeps towards and past capacity.
fn solver_table(notes: &mut Vec<String>) -> Table {
    // Realistic per-ring timing from the paper's own analytic model.
    let cfg = NetworkConfig::builder(8).build_auto_slot().expect("config");
    let model = AnalyticModel::new(&cfg);
    let per_slot = (model.slot() + model.max_handover()).as_ps() as f64;
    let rate = 1.0 / per_slot; // slots per picosecond
    let latency = model.worst_latency().as_ps() as f64;
    let service = ServiceCurve::rate_latency(rate, latency).expect("ring service");

    let mut table = Table::new(
        "E19c — fixed-point solver: converge-or-reject vs per-ring utilisation",
        &["util", "verdict", "iterations", "max_bound_us"],
    );
    let mut converged = 0u32;
    let mut rejected = 0u32;
    for step in [5u32, 20, 40, 60, 80, 90, 95, 100, 110] {
        let util = step as f64 / 100.0;
        // Each ring carries two of the three cyclic flows.
        let per_flow_rate = util * rate / 2.0;
        let flows: Vec<FlowSpec> = [[0usize, 1], [1, 2], [2, 0]]
            .iter()
            .map(|path| {
                FlowSpec::blind(
                    path.to_vec(),
                    ArrivalCurve::token_bucket(2.0, per_flow_rate).expect("token bucket"),
                    vec![0.0, per_slot],
                )
            })
            .collect();
        let fabric = FabricModel {
            services: vec![service.clone(), service.clone(), service.clone()],
            flows,
        };
        let (verdict, iterations, max_bound) = match solve(&fabric) {
            Ok(sol) => {
                converged += 1;
                let worst = sol.flows.iter().map(|f| f.e2e_delay).fold(0.0f64, f64::max);
                ("converged".to_string(), sol.iterations.to_string(), worst)
            }
            Err(SolveError::Utilisation { ring, .. }) => {
                rejected += 1;
                (
                    format!("reject: ring {ring} over capacity"),
                    "-".to_string(),
                    f64::NAN,
                )
            }
            Err(SolveError::Diverged { iterations, .. }) => {
                rejected += 1;
                (
                    "reject: diverged".to_string(),
                    iterations.to_string(),
                    f64::NAN,
                )
            }
            Err(e) => panic!("malformed solver input in E19c: {e}"),
        };
        table.row(&[
            fmt_f64(util, 2),
            verdict,
            iterations,
            if max_bound.is_nan() {
                "-".to_string()
            } else {
                fmt_f64(max_bound / 1e6, 1)
            },
        ]);
    }
    assert!(converged > 0, "feasible utilisations must converge");
    assert!(rejected > 0, "over-capacity utilisations must be rejected");
    notes.push(format!(
        "the cyclic fixed point converged for {converged} feasible load points and \
         explicitly rejected {rejected} infeasible ones — the solver never returns \
         an uncertified bound"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calculus() {
        let r = run(&ExpOptions::quick(19));
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].n_rows(), 4); // headline connections
        assert_eq!(r.tables[1].n_rows(), 20); // quick differential fabrics
        assert_eq!(r.tables[2].n_rows(), 9); // solver utilisation sweep
        assert!(r.notes.iter().any(|n| n.contains("zero bound violations")));
        assert!(r.notes.iter().any(|n| n.contains("rejected")));
    }
}
