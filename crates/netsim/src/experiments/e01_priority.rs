//! E1 — Table 1 reproduction: priority-level allocation plus the laxity →
//! priority mapping's shape (logarithmic resolution near the deadline).

use super::{ExpOptions, ExperimentResult};
use ccr_edf::priority::{MapperKind, Priority, BE_BASE, MAX_LEVEL, NRT_LEVEL, RT_BASE};
use ccr_sim::report::Table;

/// Run E1.
pub fn run(_opts: &ExpOptions) -> ExperimentResult {
    // --- Table 1 itself -------------------------------------------------
    let mut t1 = Table::new(
        "E1a — Table 1: allocation of priority levels to user services",
        &["levels", "service"],
    );
    t1.row(&["0".into(), "Nothing to send".into()]);
    t1.row(&[format!("{NRT_LEVEL}"), "Non-real time".into()]);
    t1.row(&[format!("{}-{}", BE_BASE, RT_BASE - 1), "Best effort".into()]);
    t1.row(&[
        format!("{}-{}", RT_BASE, MAX_LEVEL),
        "Logical real-time connection".into(),
    ]);

    // Verify the implementation agrees with the table.
    let m = MapperKind::Logarithmic;
    let mut notes = vec![];
    assert!(Priority::IDLE.level() == 0 && Priority::IDLE.class().is_none());
    assert_eq!(Priority::NON_REAL_TIME.level(), NRT_LEVEL);
    for lax in [0u64, 1, 10, 1_000, u64::MAX / 2] {
        let rt = m.real_time(lax);
        let be = m.best_effort(lax);
        assert!((RT_BASE..=MAX_LEVEL).contains(&rt.level()));
        assert!((BE_BASE..RT_BASE).contains(&be.level()));
        assert!(rt > be && be > Priority::NON_REAL_TIME);
    }
    notes.push("class bands verified disjoint and ordered for all laxities".into());

    // --- mapping shape ---------------------------------------------------
    let mut t2 = Table::new(
        "E1b — logarithmic laxity mapping (laxity in slots → RT level)",
        &["laxity_slots", "rt_level", "be_level"],
    );
    for lax in [
        0u64,
        1,
        2,
        3,
        4,
        7,
        8,
        15,
        16,
        63,
        64,
        1_023,
        16_383,
        1 << 20,
    ] {
        t2.row(&[
            lax.to_string(),
            m.real_time(lax).level().to_string(),
            m.best_effort(lax).level().to_string(),
        ]);
    }

    // Resolution property: level changes per laxity step are densest at 0.
    let boundaries: Vec<u64> = (0..14u32).map(|k| (1u64 << (k + 1)) - 1).collect();
    let mut t3 = Table::new(
        "E1c — level-change boundaries (finer resolution near deadline)",
        &["band_offset", "first_laxity"],
    );
    t3.row(&["0".into(), "0".into()]);
    for (i, b) in boundaries.iter().enumerate() {
        t3.row(&[(i + 1).to_string(), b.to_string()]);
    }
    notes.push(
        "boundaries double each level: resolution is highest close to the deadline, \
         as Section 3 requires"
            .into(),
    );

    ExperimentResult {
        tables: vec![t1, t2, t3],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_produces_three_tables() {
        let r = run(&ExpOptions::quick(1));
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].n_rows(), 4);
        assert!(r.tables[1].n_rows() > 10);
        let rendered = r.tables[0].render();
        assert!(rendered.contains("Best effort"));
        assert!(rendered.contains("17-31"));
    }
}
