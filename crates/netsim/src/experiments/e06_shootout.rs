//! E6 — the headline comparison: CCR-EDF vs CC-FPR deadline-miss ratio as
//! offered load rises.
//!
//! Both protocols receive *identical* periodic real-time traffic (injected
//! past admission control so loads above `U_max` are reachable) on the same
//! slot engine. The paper's claim: CC-FPR's round-robin clocking and
//! ring-order booking cause priority inversion and deadline misses well
//! below the load CCR-EDF sustains, while CCR-EDF's arbitration-driven
//! hand-over delivers global EDF and stays miss-free up to `U_max`.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::runner::{run_with_mac, RunSummary, Workload};
use crate::sweep::parallel_map;
use cc_fpr::CcFprMac;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::arbitration::CcrEdfMac;
use ccr_sim::report::{fmt_f64, fmt_pct, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
struct Point {
    load_frac: f64,
    rep: u64,
}

/// Run E6.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(opts.seed);
    let loads: Vec<f64> = if opts.quick {
        vec![0.4, 0.9, 1.3]
    } else {
        vec![
            0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4,
        ]
    };
    let reps = opts.reps(3);
    let slots = opts.slots(150_000);

    let points: Vec<Point> = loads
        .iter()
        .flat_map(|&l| (0..reps).map(move |rep| Point { load_frac: l, rep }))
        .collect();

    let cfg_ref = &cfg;
    // Four runs per point: {CCR-EDF, CC-FPR} × {reuse on, reuse off}. The
    // no-reuse runs reproduce the conditions of the Section 5 analysis
    // (one message per slot), where U_max is the true capacity and the
    // crossover is sharp; the reuse runs show run-time behaviour, where
    // spatial reuse gives both protocols extra headroom.
    let results: Vec<(Point, [RunSummary; 4])> = parallel_map(points, opts.threads, |&p| {
        let target = p.load_frac * model.u_max();
        let mut rng = seq
            .subsequence("e6", (p.load_frac * 1000.0) as u64)
            .stream("traffic", p.rep);
        // Tight periods (deadline = period, Section 5) are what separate
        // the protocols: CC-FPR's rotating clock break blocks a message
        // for up to N slots, which only matters when deadlines leave
        // little slack.
        let set = PeriodicSetBuilder::new(n, n as usize * 3, target, cfg_ref.slot_time())
            .periods(10, 300)
            .generate(&mut rng);
        let workload = Workload::raw(set);
        let mut no_reuse = cfg_ref.clone();
        no_reuse.spatial_reuse = false;
        let runs = [
            run_with_mac(cfg_ref.clone(), CcrEdfMac, &workload, slots),
            run_with_mac(cfg_ref.clone(), CcFprMac, &workload, slots),
            run_with_mac(no_reuse.clone(), CcrEdfMac, &workload, slots),
            run_with_mac(no_reuse, CcFprMac, &workload, slots),
        ];
        (p, runs)
    });

    // Aggregate per load across reps.
    let mut t_reuse = Table::new(
        "E6a — miss ratio vs offered load, spatial reuse ON (run-time behaviour, N = 16)",
        &[
            "load/u_max",
            "edf_miss",
            "fpr_miss",
            "edf_p99_us",
            "fpr_p99_us",
            "edf_backlog",
            "fpr_backlog",
        ],
    );
    let mut t_plain = Table::new(
        "E6b — miss ratio vs offered load, spatial reuse OFF (Section 5 analysis conditions)",
        &[
            "load/u_max",
            "edf_miss",
            "fpr_miss",
            "edf_p99_us",
            "fpr_p99_us",
            "edf_backlog",
            "fpr_backlog",
        ],
    );
    let mut notes = vec![format!("u_max = {:.4}", model.u_max())];
    for &load in &loads {
        let runs: Vec<&(Point, [RunSummary; 4])> = results
            .iter()
            .filter(|(p, _)| (p.load_frac - load).abs() < 1e-9)
            .collect();
        let k = runs.len() as f64;
        let avg =
            |f: &dyn Fn(&[RunSummary; 4]) -> f64| runs.iter().map(|(_, r)| f(r)).sum::<f64>() / k;
        t_reuse.row(&[
            fmt_f64(load, 2),
            fmt_pct(avg(&|r| r[0].rt_miss_ratio)),
            fmt_pct(avg(&|r| r[1].rt_miss_ratio)),
            fmt_f64(avg(&|r| r[0].rt_latency_p99_us), 1),
            fmt_f64(avg(&|r| r[1].rt_latency_p99_us), 1),
            fmt_f64(avg(&|r| r[0].backlog as f64), 0),
            fmt_f64(avg(&|r| r[1].backlog as f64), 0),
        ]);
        t_plain.row(&[
            fmt_f64(load, 2),
            fmt_pct(avg(&|r| r[2].rt_miss_ratio)),
            fmt_pct(avg(&|r| r[3].rt_miss_ratio)),
            fmt_f64(avg(&|r| r[2].rt_latency_p99_us), 1),
            fmt_f64(avg(&|r| r[3].rt_latency_p99_us), 1),
            fmt_f64(avg(&|r| r[2].backlog as f64), 0),
            fmt_f64(avg(&|r| r[3].backlog as f64), 0),
        ]);
        // Structural claims of the paper: the guarantee region is clean for
        // CCR-EDF in both modes.
        if load <= 0.9 {
            let edf_reuse = avg(&|r| r[0].rt_miss_ratio);
            let edf_plain = avg(&|r| r[2].rt_miss_ratio);
            assert!(
                edf_reuse < 0.001 && edf_plain < 0.005,
                "CCR-EDF missed below u_max (load {load}: reuse {edf_reuse}, plain {edf_plain})"
            );
        }
    }
    // The crossover claim under analysis conditions: at some admissible
    // load CC-FPR already misses while CCR-EDF does not.
    let crossover = loads.iter().find(|&&l| {
        l <= 1.0
            && results
                .iter()
                .filter(|(p, _)| (p.load_frac - l).abs() < 1e-9)
                .any(|(_, r)| r[3].rt_miss_ratio > 0.01 && r[2].rt_miss_ratio < 0.001)
    });
    if let Some(l) = crossover {
        notes.push(format!(
            "no-reuse crossover: CC-FPR misses from load {l:.2}·u_max while CCR-EDF is clean"
        ));
    }

    ExperimentResult {
        tables: vec![t_reuse, t_plain],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shootout_shape() {
        let r = run(&ExpOptions::quick(6));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].n_rows(), 3);
        assert_eq!(r.tables[1].n_rows(), 3);
    }
}
