//! E8 — runtime admission control over best-effort messages (Section 6).
//!
//! Connection requests arrive at random nodes throughout the run and travel
//! to the designated admission node as best-effort messages; responses come
//! back the same way; some connections are later torn down, freeing
//! capacity. The table reports acceptance behaviour, decision latency and —
//! the guarantee — zero misses for everything admitted.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::admission_app::AdmissionApp;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, TimeDelta};
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;

/// Run E8.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&cfg);
    let slots = opts.slots(120_000);
    let mut rng = SeedSequence::new(opts.seed).stream("e8", 0);

    let mut net = RingNetwork::new_ccr_edf(cfg);
    let mut app = AdmissionApp::for_network(&net);

    // Request schedule: a new connection request every `gap` slots, each
    // for ~u_max/12 utilisation; every third accepted connection is closed
    // again after a while, so the system churns around the U_max boundary.
    let slot = net.config().slot_time();
    let u_step = model.u_max() / 12.0;
    let request_gap = slots / 40;
    let mut to_close: Vec<(u64, ccr_edf::connection::ConnectionId)> = vec![];
    let mut closed = 0u64;

    let mut series: Vec<(u64, f64)> = vec![]; // (slot, admitted u)
    for s in 0..slots {
        if s % request_gap == 0 {
            let src = NodeId(rng.gen_range(0..n));
            let hops = rng.gen_range(1..n);
            let dst = NodeId((src.0 + hops) % n);
            let jitter = 0.5 + rng.gen_f64(); // u in [0.5, 1.5]·u_step
            let period_ps = (slot.as_ps() as f64 / (u_step * jitter)).round() as u64;
            let spec = ConnectionSpec::unicast(src, dst)
                .period(TimeDelta::from_ps(period_ps))
                .size_slots(1);
            app.request(&mut net, src, spec);
        }
        let deliveries = net.step_slot().deliveries.clone();
        app.process_deliveries(&mut net, &deliveries);

        // Churn: close every third activation after ~request_gap*5 slots.
        while app.activated.len() as u64 > closed {
            let id = app.activated[closed as usize];
            if closed.is_multiple_of(3) {
                to_close.push((s + request_gap * 5, id));
            }
            closed += 1;
        }
        while let Some(&(when, id)) = to_close.first() {
            if when > s {
                break;
            }
            net.close_connection(id);
            to_close.remove(0);
        }
        if s % (slots / 20).max(1) == 0 {
            series.push((s, net.admission().admitted_utilisation()));
        }
    }

    let m = net.metrics();
    let mut ta = Table::new(
        "E8a — runtime admission over best-effort messages (N = 16)",
        &["metric", "value"],
    );
    ta.row(&["u_max".into(), fmt_f64(model.u_max(), 4)]);
    ta.row(&["requests".into(), app.stats.requested.get().to_string()]);
    ta.row(&["accepted".into(), app.stats.accepted.get().to_string()]);
    ta.row(&["rejected".into(), app.stats.rejected.get().to_string()]);
    ta.row(&[
        "final admitted u".into(),
        fmt_f64(net.admission().admitted_utilisation(), 4),
    ]);
    ta.row(&[
        "decision latency mean (slots)".into(),
        fmt_f64(
            app.stats.decision_latency.mean().unwrap_or(f64::NAN) / slot.as_ps() as f64,
            2,
        ),
    ]);
    ta.row(&[
        "decision latency max (slots)".into(),
        fmt_f64(
            app.stats.decision_latency.max().unwrap_or(0) as f64 / slot.as_ps() as f64,
            2,
        ),
    ]);
    ta.row(&["rt delivered".into(), m.delivered_rt.get().to_string()]);
    ta.row(&[
        "rt deadline misses".into(),
        m.rt_deadline_misses.get().to_string(),
    ]);
    ta.row(&[
        "rt bound violations".into(),
        m.rt_bound_violations.get().to_string(),
    ]);

    assert!(app.stats.accepted.get() > 0, "nothing admitted");
    assert!(
        app.stats.rejected.get() > 0,
        "overload never reached — weak experiment"
    );
    assert_eq!(m.rt_bound_violations.get(), 0);
    assert!(
        net.admission().admitted_utilisation() <= model.u_max() + 1e-9,
        "admitted set exceeded U_max"
    );

    let mut tb = Table::new(
        "E8b — admitted utilisation over time (churn around the boundary)",
        &["slot", "admitted_u"],
    );
    for (s, u) in &series {
        tb.row(&[s.to_string(), fmt_f64(*u, 4)]);
    }

    ExperimentResult {
        tables: vec![ta, tb],
        notes: vec![
            "admitted utilisation never exceeds U_max; admitted traffic never \
             violates the Eq. 3 bound"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_admission_churn() {
        let r = run(&ExpOptions::quick(8));
        assert_eq!(r.tables.len(), 2);
    }
}
