//! E2 — Equation 1 / Figures 6–7: clock hand-over time.
//!
//! Part A forces a hand-over of every possible hop distance `D` and checks
//! the measured gap against `P·L·D`. Part B runs random traffic and reports
//! the gap distribution: the mean is well below the worst case (the paper's
//! point that `U_max` is conservative), and the max never exceeds
//! `P·L·(N−1)`.

use super::{base_config, ring_sizes, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::message::{Destination, Message};
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, SimTime};
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E2.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut tables = vec![];
    let mut notes = vec![];

    // ---- Part A: forced hand-over of distance D -------------------------
    let mut ta = Table::new(
        "E2a — hand-over time vs hop distance (Equation 1, L = 10 m)",
        &["n_nodes", "hops_D", "analytic_ns", "measured_ns", "ok"],
    );
    for &n in &ring_sizes(opts) {
        let cfg = base_config(n, 4096).build_auto_slot().unwrap();
        for d in 1..n {
            // Master starts at node 0; a single message from node d forces
            // the first hand-over to cover exactly d hops.
            let mut net = RingNetwork::new_ccr_edf(cfg.clone());
            net.submit_message(
                SimTime::ZERO,
                Message::non_real_time(
                    NodeId(d),
                    Destination::Unicast(NodeId((d + 1) % n)),
                    1,
                    SimTime::ZERO,
                ),
            );
            let analytic = cfg.timing().handover_time(d);
            let out = net.step_slot();
            assert_eq!(out.handover_hops, d);
            let measured = out.gap;
            if d == 1 || d == n - 1 || d == n / 2 {
                ta.row(&[
                    n.to_string(),
                    d.to_string(),
                    fmt_f64(analytic.as_ns_f64(), 1),
                    fmt_f64(measured.as_ns_f64(), 1),
                    (measured == analytic).to_string(),
                ]);
            }
            assert_eq!(measured, analytic, "Eq. 1 violated at N={n}, D={d}");
        }
    }
    notes.push("every forced distance 1..N-1 matched P·L·D exactly".into());

    // ---- Part B: gap distribution under random load ---------------------
    let mut tb = Table::new(
        "E2b — hand-over gap distribution under random periodic load (u = 0.5)",
        &[
            "n_nodes",
            "link_m",
            "gap_mean_ns",
            "gap_p99_ns",
            "gap_max_ns",
            "analytic_max_ns",
            "master_moves",
        ],
    );
    let seq = SeedSequence::new(opts.seed);
    let cases: Vec<(u16, f64)> = ring_sizes(opts)
        .into_iter()
        .flat_map(|n| [(n, 10.0), (n, 100.0)])
        .collect();
    let slots = opts.slots(100_000);
    let rows = parallel_map(cases, opts.threads, |&(n, link_m)| {
        let cfg = base_config(n, 4096)
            .link_length_m(link_m)
            .build_auto_slot()
            .unwrap();
        let mut rng = seq
            .subsequence("e2b", n as u64)
            .stream("traffic", link_m as u64);
        let set =
            PeriodicSetBuilder::new(n, (n as usize) * 2, 0.5, cfg.slot_time()).generate(&mut rng);
        let analytic_max = cfg.timing().max_handover();
        let mut net = RingNetwork::new_ccr_edf(cfg);
        for spec in set {
            let _ = net.open_connection(spec);
        }
        net.run_slots(slots);
        let m = net.metrics();
        (
            n,
            link_m,
            m.handover_gap.mean().unwrap_or(f64::NAN) / 1e3,
            m.handover_gap
                .quantile(0.99)
                .map_or(f64::NAN, |v| v as f64 / 1e3),
            m.handover_gap.max().map_or(f64::NAN, |v| v as f64 / 1e3),
            analytic_max.as_ns_f64(),
            m.master_changes.get(),
        )
    });
    for (n, link_m, mean, p99, max, amax, moves) in rows {
        assert!(
            max <= amax + 1e-9,
            "measured gap exceeded Eq. 1 worst case: {max} > {amax}"
        );
        tb.row(&[
            n.to_string(),
            fmt_f64(link_m, 0),
            fmt_f64(mean, 1),
            fmt_f64(p99, 1),
            fmt_f64(max, 1),
            fmt_f64(amax, 1),
            moves.to_string(),
        ]);
    }
    notes.push("measured gaps never exceed the Eq. 1 worst case".into());
    tables.push(ta);
    tables.push(tb);

    ExperimentResult { tables, notes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_equation1() {
        let r = run(&ExpOptions::quick(42));
        assert_eq!(r.tables.len(), 2);
        // every Part A row reports ok = true
        let csv = r.tables[0].to_csv();
        assert!(!csv.contains("false"));
        assert!(r.tables[1].n_rows() > 0);
    }
}
