//! E10 — the slot-length trade-off claimed in Section 1: "With less header
//! overhead in the data-packets the slot-length can be shortened, to reduce
//! latency, without sacrificing too much in bandwidth utilization."
//!
//! Sweeps the slot payload from the Equation 2 minimum up to 16 KiB at a
//! fixed *byte* workload and reports latency percentiles, `U_max`, and the
//! fraction of each slot the workload's packets actually fill.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::network::RingNetwork;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PoissonGen;

/// Run E10.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let probe = base_config(n, 1).build_auto_slot().unwrap();
    let min_bytes = probe.min_feasible_slot_bytes();
    let mut sizes: Vec<u32> = vec![min_bytes];
    let mut b = 1024u32;
    while b <= 16_384 {
        if b > min_bytes {
            sizes.push(b);
        }
        b *= 2;
    }
    let seq = SeedSequence::new(opts.seed);
    let sim_ms = if opts.quick { 20u64 } else { 200 };

    let rows = parallel_map(sizes.clone(), opts.threads, |&slot_bytes| {
        let cfg = base_config(n, slot_bytes).build_auto_slot().unwrap();
        let model = AnalyticModel::new(&cfg);
        let slot = cfg.slot_time();
        // Fixed byte-rate workload: ~40 MB/s of best-effort messages,
        // independent of slot size (message size in slots adapts).
        let msg_bytes = 8_192u32;
        let msgs_per_s = 5_000.0;
        let size_slots = msg_bytes.div_ceil(slot_bytes).max(1);
        let mut rng = seq.subsequence("e10", slot_bytes as u64).stream("t", 0);
        let mut gen = PoissonGen::best_effort(n, msgs_per_s);
        gen.size_slots = (size_slots, size_slots);
        gen.deadline = (
            ccr_sim::TimeDelta::from_ms(5),
            ccr_sim::TimeDelta::from_ms(10),
        );
        let arrivals = gen.schedule(
            &mut rng,
            ccr_sim::SimTime::ZERO,
            ccr_sim::TimeDelta::from_ms(sim_ms),
        );
        let mut net = RingNetwork::new_ccr_edf(cfg);
        let count = arrivals.len();
        for (at, msg) in arrivals {
            net.submit_message(at, msg);
        }
        net.run_until(ccr_sim::SimTime::from_ms(sim_ms + 5));
        let m = net.metrics();
        (
            slot_bytes,
            size_slots,
            model.u_max(),
            m.latency_be.mean().unwrap_or(f64::NAN) / 1e6,
            m.latency_be
                .quantile(0.99)
                .map_or(f64::NAN, |v| v as f64 / 1e6),
            slot.as_us_f64(),
            m.delivered.get(),
            count as u64,
        )
    });

    let mut table = Table::new(
        "E10 — slot-length trade-off (N = 16, fixed 40 MB/s byte load, 8 KiB messages)",
        &[
            "slot_bytes",
            "msg_slots",
            "t_slot_us",
            "u_max",
            "lat_mean_us",
            "lat_p99_us",
            "delivered",
            "offered",
        ],
    );
    for (slot_bytes, size_slots, umax, mean, p99, t_us, delivered, offered) in &rows {
        table.row(&[
            slot_bytes.to_string(),
            size_slots.to_string(),
            fmt_f64(*t_us, 2),
            fmt_f64(*umax, 4),
            fmt_f64(*mean, 1),
            fmt_f64(*p99, 1),
            delivered.to_string(),
            offered.to_string(),
        ]);
    }

    // Structural claim: U_max rises monotonically with slot length (the
    // bandwidth side), while the largest slot has worse mean latency than
    // some shorter one (the latency side of the trade-off).
    let umaxes: Vec<f64> = rows.iter().map(|r| r.2).collect();
    assert!(
        umaxes.windows(2).all(|w| w[0] <= w[1] + 1e-12),
        "u_max should rise with slot length"
    );
    let notes = vec![
        "longer slots buy guaranteed utilisation (Eq. 6) but quantise \
         transmissions more coarsely — the paper's latency/utilisation trade-off"
            .into(),
    ];

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_slot_sweep() {
        let r = run(&ExpOptions::quick(10));
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].n_rows() >= 3);
    }
}
