//! E9 — the parallel-processing services: barrier synchronisation, global
//! reduction, short messages, and reliable transmission under injected
//! packet loss.
//!
//! The paper (Sections 1, 7; refs \[8], \[11]) offers these services as
//! intrinsic network features carried by the control channel; their cost is
//! therefore bounded by slots, not by data-channel load. The tables report
//! latency vs ring size and the retransmission behaviour of the reliable
//! service as loss rises.

use super::{base_config, ring_sizes, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::config::FaultConfig;
use ccr_edf::message::{Destination, Message};
use ccr_edf::network::RingNetwork;
use ccr_edf::services::ReduceOp;
use ccr_edf::wire::ServiceWireConfig;
use ccr_edf::{NodeId, SimTime};
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;

/// Run E9.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut notes = vec![];

    // ---- barrier / reduction / short-message latency vs N ----------------
    let mut ta = Table::new(
        "E9a — control-channel service latency vs ring size (slots of the local config)",
        &[
            "n_nodes",
            "barriers",
            "barrier_mean_slots",
            "reductions",
            "reduce_ok",
            "short_msgs",
            "short_mean_slots",
        ],
    );
    let reps = if opts.quick { 40 } else { 200 };
    for &n in &ring_sizes(opts) {
        // the bit-level wire check is O(packet bits) per slot; keep it on
        // for small rings only.
        let cfg = base_config(n, 1)
            .services(ServiceWireConfig::ALL)
            .wire_check(n <= 16)
            .build_auto_slot()
            .unwrap();
        let slot_ps = cfg.slot_time().as_ps() as f64;
        let mut net = RingNetwork::new_ccr_edf(cfg);
        net.set_reduce_op(ReduceOp::Sum);
        let mut reduce_ok = true;
        for r in 0..reps {
            // staggered barrier entry: one node per slot; the completing
            // slot may be the one right after the last entry
            let mut done = false;
            for i in 0..n {
                net.barrier_enter(NodeId(i));
                done |= net.step_slot().barrier_completed;
            }
            for _ in 0..4 {
                if done {
                    break;
                }
                done = net.step_slot().barrier_completed;
            }
            assert!(done, "barrier stalled at N={n}");

            // global reduction of known values
            for i in 0..n {
                net.reduce_submit(NodeId(i), i as u32 + 1);
            }
            let mut result = None;
            for _ in 0..4 {
                if let Some(v) = net.step_slot().reduce_result {
                    result = Some(v);
                    break;
                }
            }
            let expect: u32 = (1..=n as u32).sum();
            reduce_ok &= result == Some(expect);

            // one short message per round
            let src = NodeId((r % n as u64) as u16);
            let dst = NodeId(((r + 1) % n as u64) as u16);
            if src != dst {
                net.short_send(src, dst, (r & 0xFFFF) as u16);
                net.step_slot();
            }
        }
        let m = net.metrics();
        assert!(reduce_ok, "reduction produced a wrong sum at N={n}");
        ta.row(&[
            n.to_string(),
            m.barriers_completed.get().to_string(),
            fmt_f64(m.barrier_latency.mean().unwrap_or(f64::NAN) / slot_ps, 2),
            m.reductions_completed.get().to_string(),
            reduce_ok.to_string(),
            m.short_delivered.get().to_string(),
            fmt_f64(m.short_latency.mean().unwrap_or(f64::NAN) / slot_ps, 2),
        ]);
    }
    notes.push("barrier and reduction complete within ~1 slot of the last contribution".into());

    // ---- reliable transmission under loss --------------------------------
    let mut tb = Table::new(
        "E9b — reliable transmission under data-packet loss (N = 8, 200 messages x 4 slots)",
        &[
            "loss_prob",
            "delivered",
            "retransmissions",
            "packets_lost",
            "mean_latency_slots",
            "slots_used",
        ],
    );
    let seq = SeedSequence::new(opts.seed);
    let losses = [0.0, 0.01, 0.05, 0.10, 0.20];
    let rows = parallel_map(losses.to_vec(), opts.threads, |&loss| {
        let cfg = base_config(8, 1)
            .services(ServiceWireConfig {
                reliable: true,
                ..Default::default()
            })
            .faults(FaultConfig {
                data_loss_prob: loss,
                ..Default::default()
            })
            .seed(seq.child_seed("e9b", (loss * 1000.0) as u64))
            .build_auto_slot()
            .unwrap();
        let slot_ps = cfg.slot_time().as_ps() as f64;
        let n_msgs = 200u64;
        let mut net = RingNetwork::new_ccr_edf(cfg);
        for i in 0..n_msgs {
            let src = NodeId((i % 8) as u16);
            let dst = NodeId(((i + 3) % 8) as u16);
            net.submit_message(
                SimTime::ZERO,
                Message::non_real_time(src, Destination::Unicast(dst), 4, SimTime::ZERO)
                    .with_reliable(),
            );
        }
        let mut slots_used = 0u64;
        // stop-and-wait costs ~2 slots per packet; give generous headroom
        // that grows with the loss rate.
        let budget = (n_msgs * 4 * 8 * 4) + (loss * 200_000.0) as u64;
        while net.metrics().delivered.get() < n_msgs && slots_used < budget {
            net.step_slot();
            slots_used += 1;
        }
        let m = net.metrics();
        (
            loss,
            m.delivered.get(),
            m.retransmissions.get(),
            m.data_lost.get(),
            m.latency_nrt.mean().unwrap_or(f64::NAN) / slot_ps,
            slots_used,
        )
    });
    for (loss, delivered, retx, lost, lat, used) in rows {
        assert_eq!(
            delivered, 200,
            "reliable service failed to deliver everything at loss {loss}"
        );
        if loss == 0.0 {
            assert_eq!(retx, 0, "spurious retransmissions without loss");
        } else {
            assert!(retx > 0, "loss {loss} but no retransmissions");
        }
        tb.row(&[
            fmt_f64(loss, 2),
            delivered.to_string(),
            retx.to_string(),
            lost.to_string(),
            fmt_f64(lat, 1),
            used.to_string(),
        ]);
    }
    notes.push("all reliable messages delivered at every loss rate".into());

    ExperimentResult {
        tables: vec![ta, tb],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_services() {
        let r = run(&ExpOptions::quick(9));
        assert_eq!(r.tables.len(), 2);
        assert!(r.tables[1].n_rows() == 5);
    }
}
