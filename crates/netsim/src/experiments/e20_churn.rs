//! E20 — admission-churn soak: the incremental control plane at scale.
//!
//! PR 6 turned the calculus certifier from a stateless full re-solve into
//! a warm-started incremental solver (dirty-set restricted fixed point,
//! EDF-aware left-over service, batched admits). This experiment soaks
//! the *control plane* the way E19 soaks the data plane: a chain fabric
//! carrying thousands of resident certified connections is driven through
//! a long open/close churn and the per-operation wall-clock latency is
//! recorded — once on the warm-started certifier and once with
//! [`FabricConfig::calculus_force_full`] armed, the bit-exact reference
//! that re-solves everything per operation.
//!
//! Reported:
//!
//! 1. **Churn latency** — p50/p95/p99/max microseconds per open and per
//!    close in both modes, plus sustained ops/s and the resulting
//!    incremental-vs-full speedup (the PR's ≥10× target, asserted by the
//!    `fabric_admission_10k` bench, is re-measured here under soak).
//! 2. **Steady-state headroom** — with the full resident set certified,
//!    the distribution of relative deadline slack
//!    `1 − bound/deadline` across residents: how much certified margin
//!    the fabric still holds at scale.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e20_churn.csv`, `results/e20_headroom.csv`.

use super::{ExpOptions, ExperimentResult};
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::TimeDelta;
use std::time::Instant;

/// Resident population: same-ring flows at two long periods, so every
/// churn operation dirties one ring while the rest of the fabric's fixed
/// point stays warm.
fn resident_specs(rings: u16, per_ring: usize) -> Vec<FabricConnectionSpec> {
    let mut specs = Vec::with_capacity(rings as usize * per_ring);
    for r in 0..rings {
        for i in 0..per_ring {
            let (src, dst) = ((2 + (i % 3)) as u16, (5 + (i % 3)) as u16);
            let period = TimeDelta::from_ms(if i % 2 == 0 { 40 } else { 80 });
            specs.push(
                FabricConnectionSpec::unicast(GlobalNodeId::new(r, src), GlobalNodeId::new(r, dst))
                    .period(period),
            );
        }
    }
    specs
}

fn build(rings: u16, per_ring: usize, force_full: bool, seed: u64) -> Fabric {
    let cfg = FabricConfig::uniform(FabricTopology::chain(rings, 8), 2_048, seed)
        .expect("fabric config")
        .calculus(true)
        .calculus_force_full(force_full);
    let mut fabric = Fabric::new(cfg).expect("fabric builds");
    let specs = resident_specs(rings, per_ring);
    let fids = fabric
        .open_connections(&specs)
        .expect("resident population admits in one batch");
    assert_eq!(fids.len(), specs.len());
    fabric
}

/// Open/close churn over rotating rings; returns per-op wall-clock
/// latencies in microseconds, opens and closes separately.
fn churn(fabric: &mut Fabric, rings: u16, ops: u32) -> (Vec<f64>, Vec<f64>) {
    let mut open_us = Vec::with_capacity(ops as usize);
    let mut close_us = Vec::with_capacity(ops as usize);
    for op in 0..ops {
        let r = (op % rings as u32) as u16;
        let spec = FabricConnectionSpec::unicast(GlobalNodeId::new(r, 3), GlobalNodeId::new(r, 6))
            .period(TimeDelta::from_ms(60));
        let t0 = Instant::now();
        let fid = fabric.open_connection(spec).expect("probe admits");
        open_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(fabric.e2e_bound(fid).is_some(), "probe is certified");
        let t0 = Instant::now();
        fabric.close_connection(fid);
        close_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    (open_us, close_us)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn latency_row(table: &mut Table, mode: &str, kind: &str, mut us: Vec<f64>) -> f64 {
    us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total_s: f64 = us.iter().sum::<f64>() / 1e6;
    let ops_per_s = us.len() as f64 / total_s.max(1e-12);
    table.row(&[
        mode.to_string(),
        kind.to_string(),
        us.len().to_string(),
        fmt_f64(percentile(&us, 0.50), 1),
        fmt_f64(percentile(&us, 0.95), 1),
        fmt_f64(percentile(&us, 0.99), 1),
        fmt_f64(percentile(&us, 1.0), 1),
        fmt_f64(ops_per_s, 0),
    ]);
    ops_per_s
}

/// Run E20.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut notes = vec![];
    let rings: u16 = if opts.quick { 8 } else { 16 };
    let per_ring: usize = if opts.quick { 40 } else { 160 };
    let residents = rings as usize * per_ring;
    let churn_ops: u32 = if opts.quick { 120 } else { 2_000 };
    // The full-re-solve reference pays the whole fixed point per op; keep
    // its sample small so the soak stays runnable.
    let full_ops: u32 = if opts.quick { 12 } else { 60 };

    // --- 1. churn latency: warm-started vs forced-full ----------------
    let mut churn_table = Table::new(
        "E20a — admission churn latency (wall clock, resident set certified)",
        &[
            "mode",
            "op",
            "count",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
            "ops_per_s",
        ],
    );
    let mut warm = build(rings, per_ring, false, 0xE20);
    let (open_us, close_us) = churn(&mut warm, rings, churn_ops);
    let warm_open_rate = latency_row(&mut churn_table, "incremental", "open", open_us);
    latency_row(&mut churn_table, "incremental", "close", close_us);

    let mut full = build(rings, per_ring, true, 0xE20);
    let (open_us, close_us) = churn(&mut full, rings, full_ops);
    let full_open_rate = latency_row(&mut churn_table, "full", "open", open_us);
    latency_row(&mut churn_table, "full", "close", close_us);

    let speedup = warm_open_rate / full_open_rate;
    notes.push(format!(
        "{residents} resident certified connections; open-path speedup \
         incremental vs full re-solve: {speedup:.1}x"
    ));
    let m = warm.metrics();
    notes.push(format!(
        "warm-started fabric certifications: {} incremental, {} full re-solves",
        m.calc_admit_incremental.get(),
        m.calc_admit_full.get()
    ));

    // --- 2. steady-state headroom across the resident set -------------
    let mut headroom_table = Table::new(
        "E20b — steady-state certified headroom (relative deadline slack)",
        &["metric", "value"],
    );
    let specs = resident_specs(rings, per_ring);
    let mut slack: Vec<f64> = Vec::with_capacity(residents);
    let fids: Vec<FabricConnectionId> = (1..=residents as u64).map(FabricConnectionId).collect();
    for (fid, spec) in fids.iter().zip(specs.iter()) {
        let bound = warm.e2e_bound(*fid).expect("resident is certified");
        let frac = bound.as_ps() as f64 / spec.e2e_deadline.as_ps() as f64;
        assert!(frac <= 1.0, "certified bound within deadline");
        slack.push(1.0 - frac);
    }
    slack.sort_by(|a, b| a.partial_cmp(b).expect("finite slack"));
    let mean = slack.iter().sum::<f64>() / slack.len() as f64;
    for (name, v) in [
        ("residents", residents as f64),
        ("min_slack", slack[0]),
        ("p10_slack", percentile(&slack, 0.10)),
        ("p50_slack", percentile(&slack, 0.50)),
        ("mean_slack", mean),
        ("max_slack", slack[slack.len() - 1]),
    ] {
        headroom_table.row(&[name.to_string(), fmt_f64(v, 4)]);
    }
    notes.push(format!(
        "every resident keeps a certified bound within its deadline; minimum \
         relative slack {:.3}",
        slack[0]
    ));

    for (path, table) in [
        ("results/e20_churn.csv", &churn_table),
        ("results/e20_headroom.csv", &headroom_table),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![churn_table, headroom_table],
        notes,
    }
}
