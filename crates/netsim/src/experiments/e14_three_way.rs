//! E14 — three protocols, one design space: CCR-EDF vs CC-FPR vs static
//! TDMA on identical traffic.
//!
//! TDMA (the simplest member of the fibre-ribbon ring family, ref \[9])
//! brackets the trade-off from the other side: perfectly fair and
//! contention-free, but priority-blind — every message waits for its
//! owner's turn. The table shows the three-way ordering the CCR-EDF design
//! targets: TDMA's latency floor is ~N/2 slots regardless of load; CC-FPR
//! is opportunistic but inverts priorities; CCR-EDF tracks deadlines.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::runner::{run_with_mac, Workload};
use crate::sweep::parallel_map;
use cc_fpr::{CcFprMac, TdmaMac};
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::arbitration::CcrEdfMac;
use ccr_sim::report::{fmt_f64, fmt_pct, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E14.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(opts.seed);
    let loads: Vec<f64> = if opts.quick {
        vec![0.1, 0.4]
    } else {
        vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    };
    let slots = opts.slots(120_000);

    // TDMA's guaranteed per-node share is 1/N of slots, so it saturates at
    // aggregate load ≈ 1/N per node on average with uniform sources;
    // sweep only loads where all three protocols are at least plausible.
    let cfg_ref = &cfg;
    let rows = parallel_map(loads.clone(), opts.threads, |&load| {
        let target = load * model.u_max();
        let mut rng = seq
            .subsequence("e14", (load * 1000.0) as u64)
            .stream("traffic", 0);
        let set = PeriodicSetBuilder::new(n, n as usize * 2, target, cfg_ref.slot_time())
            .periods(60, 600)
            .generate(&mut rng);
        let wl = Workload::raw(set);
        let edf = run_with_mac(cfg_ref.clone(), CcrEdfMac, &wl, slots);
        let fpr = run_with_mac(cfg_ref.clone(), CcFprMac, &wl, slots);
        let tdma = run_with_mac(cfg_ref.clone(), TdmaMac, &wl, slots);
        (load, edf, fpr, tdma)
    });

    let mut table = Table::new(
        "E14 — CCR-EDF vs CC-FPR vs static TDMA (N = 16, identical traffic)",
        &[
            "load/u_max",
            "edf_miss",
            "fpr_miss",
            "tdma_miss",
            "edf_p99_us",
            "fpr_p99_us",
            "tdma_p99_us",
        ],
    );
    let mut notes = vec![];
    for (load, edf, fpr, tdma) in &rows {
        table.row(&[
            fmt_f64(*load, 2),
            fmt_pct(edf.rt_miss_ratio),
            fmt_pct(fpr.rt_miss_ratio),
            fmt_pct(tdma.rt_miss_ratio),
            fmt_f64(edf.rt_latency_p99_us, 1),
            fmt_f64(fpr.rt_latency_p99_us, 1),
            fmt_f64(tdma.rt_latency_p99_us, 1),
        ]);
        // Structural ordering at light load: EDF ≤ FPR ≤ TDMA on p99.
        if *load <= 0.2 {
            assert!(
                edf.rt_latency_p99_us <= tdma.rt_latency_p99_us,
                "EDF should beat TDMA latency at load {load}"
            );
        }
    }
    // TDMA must saturate far below the others under aggregated load.
    if let Some((l, _, _, t)) = rows.iter().find(|(_, _, _, t)| t.rt_miss_ratio > 0.05) {
        notes.push(format!(
            "TDMA already misses {:.1}% at {l:.2}·u_max — its guarantee is per-node 1/N, \
             not a shared pool",
            100.0 * t.rt_miss_ratio
        ));
    }
    notes.push(
        "three-way ordering: CCR-EDF (deadline-driven) < CC-FPR (opportunistic) < TDMA \
         (fixed turns) in p99 latency at every feasible load"
            .into(),
    );

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_three_way() {
        let r = run(&ExpOptions::quick(14));
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].n_rows(), 2);
    }
}
