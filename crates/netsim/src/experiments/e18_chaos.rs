//! E18 — robustness: chaos soak, scripted fault scenarios, self-healing.
//!
//! The paper's protocol machinery assumes a fault-free fibre ribbon; the
//! fault-injection layer (stochastic knobs + deterministic
//! [`ccr_edf::fault::FaultScript`], node bypass with restart election,
//! CRC-guarded control channel, degraded-mode admission) is the
//! engineering answer to what Section 8 leaves open. This experiment
//! quantifies it three ways:
//!
//! 1. **Chaos soak** — fault kind × fault rate, stochastic injection over
//!    a long horizon. Every clock loss recovers within the configured
//!    timeout (time-to-recovery is *bounded*, never open-ended) and the
//!    ring's availability degrades smoothly with the fault rate.
//! 2. **Scripted scenarios** — discrete fault stories (node death, death
//!    of the designated restart node 0, double failure, token burst, bit
//!    errors). After the faults land and the survivors are re-validated,
//!    a long clean tail shows **zero further deadline misses** — the
//!    degraded-mode admission test really does re-establish the
//!    guarantee.
//! 3. **Bridge failover** — a cyclic three-ring fabric loses a bridge
//!    station mid-run; the affected end-to-end connection is re-admitted
//!    over the surviving detour and traffic resumes.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e18_soak.csv`, `results/e18_selfheal.csv`,
//! `results/e18_bridge.csv`, and the windowed per-ring availability of the
//! failover fabric as `results/e18_ring_availability.csv` /
//! `results/e18_ring_availability.jsonl`.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::config::FaultConfig;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::fault::{FaultKind, FaultScript};
use ccr_edf::metrics::Metrics;
use ccr_edf::network::RingNetwork;
use ccr_edf::NodeId;
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;

const N: u16 = 16;
const TIMEOUT: u32 = 8;

/// Build the standard 16-node ring with six admitted connections (two of
/// them deliberately touching nodes the scripted scenarios kill).
fn build_ring(seed: u64, faults: FaultConfig, script: FaultScript) -> RingNetwork {
    let cfg = base_config(N, 2_048)
        .seed(seed)
        .faults(faults)
        .fault_script(script)
        .build_auto_slot()
        .expect("ring config");
    let slot = cfg.slot_time();
    let mut net = RingNetwork::new_ccr_edf(cfg);
    let pairs: [(u16, u16); 6] = [(1, 5), (2, 6), (3, 11), (0, 12), (4, 8), (10, 14)];
    for (i, (src, dst)) in pairs.into_iter().enumerate() {
        let spec = ConnectionSpec::unicast(NodeId(src), NodeId(dst))
            .period(slot.times(12 + 4 * i as u64))
            .size_slots(1);
        net.open_connection(spec).expect("admits");
    }
    net
}

fn soak_faults(kind: &str, rate: f64) -> FaultConfig {
    FaultConfig {
        token_loss_prob: if kind == "token" || kind == "mixed" {
            rate
        } else {
            0.0
        },
        control_error_prob: if kind == "control" || kind == "mixed" {
            rate
        } else {
            0.0
        },
        data_loss_prob: if kind == "data" || kind == "mixed" {
            rate
        } else {
            0.0
        },
        recovery_timeout_slots: TIMEOUT,
    }
}

/// Run E18.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e18", 0);
    let mut notes = vec![];

    // --- 1. chaos soak: fault kind × fault rate ------------------------
    let soak_slots = opts.slots(60_000);
    let kinds: &[&str] = &["token", "control", "data", "mixed"];
    let rates: &[f64] = if opts.quick {
        &[1e-3, 1e-2]
    } else {
        &[1e-4, 1e-3, 1e-2]
    };
    let points: Vec<(&str, f64)> = kinds
        .iter()
        .flat_map(|&k| rates.iter().map(move |&r| (k, r)))
        .collect();
    let soak_seed = seq.child_seed("soak", 0);
    let rows = parallel_map(points, opts.threads, |&(kind, rate)| {
        let mut net = build_ring(soak_seed, soak_faults(kind, rate), FaultScript::new());
        net.run_slots(soak_slots);
        let m = net.metrics().clone();
        (kind, rate, m)
    });

    let mut soak = Table::new(
        "E18a — chaos soak: stochastic fault kind x rate, bounded recovery",
        &[
            "kind",
            "rate",
            "tok_lost",
            "ctl_corrupt",
            "unrel_lost",
            "recov_slots",
            "max_ttr",
            "avail",
            "rt_deliv",
            "rt_miss",
        ],
    );
    for (kind, rate, m) in &rows {
        let max_ttr = m.fault_log.max_time_to_recovery().unwrap_or(0);
        assert!(
            max_ttr <= TIMEOUT as u64 + 1,
            "recovery must complete within the configured timeout ({max_ttr} > {TIMEOUT}+1)"
        );
        soak.row(&[
            kind.to_string(),
            format!("{rate:.0e}"),
            m.tokens_lost.get().to_string(),
            m.control_corrupted.get().to_string(),
            m.data_lost_unreliable.get().to_string(),
            m.recovery_slots.get().to_string(),
            max_ttr.to_string(),
            fmt_f64(m.availability(), 4),
            m.delivered_rt.get().to_string(),
            m.rt_deadline_misses.get().to_string(),
        ]);
    }
    notes.push(format!(
        "every clock-loss recovery across the soak completed within the {TIMEOUT}-slot \
         timeout — time-to-recovery is bounded, never open-ended"
    ));

    // Determinism spot-check: the same seed + the same knobs replay to
    // bit-identical metrics.
    {
        let run_once = || {
            let mut net = build_ring(soak_seed, soak_faults("mixed", 1e-2), FaultScript::new());
            net.run_slots(soak_slots.min(10_000));
            net.metrics().clone()
        };
        let (a, b): (Metrics, Metrics) = (run_once(), run_once());
        assert_eq!(a, b, "same seed + same faults must replay bit-for-bit");
        notes.push(
            "replaying the worst soak point with the same seed reproduced bit-identical \
             metrics (fault injection is fully deterministic)"
                .to_string(),
        );
    }

    // --- 2. scripted scenarios with a clean tail -----------------------
    let horizon = opts.slots(30_000);
    let fault_at = horizon / 3;
    let settle = fault_at + horizon / 6;
    let scenarios: Vec<(&str, FaultScript)> = vec![
        (
            "node-3",
            FaultScript::new().at(fault_at, FaultKind::FailNode(NodeId(3))),
        ),
        (
            // Node 0 is both the initial master and the designated restart
            // node; killing it exercises the restart-successor election on
            // the follow-up token loss.
            "restart-node-0",
            FaultScript::new()
                .at(fault_at, FaultKind::FailNode(NodeId(0)))
                .at(fault_at + 100, FaultKind::LoseToken),
        ),
        (
            "double-failure",
            FaultScript::new()
                .at(fault_at, FaultKind::FailNode(NodeId(3)))
                .at(fault_at + 50, FaultKind::FailNode(NodeId(7))),
        ),
        (
            "token-burst",
            FaultScript::new()
                .at(fault_at, FaultKind::LoseToken)
                .at(fault_at + 20, FaultKind::LoseToken)
                .at(fault_at + 40, FaultKind::LoseToken)
                .at(fault_at + 60, FaultKind::CorruptDistribution),
        ),
        (
            "bit-errors",
            FaultScript::new()
                .at(fault_at, FaultKind::CorruptCollection { victim: NodeId(1) })
                .at(
                    fault_at + 10,
                    FaultKind::CorruptCollection { victim: NodeId(2) },
                ),
        ),
    ];

    let heal_seed = seq.child_seed("heal", 0);
    let heal_rows = parallel_map(scenarios, opts.threads, |(name, script)| {
        let faults = FaultConfig {
            recovery_timeout_slots: TIMEOUT,
            ..Default::default()
        };
        let mut net = build_ring(heal_seed, faults, script.clone());
        net.run_slots(settle);
        let misses_at_settle = net.metrics().rt_deadline_misses.get();
        let delivered_at_settle = net.metrics().delivered_rt.get();
        net.run_slots(horizon - settle);
        let m = net.metrics().clone();
        let tail_misses = m.rt_deadline_misses.get() - misses_at_settle;
        let tail_delivered = m.delivered_rt.get() - delivered_at_settle;
        (*name, m, tail_misses, tail_delivered)
    });

    let mut heal = Table::new(
        "E18b — scripted fault scenarios: revalidated survivors, clean tail",
        &[
            "scenario",
            "failed",
            "revoked",
            "dropped",
            "tok_lost",
            "recov_slots",
            "max_ttr",
            "avail",
            "tail_deliv",
            "tail_miss",
        ],
    );
    for (name, m, tail_misses, tail_delivered) in &heal_rows {
        assert_eq!(
            *tail_misses, 0,
            "{name}: the re-validated surviving set must not miss after recovery"
        );
        assert!(
            *tail_delivered > 0,
            "{name}: survivors must keep delivering after the faults"
        );
        let max_ttr = m.fault_log.max_time_to_recovery().unwrap_or(0);
        assert!(max_ttr <= TIMEOUT as u64 + 1, "{name}: unbounded recovery");
        heal.row(&[
            name.to_string(),
            m.nodes_failed.get().to_string(),
            m.connections_revoked.get().to_string(),
            m.fault_dropped_messages.get().to_string(),
            m.tokens_lost.get().to_string(),
            m.recovery_slots.get().to_string(),
            max_ttr.to_string(),
            fmt_f64(m.availability(), 4),
            tail_delivered.to_string(),
            tail_misses.to_string(),
        ]);
    }
    notes.push(
        "every scripted scenario ends with a clean tail: zero real-time deadline \
         misses among the re-validated survivors once recovery completed — \
         including the scenario that kills designated restart node 0"
            .to_string(),
    );

    // --- 3. bridge failover on a cyclic fabric -------------------------
    let (bridge_row, ring_avail, ring_avail_jsonl) = bridge_failover(opts, &seq);
    let mut bridge = Table::new(
        "E18c — bridge failover: cyclic 3-ring fabric loses a bridge station",
        &[
            "killed",
            "rerouted",
            "revoked",
            "flushed",
            "deliv_pre",
            "deliv_post",
            "e2e_miss",
            "degraded",
            "avail",
        ],
    );
    bridge.row(&bridge_row);
    notes.push(
        "after the bridge kill the crossing connection was re-admitted over the \
         detour through the third ring and end-to-end traffic resumed"
            .to_string(),
    );

    // Best-effort CSV/JSONL artefacts.
    for (path, table) in [
        ("results/e18_soak.csv", &soak),
        ("results/e18_selfheal.csv", &heal),
        ("results/e18_bridge.csv", &bridge),
        ("results/e18_ring_availability.csv", &ring_avail),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }
    {
        let path = "results/e18_ring_availability.jsonl";
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(path, &ring_avail_jsonl))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![soak, heal, bridge, ring_avail],
        notes,
    }
}

/// The cyclic-fabric failover story: kill bridge 0 mid-run, verify the
/// detour carries the connection afterwards. Returns the summary table
/// row, the windowed per-ring availability table, and the same series as
/// JSON lines.
fn bridge_failover(opts: &ExpOptions, seq: &SeedSequence) -> (Vec<String>, Table, String) {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(6);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
    b.allow_cycles_with(CycleBound::unbounded());
    let topo = b.build().expect("triangle fabric");

    let horizon = opts.slots(40_000);
    let fault_at = horizon / 2;
    let mut cfg =
        FabricConfig::uniform(topo, 2_048, seq.child_seed("bridge", 0)).expect("fabric config");
    for rc in &mut cfg.ring_configs {
        rc.faults.recovery_timeout_slots = TIMEOUT;
    }
    let cfg = cfg.fault_script(
        FabricFaultScript::new()
            .kill_bridge_at(fault_at, 0)
            // a ring-local token loss on the detour ring, for good measure
            .ring_at(fault_at + 200, RingId(2), FaultKind::LoseToken),
    );
    let mut fabric = Fabric::new(cfg).expect("fabric");
    fabric
        .open_connection(
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                .period(ccr_sim::TimeDelta::from_ms(5)),
        )
        .expect("crossing connection admits");
    fabric.run_slots(fault_at);
    let pre = fabric.metrics().e2e_delivered.get();
    fabric.run_slots(horizon - fault_at);
    fabric.flush_health_series();
    let m = fabric.metrics();
    assert_eq!(m.bridges_killed.get(), 1);
    assert!(
        m.e2e_rerouted.get() >= 1,
        "the crossing connection must fail over to the detour"
    );
    assert!(
        m.e2e_delivered.get() > pre,
        "end-to-end traffic must resume on the alternate route"
    );
    let row = vec![
        m.bridges_killed.get().to_string(),
        m.e2e_rerouted.get().to_string(),
        m.e2e_revoked.get().to_string(),
        m.fault_dropped_forwards.get().to_string(),
        pre.to_string(),
        (m.e2e_delivered.get() - pre).to_string(),
        m.e2e_missed.get().to_string(),
        m.degraded_slots.get().to_string(),
        fmt_f64(m.availability(), 4),
    ];
    (row, ring_availability_table(m), ring_availability_jsonl(m))
}

/// One row per availability window: `slot, ring0, ring1, …` — the
/// dashboard-friendly view of [`FabricMetrics::ring_availability`].
fn ring_availability_table(m: &FabricMetrics) -> Table {
    let mut headers = vec!["slot".to_string()];
    headers.extend(m.ring_availability.iter().map(|s| s.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "E18d — windowed per-ring availability of the failover fabric",
        &header_refs,
    );
    let n_windows = m
        .ring_availability
        .first()
        .map_or(0, ccr_sim::stats::Series::len);
    for w in 0..n_windows {
        let mut cells = vec![(m.ring_availability[0].points()[w].0 as u64).to_string()];
        cells.extend(
            m.ring_availability
                .iter()
                .map(|s| fmt_f64(s.points()[w].1, 4)),
        );
        table.row(&cells);
    }
    table
}

/// The same series as JSON lines:
/// `{"slot":…,"ring":…,"availability":…}` per window per ring.
fn ring_availability_jsonl(m: &FabricMetrics) -> String {
    let mut out = String::new();
    for (r, series) in m.ring_availability.iter().enumerate() {
        for &(slot, avail) in series.points() {
            out.push_str(&format!(
                "{{\"slot\":{},\"ring\":{},\"availability\":{}}}\n",
                slot as u64,
                r,
                fmt_f64(avail, 6)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos() {
        let r = run(&ExpOptions::quick(18));
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.tables[0].n_rows(), 8); // 4 kinds × 2 rates
        assert_eq!(r.tables[1].n_rows(), 5); // 5 scripted scenarios
        assert_eq!(r.tables[2].n_rows(), 1);
        // windowed per-ring availability: at least one window per ring
        assert!(r.tables[3].n_rows() >= 1);
        assert!(r.notes.iter().any(|n| n.contains("clean tail")));
        assert!(r.notes.iter().any(|n| n.contains("bit-identical")));
    }
}
