//! E4 — Equations 5–6: the `U_max` bound and the admission boundary.
//!
//! Part A tabulates `U_max = t_slot / (t_slot + t_handover_max)` across
//! ring size, slot length and link length. Part B fills the admission
//! controller with many small connections and verifies the accepted
//! utilisation converges on `U_max` from below. Part C runs an admitted
//! full-load set and confirms zero misses while the *measured* slot-time
//! fraction stays above `U_max` (gaps are usually shorter than worst case).

use super::{base_config, ring_sizes, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::connection::ConnectionSpec;
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, TimeDelta};
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E4.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut notes = vec![];

    // ---- Part A: the bound itself ----------------------------------------
    let mut ta = Table::new(
        "E4a — U_max (Equation 6) across N, slot length and link length",
        &[
            "n_nodes",
            "slot_bytes",
            "link_m",
            "t_slot_us",
            "h_max_us",
            "u_max",
        ],
    );
    for &n in &ring_sizes(opts) {
        for slot_bytes in [512u32, 2_048, 8_192] {
            for link_m in [5.0, 50.0] {
                let Ok(cfg) = base_config(n, slot_bytes).link_length_m(link_m).build() else {
                    continue; // infeasible (slot below Eq. 2 minimum)
                };
                let a = AnalyticModel::new(&cfg);
                ta.row(&[
                    n.to_string(),
                    slot_bytes.to_string(),
                    fmt_f64(link_m, 0),
                    fmt_f64(cfg.slot_time().as_us_f64(), 3),
                    fmt_f64(cfg.timing().max_handover().as_us_f64(), 3),
                    fmt_f64(a.u_max(), 4),
                ]);
            }
        }
    }

    // ---- Part B: admission boundary ---------------------------------------
    let mut tb = Table::new(
        "E4b — admission fills exactly to U_max (Equation 5 test)",
        &[
            "n_nodes",
            "u_max",
            "admitted_u",
            "admitted_conns",
            "first_reject_at_u",
        ],
    );
    for &n in &ring_sizes(opts) {
        let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
        let a = AnalyticModel::new(&cfg);
        let slot = cfg.slot_time();
        let mut net = RingNetwork::new_ccr_edf(cfg);
        // many identical small connections, each u = u_max/40
        let u_step = a.u_max() / 40.0;
        let spec = ConnectionSpec::unicast(NodeId(0), NodeId(1))
            .period(TimeDelta::from_ps(
                (slot.as_ps() as f64 / u_step).round() as u64
            ))
            .size_slots(1);
        let mut admitted = 0u32;
        let mut reject_at = f64::NAN;
        for _ in 0..60 {
            match net.open_connection(spec.clone()) {
                Ok(_) => admitted += 1,
                Err(_) => {
                    reject_at = net.admission().admitted_utilisation() + u_step;
                    break;
                }
            }
        }
        let admitted_u = net.admission().admitted_utilisation();
        assert!(admitted_u <= a.u_max() + 1e-9);
        assert!(
            a.u_max() - admitted_u < u_step + 1e-9,
            "admission left more than one step of headroom"
        );
        tb.row(&[
            n.to_string(),
            fmt_f64(a.u_max(), 4),
            fmt_f64(admitted_u, 4),
            admitted.to_string(),
            fmt_f64(reject_at, 4),
        ]);
    }
    notes.push("admitted utilisation converges on U_max from below".into());

    // ---- Part C: admitted full load never misses ---------------------------
    let mut tc = Table::new(
        "E4c — admitted sets at ~0.95·U_max: misses and measured slot-time fraction",
        &[
            "n_nodes",
            "target_u",
            "admitted_u",
            "delivered_rt",
            "misses",
            "slot_time_frac",
            "u_max",
        ],
    );
    let seq = SeedSequence::new(opts.seed);
    let slots = opts.slots(150_000);
    let rows = parallel_map(ring_sizes(opts), opts.threads, |&n| {
        let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
        let a = AnalyticModel::new(&cfg);
        let target = 0.95 * a.u_max();
        let mut rng = seq.subsequence("e4c", n as u64).stream("traffic", 0);
        let set = PeriodicSetBuilder::new(n, (n as usize) * 3, target, cfg.slot_time())
            .periods(50, 4_000)
            .generate(&mut rng);
        let slot = cfg.slot_time();
        let mut net = RingNetwork::new_ccr_edf(cfg);
        for spec in set {
            let _ = net.open_connection(spec);
        }
        let admitted_u = net.admission().admitted_utilisation();
        net.run_slots(slots);
        let m = net.metrics();
        (
            n,
            target,
            admitted_u,
            m.delivered_rt.get(),
            m.rt_deadline_misses.get(),
            m.slot_time_fraction(slot),
            a.u_max(),
        )
    });
    for (n, target, admitted_u, delivered, misses, frac, umax) in rows {
        assert_eq!(misses, 0, "admitted set missed deadlines at N={n}");
        tc.row(&[
            n.to_string(),
            fmt_f64(target, 4),
            fmt_f64(admitted_u, 4),
            delivered.to_string(),
            misses.to_string(),
            fmt_f64(frac, 4),
            fmt_f64(umax, 4),
        ]);
    }
    notes.push("admitted traffic at ~0.95·U_max: zero deadline misses".into());

    ExperimentResult {
        tables: vec![ta, tb, tc],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run() {
        let r = run(&ExpOptions::quick(4));
        assert_eq!(r.tables.len(), 3);
        assert!(r.tables[2].n_rows() >= 3);
    }
}
