//! E7 — spatial reuse: aggregate throughput above the single-link rate.
//!
//! Section 2: "Several transmissions can be performed simultaneously
//! through spatial bandwidth reuse, thus achieving an aggregated throughput
//! higher than the single-link bit rate." We saturate the ring with
//! non-real-time traffic of varying locality and measure the reuse factor
//! (mean simultaneous transmissions per slot) and aggregate goodput, with
//! and without reuse enabled.

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::message::{Destination, Message};
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, SimTime};
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;

/// Run E7.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let slots = opts.slots(20_000);
    let seq = SeedSequence::new(opts.seed);
    let localities: Vec<(&str, u16)> = vec![
        ("1 hop", 1),
        ("2 hops", 2),
        ("4 hops", 4),
        ("8 hops", 8),
        ("uniform", n - 1),
    ];

    let cases: Vec<(usize, bool)> = (0..localities.len())
        .flat_map(|i| [(i, true), (i, false)])
        .collect();
    let localities_ref = &localities;
    let rows = parallel_map(cases, opts.threads, |&(i, reuse)| {
        let (label, max_hops) = localities_ref[i];
        let cfg = base_config(n, 2_048)
            .spatial_reuse(reuse)
            .build_auto_slot()
            .unwrap();
        let mut rng = seq
            .subsequence("e7", i as u64)
            .stream("traffic", reuse as u64);
        let mut net = RingNetwork::new_ccr_edf(cfg);
        // Saturate: every node keeps a backlog of one NRT message per slot
        // of the horizon, so the queues never run dry.
        for src in 0..n {
            for _ in 0..slots {
                let hops = rng.gen_range(1..=max_hops);
                let dst = NodeId((src + hops) % n);
                net.submit_message(
                    SimTime::ZERO,
                    Message::non_real_time(
                        NodeId(src),
                        Destination::Unicast(dst),
                        1,
                        SimTime::ZERO,
                    ),
                );
            }
        }
        net.run_slots(slots);
        let m = net.metrics();
        let single_link_gbps = net.config().phys.data_bandwidth_bps() / 1e9;
        (
            label,
            reuse,
            m.reuse_factor(),
            m.goodput_bps() / 1e9,
            single_link_gbps,
            m.busy_fraction(),
        )
    });

    let mut table = Table::new(
        "E7 — spatial reuse under saturation (N = 16): reuse factor and goodput",
        &[
            "locality",
            "reuse",
            "grants_per_slot",
            "goodput_gbps",
            "single_link_gbps",
            "speedup_vs_no_reuse",
        ],
    );
    let mut notes = vec![];
    for (label, _) in localities.iter() {
        let with = rows
            .iter()
            .find(|r| r.0 == *label && r.1)
            .expect("with-reuse row");
        let without = rows
            .iter()
            .find(|r| r.0 == *label && !r.1)
            .expect("no-reuse row");
        for r in [with, without] {
            table.row(&[
                r.0.to_string(),
                r.1.to_string(),
                fmt_f64(r.2, 2),
                fmt_f64(r.3, 2),
                fmt_f64(r.4, 2),
                fmt_f64(r.3 / without.3, 2),
            ]);
        }
    }
    // Structural claims: local traffic with reuse beats the single-link
    // rate; uniform traffic gains less; reuse ≥ no-reuse everywhere.
    let local_with = rows.iter().find(|r| r.0 == "1 hop" && r.1).unwrap();
    assert!(
        local_with.3 > local_with.4,
        "1-hop reuse should beat the single-link rate: {} vs {}",
        local_with.3,
        local_with.4
    );
    notes.push(format!(
        "1-hop locality with reuse: {:.1} grants/slot, {:.1}x the single-link rate",
        local_with.2,
        local_with.3 / local_with.4
    ));

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reuse_beats_single_link_for_local_traffic() {
        let r = run(&ExpOptions::quick(77));
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].n_rows() >= 6);
    }
}
