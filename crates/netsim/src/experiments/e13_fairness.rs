//! E13 — ablation: the arbitration tie-break rule and fairness.
//!
//! Section 3 fixes the tie-break by fiat: "In the event priority ties the
//! index (known by the master) of the node resolves the tie." With the
//! paper's coarse 15-level priority bands, ties are *common*, and a fixed
//! index rule systematically favours low-numbered nodes. This experiment
//! drives every node with an identical periodic load (maximal tie
//! collisions) and compares per-node latency under the paper's rule vs a
//! rotating tie-break (distance from the current master), reporting an
//! unfairness index (worst node mean / best node mean).

use super::{base_config, ExpOptions, ExperimentResult};
use crate::runner::{expand_periodic, RAW_CONN_BASE};
use crate::sweep::parallel_map;
use ccr_edf::arbitration::{CcrEdfMac, CcrEdfRotatingMac};
use ccr_edf::connection::{ConnectionId, ConnectionSpec};
use ccr_edf::mac::MacProtocol;
use ccr_edf::network::RingNetwork;
use ccr_edf::{NodeId, TimeDelta};
use ccr_sim::report::{fmt_f64, Table};

/// Build the symmetric all-nodes workload: every node sends a 1-slot
/// message to the node `n/2` hops away with the same period and phase, so
/// every slot's arbitration sees N equal-priority requests.
fn symmetric_specs(n: u16, period: TimeDelta) -> Vec<ConnectionSpec> {
    (0..n)
        .map(|i| {
            ConnectionSpec::unicast(NodeId(i), NodeId((i + n / 2) % n))
                .period(period)
                .size_slots(1)
        })
        .collect()
}

fn run_mac<P: MacProtocol>(mac: P, n: u16, slots: u64) -> (Vec<f64>, f64) {
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let slot = cfg.slot_time();
    // period: N+4 slots → offered utilisation ≈ N/(N+4) of the slot supply
    // on fully overlapping paths, i.e. sustained contention with ties.
    let period = TimeDelta::from_ps(slot.as_ps() * (n as u64 + 4));
    let horizon = slot * slots;
    let mut net = RingNetwork::with_mac(cfg, mac);
    for (i, spec) in symmetric_specs(n, period).iter().enumerate() {
        for (at, msg) in expand_periodic(spec, i as u64, horizon) {
            net.submit_message(at, msg);
        }
    }
    net.run_slots(slots);
    let m = net.metrics();
    let mut per_node = Vec::with_capacity(n as usize);
    for i in 0..n as u64 {
        let cs = m
            .per_conn
            .get(&ConnectionId(RAW_CONN_BASE + i))
            .expect("every node delivered");
        per_node.push(cs.latency.mean().unwrap_or(f64::NAN) / 1e6);
    }
    (per_node, m.rt_miss_ratio())
}

/// Run E13.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let slots = opts.slots(100_000);

    let results = parallel_map(vec![0u8, 1], opts.threads, |&which| match which {
        0 => run_mac(CcrEdfMac, n, slots),
        _ => run_mac(CcrEdfRotatingMac, n, slots),
    });
    let (index_lat, index_miss) = &results[0];
    let (rot_lat, rot_miss) = &results[1];

    let mut ta = Table::new(
        "E13a — per-node mean latency (µs) under symmetric tie-heavy load (N = 16)",
        &["node", "index_tiebreak_us", "rotating_tiebreak_us"],
    );
    for i in 0..n as usize {
        ta.row(&[
            i.to_string(),
            fmt_f64(index_lat[i], 2),
            fmt_f64(rot_lat[i], 2),
        ]);
    }

    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    let mut tb = Table::new(
        "E13b — unfairness index (worst node mean / best node mean)",
        &["tie_break", "unfairness", "rt_miss_ratio"],
    );
    tb.row(&[
        "index (paper)".into(),
        fmt_f64(spread(index_lat), 2),
        fmt_f64(*index_miss, 4),
    ]);
    tb.row(&[
        "rotating".into(),
        fmt_f64(spread(rot_lat), 2),
        fmt_f64(*rot_miss, 4),
    ]);

    let notes = vec![format!(
        "index tie-break unfairness {:.2} vs rotating {:.2} — the fixed rule \
         favours low-numbered nodes under tie-heavy symmetric load",
        spread(index_lat),
        spread(rot_lat)
    )];

    ExperimentResult {
        tables: vec![ta, tb],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fairness() {
        let r = run(&ExpOptions::quick(13));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].n_rows(), 16);
    }
}
