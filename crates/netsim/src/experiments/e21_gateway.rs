//! E21 — extension: the real-wire gateway — paced virtual links over the
//! certified fabric.
//!
//! `ccr-gateway` lets external UDP clients ride the fabric as *virtual
//! links*: each link is admitted through the same EDF + calculus gate as
//! any native connection, then a token bucket at ingress paces the wire
//! to the admitted envelope. The paper's promise is that admitted
//! real-time traffic keeps its deadlines *no matter what the wire does*;
//! this experiment holds the gateway to that promise using the
//! deterministic loopback backend (identical code path to UDP minus the
//! socket), three ways:
//!
//! 1. **Headline soak** — guaranteed links driven exactly at their
//!    admitted rate while a best-effort link is flooded at 1.5× its
//!    admitted rate. The guaranteed links must finish with **zero**
//!    deadline misses; the overload shows up only as counted sheds on
//!    the best-effort link — nothing is silently dropped and nothing
//!    uncommitted enters the fabric.
//! 2. **Overload sweep** — the best-effort drive factor swept from 1×
//!    to 4×. Injections stay pinned at the admitted rate (the bucket is
//!    the clamp), sheds absorb the excess, and the guaranteed links'
//!    miss count stays zero at every factor.
//! 3. **Replay** — the headline scenario run twice must produce
//!    byte-identical egress wire frames and `==`-equal metrics: the
//!    gateway adds no nondeterminism to the fabric it fronts.
//!
//! A [`GatewayTraceRecorder`](crate::trace::GatewayTraceRecorder)
//! timeline of the headline run is included so the shed bursts are
//! visible per window.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e21_gateway.csv`, `results/e21_overload.csv`.

use super::{ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use crate::trace::GatewayTraceRecorder;
use ccr_gateway::prelude::*;
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::{SeedSequence, TimeDelta};

/// Admitted period of every link in the scenario.
const PERIOD: TimeDelta = TimeDelta::from_ms(2);

/// A scenario link: `(wire id, src (ring, node), dst (ring, node))`.
type LinkSite = (u16, (u16, u16), (u16, u16));

/// Guaranteed links on the 2×6 chain fabric.
const GUARANTEED: [LinkSite; 2] = [(1, (0, 1), (1, 3)), (3, (0, 3), (1, 5))];

/// The best-effort link driven into overload.
const BEST_EFFORT: LinkSite = (2, (0, 2), (1, 4));

fn build(seed: u64, threads: usize) -> (Fabric, Gateway, AdmissionReport) {
    let topo = FabricTopology::chain(2, 6);
    let cfg = FabricConfig::uniform(topo, 2_048, seed)
        .expect("fabric config")
        .threads(threads);
    let mut fabric = Fabric::new(cfg).expect("fabric builds");
    let mut links: Vec<VirtualLink> = GUARANTEED
        .iter()
        .map(|&(id, (sr, sn), (dr, dn))| {
            VirtualLink::new(id, GlobalNodeId::new(sr, sn), GlobalNodeId::new(dr, dn))
                .period(PERIOD)
        })
        .collect();
    let (id, (sr, sn), (dr, dn)) = BEST_EFFORT;
    links.push(
        VirtualLink::new(id, GlobalNodeId::new(sr, sn), GlobalNodeId::new(dr, dn))
            .period(PERIOD)
            .class(DeadlineClass::BestEffort),
    );
    let gw_cfg = GatewayConfig::new(links).expect("gateway config");
    let (gateway, report) = Gateway::open(&gw_cfg, &mut fabric);
    (fabric, gateway, report)
}

/// Slots per admitted period, from the fabric's own slot length.
fn period_slots(fabric: &Fabric) -> u64 {
    let slot = fabric.segment_envs()[0].slot;
    PERIOD.as_ps().div_ceil(slot.as_ps()) + 1
}

/// A `Data` wire frame for `link` with a deterministic payload.
fn data(link: u16, seq: u32) -> Vec<u8> {
    let payload = format!("e21-l{link}-{seq}");
    Header {
        kind: PacketKind::Data,
        link,
        seq,
        len: 0, // encode overrides with payload.len()
        budget_us: 0,
    }
    .encode(payload.as_bytes())
}

/// The slot-indexed arrival schedule: guaranteed links at exactly their
/// admitted rate, the best-effort link at `factor`× it. Arrivals stop
/// two periods before the horizon so in-flight datagrams can land.
fn schedule(gap: u64, horizon: u64, factor: f64) -> Vec<(u64, Vec<u8>)> {
    let stop = horizon.saturating_sub(2 * gap);
    let mut out = Vec::new();
    for &(id, _, _) in &GUARANTEED {
        let mut seq = 0u32;
        let mut slot = 0;
        while slot < stop {
            out.push((slot, data(id, seq)));
            seq += 1;
            slot += gap;
        }
    }
    let be_gap = ((gap as f64 / factor) as u64).max(1);
    let mut seq = 0u32;
    let mut slot = 0;
    while slot < stop {
        out.push((slot, data(BEST_EFFORT.0, seq)));
        seq += 1;
        slot += be_gap;
    }
    out
}

/// One soak: build, drive, and return the egress plus final gateway,
/// recording windowed activity into `recorder` when given.
fn soak(
    seed: u64,
    threads: usize,
    horizon: u64,
    factor: f64,
    mut recorder: Option<&mut GatewayTraceRecorder>,
) -> (Gateway, Vec<EgressFrame>) {
    let (mut fabric, mut gateway, report) = build(seed, threads);
    assert!(
        report.rejected.is_empty() && report.admitted.len() == 3,
        "the scenario's three links all fit the fabric: {report:?}"
    );
    let gap = period_slots(&fabric);
    let mut backend = LoopbackBackend::new(schedule(gap, horizon, factor));
    let mut egress = Vec::new();
    let window = 2_048u64.min(horizon);
    let mut done = 0;
    while done < horizon {
        let n = window.min(horizon - done);
        backend.run(&mut gateway, &mut fabric, n, &mut egress);
        done += n;
        if let Some(r) = recorder.as_deref_mut() {
            r.observe(done, gateway.metrics());
        }
    }
    assert_eq!(backend.pending(), 0, "every scheduled arrival was offered");
    (gateway, egress)
}

/// Run E21.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e21", 0);
    let mut notes = vec![];

    let headline = headline_table(opts, &seq, &mut notes);
    let overload = overload_table(opts, &seq, &mut notes);

    for (path, table) in [
        ("results/e21_gateway.csv", &headline),
        ("results/e21_overload.csv", &overload),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![headline, overload],
        notes,
    }
}

/// E21a: the 1.5× overload soak, replayed twice for bit-identity.
fn headline_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let seed = seq.child_seed("headline", 0);
    let horizon = opts.slots(60_000);
    let mut recorder = GatewayTraceRecorder::new(8);
    let (gateway, egress) = soak(seed, opts.threads, horizon, 1.5, Some(&mut recorder));

    // Replay: same scenario, fresh state, single-threaded fabric — the
    // egress wire bytes and every counter must be identical.
    let (gateway2, egress2) = soak(seed, 1, horizon, 1.5, None);
    let wire = |frames: &[EgressFrame]| -> Vec<u8> {
        let mut buf = Vec::new();
        for f in frames {
            f.encode_into(&mut buf);
        }
        buf
    };
    assert_eq!(
        wire(&egress),
        wire(&egress2),
        "loopback egress replays byte-identically across thread counts"
    );
    assert_eq!(gateway.metrics(), gateway2.metrics());

    let mut t = Table::new(
        format!("E21a gateway soak: best-effort at 1.5x over {horizon} slots"),
        &[
            "link",
            "class",
            "offered",
            "injected",
            "shed",
            "delivered",
            "met",
            "missed",
        ],
    );
    let mut rows: Vec<(u16, &str)> = GUARANTEED.iter().map(|&(id, _, _)| (id, "G")).collect();
    rows.push((BEST_EFFORT.0, "BE"));
    for (id, class) in rows {
        let m = gateway.link_metrics(id).expect("admitted link");
        if class == "G" {
            assert_eq!(
                m.deadline_missed.get(),
                0,
                "guaranteed link {id} misses no deadline under overload"
            );
            assert_eq!(m.shed.get(), 0, "guaranteed link {id} is never overdriven");
        } else {
            assert!(
                m.shed.get() > 0,
                "the 1.5x drive exceeds the bucket: sheds must be counted"
            );
            assert_eq!(
                m.ingress_frames.get(),
                m.injected.get() + m.shed.get(),
                "every best-effort datagram is accounted for: injected or shed"
            );
        }
        t.row(&[
            id.to_string(),
            class.to_string(),
            m.ingress_frames.get().to_string(),
            m.injected.get().to_string(),
            m.shed.get().to_string(),
            m.delivered.get().to_string(),
            m.deadline_met.get().to_string(),
            m.deadline_missed.get().to_string(),
        ]);
    }
    assert!(
        egress.iter().all(|f| f.fresh),
        "queuing-port deliveries are never stale-tagged"
    );
    notes.push(format!(
        "headline: {} egress deliveries, replay bit-identical (threads {} vs 1); \
         guaranteed links 0 misses, best-effort shed {}",
        egress.len(),
        opts.threads,
        gateway
            .link_metrics(BEST_EFFORT.0)
            .map(|m| m.shed.get())
            .unwrap_or(0),
    ));
    notes.push(recorder.render());
    t
}

/// E21b: overload factor sweep — the bucket clamps injections, sheds
/// absorb the rest, guaranteed misses stay zero throughout.
fn overload_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let factors = [1.0f64, 1.5, 2.0, 4.0];
    let horizon = opts.slots(24_000);
    let seed = seq.child_seed("overload", 0);
    let runs = parallel_map(factors.to_vec(), opts.threads, |&factor| {
        let (gateway, _) = soak(seed, 1, horizon, factor, None);
        let be = gateway.link_metrics(BEST_EFFORT.0).expect("link").clone();
        let g_missed: u64 = GUARANTEED
            .iter()
            .map(|&(id, _, _)| {
                gateway
                    .link_metrics(id)
                    .expect("link")
                    .deadline_missed
                    .get()
            })
            .sum();
        (factor, be, g_missed)
    });

    let mut t = Table::new(
        format!("E21b overload sweep over {horizon} slots (best-effort link)"),
        &[
            "factor",
            "offered",
            "injected",
            "shed",
            "shed_ratio",
            "G_missed",
        ],
    );
    let mut admitted_rate = None;
    for (factor, be, g_missed) in &runs {
        assert_eq!(*g_missed, 0, "guaranteed misses at factor {factor}");
        let offered = be.ingress_frames.get();
        assert_eq!(offered, be.injected.get() + be.shed.get());
        if *factor > 1.0 {
            assert!(be.shed.get() > 0, "overdrive at {factor}x must shed");
        }
        // The bucket pins injections at the admitted rate: whatever the
        // drive factor, the injected count never grows past the 1x run's
        // (plus the one-token burst).
        match admitted_rate {
            None => admitted_rate = Some(be.injected.get()),
            Some(rate) => assert!(
                be.injected.get() <= rate + 1,
                "injections stay clamped at the admitted rate"
            ),
        }
        t.row(&[
            fmt_f64(*factor, 1),
            offered.to_string(),
            be.injected.get().to_string(),
            be.shed.get().to_string(),
            fmt_f64(be.shed.get() as f64 / offered.max(1) as f64, 3),
            g_missed.to_string(),
        ]);
    }
    notes.push(format!(
        "overload sweep: injections clamped at the admitted rate across {:?}x drives, \
         zero guaranteed misses everywhere",
        factors
    ));
    t
}
