//! E22 — robustness: edge survivability — chaos, link churn, and
//! record/replay on the certified triangle fabric.
//!
//! E21 established that the gateway paces real-wire traffic to the
//! admitted envelope on a healthy fabric. This experiment takes the
//! same promise into hostile territory: the wire misbehaves (loss,
//! duplication, reordering, corruption, a blackout), the fabric loses
//! and regains bridges mid-run, links are added and removed at runtime,
//! and a best-effort neighbour floods at twice its admitted rate — all
//! at once. The paper's guarantee must survive unchanged: **no
//! guaranteed delivery is ever late**. Faults convert traffic into
//! counted losses (sheds, nacks, abandoned in-flight payloads), never
//! into deadline misses. Three parts:
//!
//! 1. **Headline chaos soak** — a calculus-certified cyclic triangle
//!    carries two guaranteed links and a flooded best-effort link under
//!    wire chaos. Mid-run, the victim link's bridge dies (link walks to
//!    `Degraded` on a detour), then its detour dies too (`Revoked`,
//!    ingress answers `Nack`), then both repairs land and the reclaim
//!    pass restores it (`Up`). Time-to-recovery after each repair is
//!    measured in pacing windows and asserted bounded; the untouched
//!    guaranteed link must never leave `Up`.
//! 2. **Runtime link churn** — links admitted with
//!    [`Gateway::add_link`] while traffic flows, driven, then removed
//!    with [`Gateway::remove_link`]; the freed capacity must re-admit
//!    the next round every time, duplicate ids are refused with a typed
//!    error, and the resident guaranteed link never misses.
//! 3. **Record/replay** — the headline arrival trace pushed through the
//!    [`Capture`] codec (bytes → parse → schedule) and replayed under
//!    identical chaos at 1 and N fabric threads: egress wire bytes,
//!    gateway counters, and chaos counters must be bit-identical.
//!
//! CSV artefacts (best-effort, skipped on read-only checkouts):
//! `results/e22_survivability.csv`, `results/e22_churn.csv`.

use super::{ExpOptions, ExperimentResult};
use crate::trace::GatewayTraceRecorder;
use ccr_gateway::prelude::*;
use ccr_multiring::prelude::*;
use ccr_multiring::topology::CycleBound;
use ccr_sim::report::Table;
use ccr_sim::{SeedSequence, TimeDelta};

/// Admitted period of every link in the scenario.
const PERIOD: TimeDelta = TimeDelta::from_ms(2);

/// The victim guaranteed link: crosses bridge 0, detours over 2+1.
const VICTIM: u16 = 1;
/// The control guaranteed link: rides bridge 1, untouched by the faults.
const CONTROL: u16 = 2;
/// The best-effort flood: stays inside ring 0, immune to bridge faults.
const FLOOD: u16 = 3;

/// The cyclic 3-ring triangle with a certified cycle bound — the only
/// topology where killing one bridge leaves a detour and killing two
/// severs a ring pair outright.
fn triangle() -> FabricTopology {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(8);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0)); // bridge 0
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0)); // bridge 1
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1)); // bridge 2
    b.allow_cycles_with(CycleBound::Calculus);
    b.build().expect("triangle with calculus bound builds")
}

fn links() -> Vec<VirtualLink> {
    vec![
        VirtualLink::new(VICTIM, GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3)).period(PERIOD),
        VirtualLink::new(CONTROL, GlobalNodeId::new(1, 4), GlobalNodeId::new(2, 3)).period(PERIOD),
        VirtualLink::new(FLOOD, GlobalNodeId::new(0, 3), GlobalNodeId::new(0, 6))
            .period(PERIOD)
            .class(DeadlineClass::BestEffort),
    ]
}

fn build(seed: u64, threads: usize) -> (Fabric, Gateway, AdmissionReport) {
    let cfg = FabricConfig::uniform(triangle(), 2_048, seed)
        .expect("fabric config")
        .threads(threads);
    let mut fabric = Fabric::new(cfg).expect("fabric builds");
    let gw_cfg = GatewayConfig::new(links()).expect("gateway config");
    let (gateway, report) = Gateway::open(&gw_cfg, &mut fabric);
    (fabric, gateway, report)
}

/// Slots per admitted period, from the fabric's own slot length.
fn period_slots(fabric: &Fabric) -> u64 {
    let slot = fabric.segment_envs()[0].slot;
    PERIOD.as_ps().div_ceil(slot.as_ps()) + 1
}

/// A `Data` wire frame for `link` with a deterministic payload.
fn data(link: u16, seq: u32) -> Vec<u8> {
    let payload = format!("e22-l{link}-{seq}");
    Header {
        kind: PacketKind::Data,
        link,
        seq,
        len: 0, // encode overrides with payload.len()
        budget_us: 0,
    }
    .encode(payload.as_bytes())
}

/// Guaranteed links at their admitted rate, the flood at 2×, stopping
/// two windows early so in-flight datagrams can land.
fn schedule(gap: u64, horizon: u64) -> Vec<(u64, Vec<u8>)> {
    let stop = horizon.saturating_sub(2 * gap);
    let mut out = Vec::new();
    for id in [VICTIM, CONTROL] {
        let mut seq = 0u32;
        let mut slot = 0;
        while slot < stop {
            out.push((slot, data(id, seq)));
            seq += 1;
            slot += gap;
        }
    }
    let mut seq = 0u32;
    let mut slot = 0;
    while slot < stop {
        out.push((slot, data(FLOOD, seq)));
        seq += 1;
        slot += (gap / 2).max(1);
    }
    out
}

/// The wire chaos both the headline soak and the replay runs share.
fn chaos(seed: u64, gap: u64) -> WireChaos {
    WireChaos::new(
        ChaosConfig::uniform(seed, 0.05),
        // One scripted outage early on, before the bridge faults start.
        ChaosScript::new().blackout(2 * gap, gap),
    )
}

/// Run E22.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e22", 0);
    let mut notes = vec![];

    let headline = headline_table(opts, &seq, &mut notes);
    let churn = churn_table(opts, &seq, &mut notes);

    for (path, table) in [
        ("results/e22_survivability.csv", &headline),
        ("results/e22_churn.csv", &churn),
    ] {
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, table.to_csv()))
        {
            Ok(()) => notes.push(format!("wrote {path}")),
            Err(e) => notes.push(format!("{path} export skipped ({e})")),
        }
    }

    ExperimentResult {
        tables: vec![headline, churn],
        notes,
    }
}

/// Outcome of one headline soak, enough to compare runs bit-for-bit.
struct Soak {
    gateway: Gateway,
    egress_wire: Vec<u8>,
    chaos_metrics: ccr_gateway::ChaosMetrics,
    controls: Vec<ControlFrame>,
    /// Victim health sampled at the end of each window.
    health: Vec<LinkHealth>,
}

/// Drive the fault storyboard: kill bridge 0 at `n/4` windows (degrade),
/// kill bridge 2 at `n/2` (revoke), repair bridge 2 at `5n/8` (reclaim),
/// repair bridge 0 at `3n/4` (back on the preferred route).
fn storyboard(n_windows: u64) -> [u64; 4] {
    [
        n_windows / 4,
        n_windows / 2,
        5 * n_windows / 8,
        3 * n_windows / 4,
    ]
}

fn soak(
    seed: u64,
    threads: usize,
    n_windows: u64,
    sched: &[(u64, Vec<u8>)],
    mut recorder: Option<&mut GatewayTraceRecorder>,
) -> Soak {
    let (mut fabric, mut gateway, report) = build(seed, threads);
    assert!(
        report.rejected.is_empty() && report.admitted.len() == 3,
        "the scenario's three links all fit the triangle: {report:?}"
    );
    let gap = period_slots(&fabric);
    let [kill_w, cut_w, heal_w, heal2_w] = storyboard(n_windows);
    let mut backend = LoopbackBackend::new(sched.to_vec()).with_chaos(chaos(seed ^ 0xE22, gap));
    let mut egress = Vec::new();
    let mut health = Vec::new();
    for w in 0..n_windows {
        if w == kill_w {
            assert!(fabric.kill_bridge(0), "bridge 0 was alive");
        }
        if w == cut_w {
            assert!(fabric.kill_bridge(2), "bridge 2 was alive");
        }
        if w == heal_w {
            assert!(fabric.repair_bridge(2), "bridge 2 was dead");
        }
        if w == heal2_w {
            assert!(fabric.repair_bridge(0), "bridge 0 was dead");
        }
        backend.run(&mut gateway, &mut fabric, gap, &mut egress);
        health.push(gateway.link_health(VICTIM).expect("victim is resident"));
        if let Some(r) = recorder.as_deref_mut() {
            r.observe((w + 1) * gap, gateway.metrics());
        }
    }
    assert_eq!(backend.pending(), 0, "every scheduled arrival was offered");
    let mut egress_wire = Vec::new();
    for f in &egress {
        f.encode_into(&mut egress_wire);
    }
    Soak {
        gateway,
        egress_wire,
        chaos_metrics: backend.chaos().expect("chaos interposed").metrics().clone(),
        controls: backend.controls().to_vec(),
        health,
    }
}

/// E22a: the chaos × fault storyboard, plus the capture replay check.
fn headline_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let seed = seq.child_seed("headline", 0);
    let n_windows: u64 = if opts.quick { 16 } else { 48 };
    let [kill_w, cut_w, heal_w, heal2_w] = storyboard(n_windows);

    // The schedule depends only on the pacing gap, which is a property
    // of the (deterministic) fabric config — build a probe to read it.
    let gap = period_slots(&build(seed, 1).0);
    let mut sched = schedule(gap, n_windows * gap);
    // The capture format (and the wire it models) is slot-ordered; the
    // backend applies the same stable sort, so pre-sorting changes nothing.
    sched.sort_by_key(|(slot, _)| *slot);

    let mut recorder = GatewayTraceRecorder::new(8);
    let s = soak(seed, opts.threads, n_windows, &sched, Some(&mut recorder));

    // --- The degradation ladder, window by window -------------------
    assert!(
        s.health[..kill_w as usize]
            .iter()
            .all(|h| *h == LinkHealth::Up),
        "victim healthy before the first fault"
    );
    assert!(
        s.health[kill_w as usize..cut_w as usize]
            .iter()
            .all(|h| matches!(h, LinkHealth::Degraded { .. })),
        "one dead bridge: detoured, not dead — got {:?}",
        &s.health[kill_w as usize..cut_w as usize]
    );
    assert!(
        s.health[cut_w as usize..heal_w as usize]
            .iter()
            .all(|h| matches!(h, LinkHealth::Revoked { .. })),
        "both routes dead: revoked with a typed reason — got {:?}",
        &s.health[cut_w as usize..heal_w as usize]
    );
    // Bounded recovery: back in service within two windows of the repair.
    let recovery = s.health[heal_w as usize..]
        .iter()
        .position(|h| !matches!(h, LinkHealth::Revoked { .. }))
        .expect("the repair brought the victim back") as u64;
    assert!(
        recovery < 2,
        "time-to-recovery {recovery} windows >= bound 2"
    );
    assert_eq!(
        *s.health.last().unwrap(),
        LinkHealth::Up,
        "preferred route restored by the final repair"
    );

    // --- Zero guaranteed misses; losses are counted, not silent -----
    let vm = s.gateway.link_metrics(VICTIM).expect("victim").clone();
    let cm = s.gateway.link_metrics(CONTROL).expect("control").clone();
    let fm = s.gateway.link_metrics(FLOOD).expect("flood").clone();
    for (id, m) in [(VICTIM, &vm), (CONTROL, &cm)] {
        assert_eq!(
            m.deadline_missed.get(),
            0,
            "guaranteed link {id}: faults cause counted losses, never late deliveries"
        );
        assert!(m.delivered.get() > 0, "guaranteed link {id} delivered");
    }
    assert!(vm.reroutes.get() >= 1, "the kill detoured the victim");
    assert!(vm.revocations.get() >= 1, "the cut revoked it");
    assert!(vm.reclaims.get() >= 1, "the repair reclaimed it");
    assert!(vm.nacks.get() >= 1, "revoked ingress answered Nack");
    assert_eq!(
        cm.reroutes.get() + cm.revocations.get(),
        0,
        "control untouched"
    );
    assert!(fm.shed.get() > 0, "the 2x flood was shed at the edge");
    assert!(
        s.gateway.metrics().backoffs_sent.get() >= 1,
        "shedding streaks raised Backoff advisories"
    );
    assert!(
        s.controls.iter().any(|c| c.kind == PacketKind::Shed)
            && s.controls.iter().any(|c| c.kind == PacketKind::Nack)
            && s.controls.iter().any(|c| c.kind == PacketKind::Backoff),
        "all three control kinds reached the wire"
    );
    assert!(
        s.chaos_metrics.dropped.get() + s.chaos_metrics.corrupted.get() > 0
            && s.chaos_metrics.blacked_out.get() > 0,
        "the chaos layer actually interfered"
    );

    // --- Record/replay: capture codec, then 1 vs N threads ----------
    let mut cap = Capture::new();
    for (slot, frame) in &sched {
        cap.record(*slot, frame);
    }
    let bytes = cap.to_bytes();
    let replay_sched = Capture::from_bytes(&bytes)
        .expect("the capture codec round-trips")
        .into_schedule();
    assert_eq!(replay_sched, sched, "capture preserves the arrival trace");
    let r1 = soak(seed, 1, n_windows, &replay_sched, None);
    let rn = soak(seed, opts.threads.max(2), n_windows, &replay_sched, None);
    assert_eq!(r1.egress_wire, s.egress_wire, "replay == original run");
    assert_eq!(
        r1.egress_wire, rn.egress_wire,
        "egress wire bytes, 1 vs N threads"
    );
    assert_eq!(r1.controls, rn.controls, "control frames too");
    assert_eq!(
        r1.gateway.metrics(),
        rn.gateway.metrics(),
        "and the counters"
    );
    assert_eq!(r1.chaos_metrics, rn.chaos_metrics, "and the chaos tallies");

    let mut t = Table::new(
        format!(
            "E22a survivability soak: chaos + bridge storyboard over {} windows",
            n_windows
        ),
        &[
            "link",
            "class",
            "offered",
            "injected",
            "shed",
            "nack",
            "reroute",
            "revoke",
            "reclaim",
            "lost",
            "delivered",
            "missed",
        ],
    );
    for (id, class, m) in [(VICTIM, "G", &vm), (CONTROL, "G", &cm), (FLOOD, "BE", &fm)] {
        t.row(&[
            id.to_string(),
            class.to_string(),
            m.ingress_frames.get().to_string(),
            m.injected.get().to_string(),
            m.shed.get().to_string(),
            m.nacks.get().to_string(),
            m.reroutes.get().to_string(),
            m.revocations.get().to_string(),
            m.reclaims.get().to_string(),
            m.lost_in_flight.get().to_string(),
            m.delivered.get().to_string(),
            m.deadline_missed.get().to_string(),
        ]);
    }
    notes.push(format!(
        "storyboard windows: kill@{kill_w} cut@{cut_w} heal@{heal_w} heal2@{heal2_w}; \
         victim recovery {recovery} window(s) after repair; replay bit-identical \
         (1 vs {} threads) through the capture codec",
        opts.threads.max(2),
    ));
    notes.push(recorder.render());
    t
}

/// E22b: runtime link churn through the incremental admission gate.
fn churn_table(opts: &ExpOptions, seq: &SeedSequence, notes: &mut Vec<String>) -> Table {
    let seed = seq.child_seed("churn", 0);
    let rounds: u32 = if opts.quick { 3 } else { 6 };
    let (mut fabric, mut gateway, report) = build(seed, 1);
    assert_eq!(report.admitted.len(), 3);
    let gap = period_slots(&fabric);

    // Each round occupies 3 windows: the churn link is admitted at the
    // round's start, driven at its admitted rate for two windows, and
    // removed after a drain window. Frames for round k are pre-scheduled
    // into its windows; the resident links run throughout.
    let horizon = (u64::from(rounds) * 3 + 2) * gap;
    let mut sched = schedule(gap, horizon);
    for k in 0..rounds {
        let start = u64::from(k) * 3 * gap;
        for (i, slot) in [start, start + gap].into_iter().enumerate() {
            sched.push((slot, data(100 + k as u16, i as u32)));
        }
    }
    let mut backend = LoopbackBackend::new(sched);
    let mut egress = Vec::new();

    let churn_link = |k: u32| {
        VirtualLink::new(
            100 + k as u16,
            GlobalNodeId::new(2, 4),
            GlobalNodeId::new(0, 5),
        )
        .period(PERIOD)
    };

    let mut t = Table::new(
        format!("E22b runtime link churn: {rounds} add/drive/remove rounds"),
        &["round", "id", "admitted", "injected", "delivered", "missed"],
    );
    for k in 0..rounds {
        let id = 100 + k as u16;
        gateway
            .add_link(churn_link(k), &mut fabric)
            .expect("freed capacity re-admits every round");
        // A duplicate id is refused with a typed error, not admitted twice.
        assert!(matches!(
            gateway.add_link(churn_link(k), &mut fabric),
            Err(LinkChangeError::DuplicateId { .. })
        ));
        backend.run(&mut gateway, &mut fabric, 3 * gap, &mut egress);
        let m = gateway
            .link_metrics(id)
            .expect("resident this round")
            .clone();
        assert_eq!(m.injected.get(), 2, "both scheduled frames injected");
        assert_eq!(m.delivered.get(), 2, "and delivered before removal");
        assert_eq!(m.deadline_missed.get(), 0);
        assert!(gateway.remove_link(id, &mut fabric), "known id removes");
        assert!(gateway.link_metrics(id).is_none(), "state is gone with it");
        t.row(&[
            k.to_string(),
            id.to_string(),
            "yes".to_string(),
            m.injected.get().to_string(),
            m.delivered.get().to_string(),
            m.deadline_missed.get().to_string(),
        ]);
    }
    backend.run(&mut gateway, &mut fabric, 2 * gap, &mut egress);
    assert_eq!(backend.pending(), 0);
    for id in [VICTIM, CONTROL] {
        let m = gateway.link_metrics(id).expect("resident");
        assert_eq!(
            m.deadline_missed.get(),
            0,
            "resident guaranteed link {id} unperturbed by the churn"
        );
        assert!(m.delivered.get() > 0);
    }
    assert!(!gateway.remove_link(999, &mut fabric), "unknown id refused");
    notes.push(format!(
        "churn: {rounds} rounds admitted through the incremental gate, \
         duplicate ids refused, resident guaranteed links 0 misses"
    ));
    t
}
