//! E12 — the motivation numbers: CC-FPR's pessimistic worst-case bound vs
//! CCR-EDF's guarantee, and what each protocol actually sustains.
//!
//! Section 1: CC-FPR "has a rather pessimistic worst-case schedulability
//! bound … very low guaranteed utilisation", attributed to the simple
//! clocking strategy. Part A tabulates both analytic bounds across ring
//! sizes; Part B loads each protocol at three operating points — the
//! CC-FPR bound, half of CCR-EDF's `U_max`, and `0.95·U_max` — and measures
//! miss ratios: CC-FPR behaves at its (tiny) bound and degrades between the
//! bounds; CCR-EDF is clean all the way to `U_max`.

use super::{base_config, ring_sizes, ExpOptions, ExperimentResult};
use crate::runner::{run_with_mac, Workload};
use crate::sweep::parallel_map;
use cc_fpr::{CcFprAnalysis, CcFprMac};
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::arbitration::CcrEdfMac;
use ccr_sim::report::{fmt_f64, fmt_pct, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E12.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let mut ta = Table::new(
        "E12a — guaranteed utilisation bounds (L = 10 m, 2 KiB slots)",
        &[
            "n_nodes",
            "ccfpr_gap_ns",
            "ccr_gap_max_ns",
            "ccfpr_u_bound",
            "ccr_u_max",
            "advantage",
        ],
    );
    for &n in &ring_sizes(opts) {
        let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
        let fpr = CcFprAnalysis::new(&cfg);
        let edf = AnalyticModel::new(&cfg);
        ta.row(&[
            n.to_string(),
            fmt_f64(fpr.constant_gap().as_ns_f64(), 0),
            fmt_f64(cfg.timing().max_handover().as_ns_f64(), 0),
            fmt_f64(fpr.u_guaranteed(), 4),
            fmt_f64(edf.u_max(), 4),
            fmt_f64(fpr.ccr_edf_advantage(&edf), 1),
        ]);
    }

    // ---- Part B: measured behaviour at the bounds -------------------------
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let fpr_a = CcFprAnalysis::new(&cfg);
    let edf_a = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(opts.seed);
    let slots = opts.slots(150_000);
    let points: Vec<(&str, f64)> = vec![
        ("ccfpr bound", fpr_a.u_guaranteed()),
        ("0.5 u_max", 0.5 * edf_a.u_max()),
        ("0.95 u_max", 0.95 * edf_a.u_max()),
    ];
    let cfg_ref = &cfg;
    let rows = parallel_map(points.clone(), opts.threads, |&(label, u)| {
        let mut rng = seq
            .subsequence("e12", (u * 10_000.0) as u64)
            .stream("traffic", 0);
        let set = PeriodicSetBuilder::new(n, n as usize * 2, u, cfg_ref.slot_time())
            .periods(50, 2_000)
            .generate(&mut rng);
        let wl = Workload::raw(set);
        let edf = run_with_mac(cfg_ref.clone(), CcrEdfMac, &wl, slots);
        let fpr = run_with_mac(cfg_ref.clone(), CcFprMac, &wl, slots);
        (label, u, edf.rt_miss_ratio, fpr.rt_miss_ratio)
    });
    let mut tb = Table::new(
        "E12b — measured miss ratios at the analytic operating points (N = 16)",
        &[
            "operating point",
            "utilisation",
            "ccr-edf_miss",
            "cc-fpr_miss",
        ],
    );
    for (label, u, edf_miss, fpr_miss) in &rows {
        tb.row(&[
            label.to_string(),
            fmt_f64(*u, 4),
            fmt_pct(*edf_miss),
            fmt_pct(*fpr_miss),
        ]);
    }
    // Structural claims: CCR-EDF clean at 0.95 u_max; CC-FPR clean at its
    // own bound.
    let at = |l: &str| rows.iter().find(|r| r.0 == l).unwrap();
    assert!(at("0.95 u_max").2 < 0.001, "CCR-EDF missed below U_max");
    assert!(
        at("ccfpr bound").3 < 0.001,
        "CC-FPR missed at its own guaranteed bound"
    );

    let notes = vec![format!(
        "at N = 16 the CCR-EDF guarantee is {:.1}x CC-FPR's pessimistic bound \
         ({:.4} vs {:.4}) — the gap the paper attributes to the simple clocking strategy",
        fpr_a.ccr_edf_advantage(&edf_a),
        edf_a.u_max(),
        fpr_a.u_guaranteed()
    )];

    ExperimentResult {
        tables: vec![ta, tb],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bounds() {
        let r = run(&ExpOptions::quick(12));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[1].n_rows(), 3);
    }
}
