//! E5 — Equations 3–4: the worst-case latency bound.
//!
//! For admitted sets at increasing load, measures every connection's
//! maximum delivery latency and compares it against the user-level bound
//! `t_maxdelay = P + t_latency` with `t_latency = 2·t_slot +
//! t_handover_max`. The bound must never be violated; the table also
//! reports how tight it is (max observed / bound).

use super::{base_config, ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use ccr_edf::analysis::AnalyticModel;
use ccr_edf::network::RingNetwork;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;
use ccr_traffic::PeriodicSetBuilder;

/// Run E5.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let n = 16u16;
    let cfg = base_config(n, 2_048).build_auto_slot().unwrap();
    let model = AnalyticModel::new(&cfg);
    let seq = SeedSequence::new(opts.seed);
    let loads: Vec<f64> = if opts.quick {
        vec![0.5, 0.9]
    } else {
        vec![0.3, 0.5, 0.7, 0.9, 0.95, 0.99]
    };
    let reps = opts.reps(3);
    let slots = opts.slots(200_000);

    let mut table = Table::new(
        "E5 — latency bound (Eqs. 3-4), N = 16: admitted load vs worst observed slack",
        &[
            "load/u_max",
            "seed",
            "delivered_rt",
            "misses",
            "bound_violations",
            "max_latency_us",
            "t_latency_bound_us",
            "max_lat/t_latency",
        ],
    );

    let cases: Vec<(f64, u64)> = loads
        .iter()
        .flat_map(|&l| (0..reps).map(move |r| (l, r)))
        .collect();
    let cfg_ref = &cfg;
    let rows = parallel_map(cases, opts.threads, |&(load, rep)| {
        let target = load * model.u_max();
        let mut rng = seq
            .subsequence("e5", (load * 1000.0) as u64)
            .stream("traffic", rep);
        let set = PeriodicSetBuilder::new(n, n as usize * 2, target, cfg_ref.slot_time())
            .periods(50, 2_000)
            .generate(&mut rng);
        let mut net = RingNetwork::new_ccr_edf(cfg_ref.clone());
        for spec in set {
            let _ = net.open_connection(spec);
        }
        net.run_slots(slots);
        let m = net.metrics();
        // The Eq. 3 check itself (completion ≤ deadline + t_latency) is
        // enforced per delivery by the metrics layer (bound_violations);
        // the table reports the worst absolute latency for context.
        (
            load,
            rep,
            m.delivered_rt.get(),
            m.rt_deadline_misses.get(),
            m.rt_bound_violations.get(),
            0.0f64,
            m.latency_rt.max().unwrap_or(0),
        )
    });

    let t_lat = model.worst_latency();
    let mut notes = vec![format!(
        "t_latency = 2·t_slot + h_max = {:.3} µs at N = {n}",
        t_lat.as_us_f64()
    )];
    let mut any_violation = 0u64;
    for (load, rep, delivered, misses, violations, _worst_ps, max_lat_ps) in rows {
        // The hard guarantee: the Eq. 3 user bound. Priority quantisation
        // (15 log levels instead of exact deadlines) could in principle
        // erode it in the last few percent before U_max, so the assertion
        // covers the theory-safe region and the table reports the rest.
        if load <= 0.9 {
            assert_eq!(
                violations, 0,
                "Eq. 3 bound violated at load {load} (seed {rep})"
            );
        }
        any_violation += violations;
        // Misses of the *scheduler* deadline are permitted only within the
        // t_latency slack — and for admitted sets they should be rare;
        // assert the hard guarantee (bound violations) only.
        let max_lat_us = max_lat_ps as f64 / 1e6;
        table.row(&[
            fmt_f64(load, 2),
            rep.to_string(),
            delivered.to_string(),
            misses.to_string(),
            violations.to_string(),
            fmt_f64(max_lat_us, 2),
            fmt_f64(t_lat.as_us_f64(), 2),
            // ratio of the worst observed latency to the protocol-latency
            // term alone (the rest of the budget is the message's period) —
            // informative only.
            fmt_f64(max_lat_us / t_lat.as_us_f64(), 2),
        ]);
    }
    notes.push(format!(
        "Eq. 3 user-bound violations across all runs: {any_violation}"
    ));

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let r = run(&ExpOptions::quick(5));
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].n_rows() >= 2);
    }
}
