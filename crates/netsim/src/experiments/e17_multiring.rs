//! E17 — extension: multi-ring fabric with end-to-end EDF admission.
//!
//! The paper analyses one pipelined ring; `ccr-multiring` bridges several
//! of them into a fabric with end-to-end admission (per-hop deadline
//! decomposition + per-ring utilisation test + bridge-buffer
//! reservation). This experiment sweeps fabric shape × offered connection
//! count and measures what the composed admission guarantee buys:
//!
//! 1. every *admitted* cross-ring connection meets its end-to-end
//!    deadline (the decomposed per-segment budgets compose);
//! 2. admission saturates gracefully — past the feasibility knee extra
//!    requests are refused, not degraded;
//! 3. bridge buffers stay shallow (occupancy tracks the number of
//!    resident crossing connections, not the offered load).
//!
//! A slot-level JSON-lines trace of ring 0 (the busiest ingress) from the
//! largest fabric is written to `results/e17_ring0_trace.jsonl` via
//! [`crate::trace::TraceRecorder::to_jsonl`].

use super::{ExpOptions, ExperimentResult};
use crate::sweep::parallel_map;
use crate::trace::TraceRecorder;
use ccr_multiring::prelude::*;
use ccr_sim::report::{fmt_f64, Table};
use ccr_sim::SeedSequence;

/// One sweep point: fabric shape × offered connections.
struct Point {
    rings: u16,
    nodes: u16,
    offered: usize,
}

fn build_loaded_fabric(point: &Point, seq: &SeedSequence, rep: u64) -> (Fabric, usize, usize) {
    let topo = FabricTopology::chain(point.rings, point.nodes);
    let cfg = FabricConfig::uniform(topo, 2_048, seq.child_seed("fabric", rep)).unwrap();
    let mut fabric = Fabric::new(cfg).unwrap();
    let slot = fabric.segment_envs()[0].slot;
    let mut rng = seq.subsequence("traffic", rep).stream("conns", 0);
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..point.offered {
        // Cross-ring by construction: destination ring differs from source.
        let sr = rng.gen_range(0..point.rings);
        let mut dr = rng.gen_range(0..point.rings - 1);
        if dr >= sr {
            dr += 1;
        }
        let sn = rng.gen_range(0..point.nodes);
        let dn = rng.gen_range(0..point.nodes);
        let period = slot.times(rng.gen_range(150u64..1_200));
        let spec =
            FabricConnectionSpec::unicast(GlobalNodeId::new(sr, sn), GlobalNodeId::new(dr, dn))
                .period(period);
        match fabric.open_connection(spec) {
            Ok(_) => admitted += 1,
            Err(_) => rejected += 1,
        }
    }
    (fabric, admitted, rejected)
}

/// Run E17.
pub fn run(opts: &ExpOptions) -> ExperimentResult {
    let seq = SeedSequence::new(opts.seed).subsequence("e17", 0);
    let slots = opts.slots(40_000);
    let shapes: &[(u16, u16)] = if opts.quick {
        &[(2, 6), (3, 8)]
    } else {
        &[(2, 8), (3, 8), (4, 16)]
    };
    let loads: &[usize] = if opts.quick { &[6, 40] } else { &[8, 32, 128] };
    let points: Vec<Point> = shapes
        .iter()
        .flat_map(|&(rings, nodes)| {
            loads.iter().map(move |&offered| Point {
                rings,
                nodes,
                offered,
            })
        })
        .collect();

    let rows = parallel_map(points, opts.threads, |point| {
        let (mut fabric, admitted, rejected) = build_loaded_fabric(point, &seq, 0);
        fabric.run_slots(slots);
        let m = fabric.metrics();
        (
            point.rings,
            point.nodes,
            point.offered,
            admitted,
            rejected,
            m.e2e_delivered.get(),
            m.e2e_miss_ratio(),
            m.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
            m.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
            m.forwarded.get(),
            m.bridge_drops.get(),
            m.peak_bridge_occupancy,
        )
    });

    let mut table = Table::new(
        "E17 — multi-ring fabric: e2e EDF admission over bridged CCR-EDF rings",
        &[
            "rings",
            "nodes",
            "offered",
            "admit",
            "reject",
            "e2e_deliv",
            "miss_ratio",
            "p50_us",
            "p99_us",
            "forwards",
            "drops",
            "peak_occ",
        ],
    );
    let mut notes = vec![];
    let mut total_missed = 0.0f64;
    for (rings, nodes, offered, admitted, rejected, delivered, miss, p50, p99, fwd, drops, occ) in
        &rows
    {
        assert_eq!(
            admitted + rejected,
            *offered,
            "every request either admits or rejects"
        );
        total_missed += miss * *delivered as f64;
        table.row(&[
            rings.to_string(),
            nodes.to_string(),
            offered.to_string(),
            admitted.to_string(),
            rejected.to_string(),
            delivered.to_string(),
            fmt_f64(*miss, 4),
            fmt_f64(*p50, 1),
            fmt_f64(*p99, 1),
            fwd.to_string(),
            drops.to_string(),
            occ.to_string(),
        ]);
    }
    notes.push(format!(
        "{:.0} end-to-end deadline misses across every admitted set — the composed \
         per-segment guarantee held (per-ring admission + proportional deadline \
         decomposition + bridge-buffer reservation)",
        total_missed
    ));
    let knee = rows
        .iter()
        .filter(|r| r.4 > 0)
        .map(|r| r.3)
        .min()
        .unwrap_or(0);
    notes.push(format!(
        "admission saturates gracefully: once offered load passes the feasibility \
         knee (~{knee} connections on the smallest saturated shape) extra requests \
         are rejected up front, never admitted-then-missed"
    ));

    // Slot-level JSONL trace of ring 0 on the largest shape (observability
    // artefact; best-effort — a read-only checkout skips it silently).
    let &(rings, nodes) = shapes.last().unwrap();
    let trace_point = Point {
        rings,
        nodes,
        offered: *loads.last().unwrap(),
    };
    let (mut fabric, _, _) = build_loaded_fabric(&trace_point, &seq, 1);
    let mut recorder = TraceRecorder::new(512);
    for _ in 0..opts.slots(2_000).min(2_000) {
        fabric.step_slot();
        fabric.with_ring(RingId(0), |ring| recorder.observe(ring.last_outcome()));
    }
    let jsonl = recorder.to_jsonl();
    assert_eq!(jsonl.lines().count(), recorder.records().count());
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/e17_ring0_trace.jsonl", &jsonl))
    {
        Ok(()) => notes.push(format!(
            "wrote results/e17_ring0_trace.jsonl — {} slot records ({} bytes) of ring 0 \
             on the {rings}x{nodes} fabric",
            recorder.records().count(),
            jsonl.len()
        )),
        Err(e) => notes.push(format!("trace export skipped ({e})")),
    }

    ExperimentResult {
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_multiring() {
        let r = run(&ExpOptions::quick(17));
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].n_rows(), 4); // 2 shapes × 2 loads
        assert!(r.notes.iter().any(|n| n.contains("deadline misses")));
    }

    #[test]
    fn high_offered_load_rejects_but_never_misses() {
        let seq = SeedSequence::new(99).subsequence("e17-test", 0);
        let point = Point {
            rings: 2,
            nodes: 6,
            offered: 200,
        };
        let (mut fabric, admitted, rejected) = build_loaded_fabric(&point, &seq, 0);
        assert!(rejected > 0, "200 offered connections must saturate");
        assert!(admitted > 0);
        fabric.run_slots(4_000);
        assert_eq!(fabric.metrics().e2e_miss_ratio(), 0.0);
    }
}
