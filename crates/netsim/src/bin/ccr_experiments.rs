//! `ccr-experiments` — regenerate every table/figure of the reproduction.
//!
//! ```text
//! ccr-experiments list
//! ccr-experiments all   [--quick] [--seed S] [--csv DIR] [--threads T]
//! ccr-experiments e19   [--quick] [--seed S] [--csv DIR]
//! ccr-experiments model [--nodes N] [--slot-bytes B] [--link-m L]
//! ```
//!
//! `model` prints the closed-form quantities of Equations 1-6 for a
//! configuration without running any simulation.

use ccr_netsim::experiments::{by_id, registry, ExpOptions, ExperimentResult};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: ccr-experiments <list|all|model|e1..e23> [--quick] [--seed S] [--csv DIR] \
         [--threads T] [--nodes N] [--slot-bytes B] [--link-m L]"
    );
    std::process::exit(2);
}

fn print_model(nodes: u16, slot_bytes: u32, link_m: f64) {
    use ccr_edf::analysis::AnalyticModel;
    use ccr_edf::config::NetworkConfig;
    let cfg = match NetworkConfig::builder(nodes)
        .slot_bytes(slot_bytes)
        .link_length_m(link_m)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("infeasible configuration: {e}");
            let c = NetworkConfig::builder(nodes)
                .slot_bytes(slot_bytes)
                .link_length_m(link_m)
                .build_auto_slot()
                .expect("auto slot");
            eprintln!(
                "using the minimum feasible slot instead: {} B",
                c.slot_bytes
            );
            c
        }
    };
    let a = AnalyticModel::new(&cfg);
    println!(
        "configuration: N = {}, slot = {} B, links = {link_m} m",
        cfg.n_nodes, cfg.slot_bytes
    );
    println!("t_slot               : {}", cfg.slot_time());
    println!("t_node               : {}", cfg.t_node());
    println!("collection (Eq. 2)   : {}", cfg.collection_time());
    println!("distribution         : {}", cfg.distribution_time());
    println!("min slot bytes       : {}", cfg.min_feasible_slot_bytes());
    println!("t_handover max (Eq.1): {}", cfg.timing().max_handover());
    println!("t_latency (Eq. 4)    : {}", a.worst_latency());
    println!("U_max (Eq. 6)        : {:.4}", a.u_max());
    println!(
        "data bandwidth       : {:.2} Gbit/s",
        cfg.phys.data_bandwidth_bps() / 1e9
    );
}

struct Args {
    command: String,
    opts: ExpOptions,
    csv_dir: Option<PathBuf>,
    nodes: u16,
    slot_bytes: u32,
    link_m: f64,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut opts = ExpOptions::default();
    let mut csv_dir = None;
    let mut nodes = 16u16;
    let mut slot_bytes = 2048u32;
    let mut link_m = 10.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--slot-bytes" => {
                slot_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--link-m" => {
                link_m = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--csv" => {
                let v = args.next().unwrap_or_else(|| usage());
                csv_dir = Some(PathBuf::from(v));
            }
            _ => usage(),
        }
    }
    Args {
        command,
        opts,
        csv_dir,
        nodes,
        slot_bytes,
        link_m,
    }
}

fn emit(id: &str, title: &str, result: &ExperimentResult, csv_dir: &Option<PathBuf>) {
    println!("=== {id}: {title} ===\n");
    for t in &result.tables {
        println!("{}", t.render());
    }
    for n in &result.notes {
        println!("note: {n}");
    }
    println!();
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        for (i, t) in result.tables.iter().enumerate() {
            let path = dir.join(format!("{id}_{i}.csv"));
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "list" => {
            for (id, title, _) in registry() {
                println!("{id:<4} {title}");
            }
        }
        "model" => print_model(args.nodes, args.slot_bytes, args.link_m),
        "all" => {
            let total = Instant::now();
            for (id, title, run) in registry() {
                let t0 = Instant::now();
                let result = run(&args.opts);
                emit(id, title, &result, &args.csv_dir);
                eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
            }
            eprintln!("all experiments in {:.1}s", total.elapsed().as_secs_f64());
        }
        id => match by_id(id) {
            Some((id, title, run)) => {
                let t0 = Instant::now();
                let result = run(&args.opts);
                emit(id, title, &result, &args.csv_dir);
                eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
            }
            None => usage(),
        },
    }
}
