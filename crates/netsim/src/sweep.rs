//! Parallel parameter sweeps.
//!
//! Experiments sweep a parameter (load, ring size, slot length, …) over
//! many settings × seeds; the runs are independent, so they fan out over
//! `std::thread::scope` workers. Results return in input order, so tables
//! stay deterministic regardless of scheduling. A worker panic is
//! propagated to the caller with its original payload once the remaining
//! workers have drained.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over `inputs` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// Work distribution is a shared atomic cursor: each worker repeatedly
/// claims the next single index. If any worker panics, the panic payload
/// is re-raised on the calling thread via [`std::panic::resume_unwind`],
/// exactly as if `f` had panicked inline.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_impl(inputs, threads, f, 1)
}

/// Like [`parallel_map`], but workers claim contiguous chunks of
/// `chunk` indices per steal instead of single items.
///
/// Fewer cursor contentions per item; the trade-off is coarser load
/// balancing at the tail. `benches/microbench.rs` compares the two on the
/// sweep workload — for slot-engine-sized work items the difference is in
/// the noise, so the per-item cursor stays the default.
pub fn parallel_map_chunked<I, O, F>(inputs: Vec<I>, threads: usize, chunk: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_impl(inputs, threads, f, chunk.max(1))
}

fn parallel_map_impl<I, O, F>(inputs: Vec<I>, threads: usize, f: F, chunk: usize) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let n = inputs.len();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let f_ref = &f;
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, O)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, input) in (start..end).zip(&inputs_ref[start..end]) {
                        local.push((i, f_ref(input)));
                    }
                }
                local
            }));
        }
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, o) in local {
                        out[i] = Some(o);
                    }
                }
                // Keep the first payload; let the remaining workers finish
                // (they stop claiming work once the cursor runs out).
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    out.into_iter().map(|o| o.expect("all filled")).collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn heavier_closure_runs_in_parallel_correctly() {
        let out = parallel_map((0..32u64).collect(), 4, |&x| {
            // some busywork with a data dependency
            (0..1_000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        let expect: Vec<u64> = (0..32u64)
            .map(|x| (0..1_000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i)))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunked_matches_per_item() {
        let inputs: Vec<u64> = (0..101).collect();
        for chunk in [1, 3, 7, 64, 1000] {
            let out = parallel_map_chunked(inputs.clone(), 4, chunk, |&x| x * 3);
            let expect: Vec<u64> = inputs.iter().map(|&x| x * 3).collect();
            assert_eq!(out, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..64u64).collect(), 4, |&x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("must propagate the worker panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("original String payload");
        assert_eq!(msg, "boom at 33");
    }

    #[test]
    fn panic_in_chunked_variant_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_chunked((0..64u64).collect(), 4, 8, |&x| {
                if x == 60 {
                    panic!("late panic");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
