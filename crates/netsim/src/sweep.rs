//! Parallel parameter sweeps.
//!
//! Experiments sweep a parameter (load, ring size, slot length, …) over
//! many settings × seeds; the runs are independent, so they fan out over
//! crossbeam scoped threads. Results return in input order, so tables stay
//! deterministic regardless of scheduling.

/// Run `f` over `inputs` on up to `threads` worker threads, preserving
/// input order in the output.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let n = inputs.len();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let f_ref = &f;
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            let next = &next;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, O)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f_ref(&inputs_ref[i])));
                }
                local
            }));
        }
        for h in handles {
            for (i, o) in h.join().expect("sweep worker panicked") {
                out[i] = Some(o);
            }
        }
    })
    .expect("sweep scope");
    out.into_iter().map(|o| o.expect("all filled")).collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), 8, |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn heavier_closure_runs_in_parallel_correctly() {
        let out = parallel_map((0..32u64).collect(), 4, |&x| {
            // some busywork with a data dependency
            (0..1_000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        let expect: Vec<u64> = (0..32u64)
            .map(|x| (0..1_000).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i)))
            .collect();
        assert_eq!(out, expect);
    }
}
