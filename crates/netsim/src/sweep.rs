//! Parallel parameter sweeps.
//!
//! Experiments sweep a parameter (load, ring size, slot length, …) over
//! many settings × seeds; the runs are independent, so they fan out over
//! `std::thread::scope` workers. Results return in input order, so tables
//! stay deterministic regardless of scheduling.
//!
//! The implementation lives in [`ccr_sim::parallel`] so the multi-ring
//! fabric engine (`ccr-multiring`) shares the exact same machinery and
//! determinism contract; this module re-exports it for the experiment
//! harness and its historical import paths.

pub use ccr_sim::parallel::{default_threads, parallel_map, parallel_map_chunked};

#[cfg(test)]
mod tests {
    use super::*;

    // The full behavioural test suite (order preservation, panic
    // propagation, the chunked-vs-per-item differential property) lives
    // next to the implementation in `ccr_sim::parallel`; here we only pin
    // the re-exported paths the experiments compile against.
    #[test]
    fn reexported_paths_work() {
        let out = parallel_map(vec![1u64, 2, 3], 2, |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        let out = parallel_map_chunked(vec![1u64, 2, 3], 2, 2, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert!(default_threads() >= 1);
    }
}
