//! Simulation runners: drive a network with a workload and summarise.

use ccr_edf::config::NetworkConfig;
use ccr_edf::connection::{ConnectionId, ConnectionSpec};
use ccr_edf::mac::MacProtocol;
use ccr_edf::message::Message;
use ccr_edf::metrics::Metrics;
use ccr_edf::network::RingNetwork;
use ccr_edf::{SimTime, TimeDelta};

/// Synthetic connection ids used when periodic traffic bypasses admission
/// (overload experiments); kept far from real ids to avoid collisions.
pub const RAW_CONN_BASE: u64 = 1_000_000;

/// A complete workload for one run.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Connections opened through admission control; rejected ones are
    /// counted in the summary and generate no traffic.
    pub connections: Vec<ConnectionSpec>,
    /// Periodic connections injected *without* admission (their releases
    /// are pre-expanded over the horizon) — used to drive the network past
    /// `U_max` in overload experiments.
    pub raw_connections: Vec<ConnectionSpec>,
    /// One-shot messages.
    pub messages: Vec<(SimTime, Message)>,
}

impl Workload {
    /// A workload of admitted connections only.
    pub fn admitted(connections: Vec<ConnectionSpec>) -> Self {
        Workload {
            connections,
            ..Default::default()
        }
    }

    /// A workload of admission-bypassing periodic connections only.
    pub fn raw(raw_connections: Vec<ConnectionSpec>) -> Self {
        Workload {
            raw_connections,
            ..Default::default()
        }
    }
}

/// Expand a periodic spec into concrete real-time messages over
/// `[0, horizon)`, tagged with synthetic connection id `RAW_CONN_BASE +
/// index` so per-connection statistics still work.
pub fn expand_periodic(
    spec: &ConnectionSpec,
    index: u64,
    horizon: TimeDelta,
) -> Vec<(SimTime, Message)> {
    let mut out = Vec::new();
    let mut t = SimTime::ZERO + spec.phase;
    let end = SimTime::ZERO + horizon;
    let conn = ConnectionId(RAW_CONN_BASE + index);
    while t < end {
        let deadline = t + spec.period;
        out.push((
            t,
            Message::real_time(
                spec.src,
                spec.dest.clone(),
                spec.size_slots,
                t,
                deadline,
                conn,
            ),
        ));
        t += spec.period;
    }
    out
}

/// The serialisable result of one run — one row of an experiment table.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// MAC protocol name.
    pub protocol: String,
    /// Ring size.
    pub n_nodes: u16,
    /// Slots executed.
    pub slots: u64,
    /// Simulated wall time, seconds.
    pub sim_seconds: f64,
    /// Messages delivered (all classes).
    pub delivered: u64,
    /// Real-time messages delivered.
    pub delivered_rt: u64,
    /// RT deadline misses.
    pub rt_misses: u64,
    /// RT deadline-miss ratio.
    pub rt_miss_ratio: f64,
    /// RT user-bound (Eq. 3/4) violations.
    pub rt_bound_violations: u64,
    /// Best-effort deadline misses.
    pub be_misses: u64,
    /// Mean RT latency, µs.
    pub rt_latency_mean_us: f64,
    /// 99th-percentile RT latency, µs.
    pub rt_latency_p99_us: f64,
    /// Maximum RT latency, µs.
    pub rt_latency_max_us: f64,
    /// Mean hand-over gap, ns.
    pub gap_mean_ns: f64,
    /// Maximum hand-over gap, ns.
    pub gap_max_ns: f64,
    /// Mean grants per slot (spatial-reuse factor).
    pub reuse_factor: f64,
    /// Fraction of slots with at least one grant.
    pub busy_fraction: f64,
    /// Fraction of wall time inside slots.
    pub slot_time_fraction: f64,
    /// Delivered payload, Gbit/s.
    pub goodput_gbps: f64,
    /// Utilisation admitted by admission control.
    pub admitted_utilisation: f64,
    /// Connections rejected by admission control.
    pub rejected_connections: u64,
    /// Messages still queued at the end (backlog).
    pub backlog: u64,
    /// Simulated slots per wall-clock second (engine speed, not a network
    /// property; 0.0 when nothing was timed).
    pub slots_per_sec: f64,
}

impl RunSummary {
    /// Extract a summary from a finished network.
    pub fn from_network<P: MacProtocol>(
        net: &RingNetwork<P>,
        protocol: &str,
        rejected: u64,
    ) -> Self {
        let m: &Metrics = net.metrics();
        let sim_seconds = m.ended_at.saturating_since(m.started_at).as_secs_f64();
        RunSummary {
            protocol: protocol.to_string(),
            n_nodes: net.config().n_nodes,
            slots: m.slots.get(),
            sim_seconds,
            delivered: m.delivered.get(),
            delivered_rt: m.delivered_rt.get(),
            rt_misses: m.rt_deadline_misses.get(),
            rt_miss_ratio: m.rt_miss_ratio(),
            rt_bound_violations: m.rt_bound_violations.get(),
            be_misses: m.be_deadline_misses.get(),
            rt_latency_mean_us: m.latency_rt.mean().unwrap_or(f64::NAN) / 1e6,
            rt_latency_p99_us: m
                .latency_rt
                .quantile(0.99)
                .map_or(f64::NAN, |v| v as f64 / 1e6),
            rt_latency_max_us: m.latency_rt.max().map_or(f64::NAN, |v| v as f64 / 1e6),
            gap_mean_ns: m.handover_gap.mean().unwrap_or(f64::NAN) / 1e3,
            gap_max_ns: m.handover_gap.max().map_or(f64::NAN, |v| v as f64 / 1e3),
            reuse_factor: m.reuse_factor(),
            busy_fraction: m.busy_fraction(),
            slot_time_fraction: m.slot_time_fraction(net.config().slot_time()),
            goodput_gbps: m.goodput_bps() / 1e9,
            admitted_utilisation: net.admission().admitted_utilisation(),
            rejected_connections: rejected,
            backlog: net.queued_messages() as u64,
            slots_per_sec: net.throughput().slots_per_sec().unwrap_or(0.0),
        }
    }
}

/// Build a network with MAC `mac`, load `workload`, run `slots` slots and
/// summarise.
pub fn run_with_mac<P: MacProtocol>(
    cfg: NetworkConfig,
    mac: P,
    workload: &Workload,
    slots: u64,
) -> RunSummary {
    let slot = cfg.slot_time();
    let horizon = slot * slots;
    let mut net = RingNetwork::with_mac(cfg, mac);
    let name = net.mac_name().to_string();

    let mut rejected = 0u64;
    for spec in &workload.connections {
        if net.open_connection(spec.clone()).is_err() {
            rejected += 1;
        }
    }
    for (i, spec) in workload.raw_connections.iter().enumerate() {
        for (at, msg) in expand_periodic(spec, i as u64, horizon) {
            net.submit_message(at, msg);
        }
    }
    for (at, msg) in &workload.messages {
        net.submit_message(*at, msg.clone());
    }
    net.run_slots(slots);
    RunSummary::from_network(&net, &name, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_edf::arbitration::CcrEdfMac;
    use ccr_edf::NodeId;

    fn cfg(n: u16) -> NetworkConfig {
        NetworkConfig::builder(n)
            .slot_bytes(1024)
            .build_auto_slot()
            .unwrap()
    }

    #[test]
    fn expand_periodic_generates_expected_count() {
        let spec = ConnectionSpec::unicast(NodeId(0), NodeId(1))
            .period(TimeDelta::from_us(100))
            .size_slots(2);
        let msgs = expand_periodic(&spec, 3, TimeDelta::from_ms(1));
        assert_eq!(msgs.len(), 10);
        for (t, m) in &msgs {
            assert_eq!(m.released, *t);
            assert_eq!(m.deadline, *t + TimeDelta::from_us(100));
            assert_eq!(m.connection, Some(ConnectionId(RAW_CONN_BASE + 3)));
            assert_eq!(m.size_slots, 2);
        }
    }

    #[test]
    fn expand_periodic_respects_phase() {
        let spec = ConnectionSpec::unicast(NodeId(0), NodeId(1))
            .period(TimeDelta::from_us(100))
            .phase(TimeDelta::from_us(30));
        let msgs = expand_periodic(&spec, 0, TimeDelta::from_us(250));
        let times: Vec<u64> = msgs.iter().map(|(t, _)| t.as_ps() / 1_000_000).collect();
        assert_eq!(times, vec![30, 130, 230]);
    }

    #[test]
    fn run_with_mac_counts_rejections() {
        let c = cfg(4);
        let slot = c.slot_time();
        // Three hogs of u = 0.5 each; u_max ≈ 0.94 at N = 4, so only the
        // first fits and the other two are rejected.
        let hog = ConnectionSpec::unicast(NodeId(0), NodeId(1))
            .period(TimeDelta::from_ps(slot.as_ps() * 2))
            .size_slots(1); // u = 0.5
        let s = run_with_mac(
            c,
            CcrEdfMac,
            &Workload::admitted(vec![hog.clone(), hog.clone(), hog]),
            2_000,
        );
        assert_eq!(s.rejected_connections, 2);
        assert!(s.delivered_rt > 0);
        assert_eq!(s.protocol, "ccr-edf");
        assert!(s.sim_seconds > 0.0);
    }

    #[test]
    fn raw_workload_can_exceed_umax() {
        let c = cfg(4);
        let slot = c.slot_time();
        // Aggregate utilisation 1.5 — impossible; misses must appear.
        let mk = |src: u16, dst: u16| {
            ConnectionSpec::unicast(NodeId(src), NodeId(dst))
                .period(TimeDelta::from_ps(slot.as_ps() * 2))
                .size_slots(1)
        };
        let s = run_with_mac(
            c,
            CcrEdfMac,
            &Workload::raw(vec![mk(0, 2), mk(1, 3), mk(2, 0)]),
            3_000,
        );
        assert!(s.delivered_rt > 0);
        // With spatial reuse some of this overload actually fits, but the
        // backlog or misses must reveal the overload somewhere.
        assert!(
            s.rt_misses > 0 || s.backlog > 0,
            "overload invisible: {s:?}"
        );
    }
}
