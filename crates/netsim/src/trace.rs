//! Slot-level trace recording — an observability aid for debugging
//! protocol behaviour and for producing Figure 6/7-style timelines.
//!
//! Feed every [`SlotOutcome`] to a [`TraceRecorder`]; it keeps a bounded
//! ring of per-slot records and renders them as a timeline table or CSV.

use ccr_edf::network::SlotOutcome;
use ccr_edf::{NodeId, SimTime, TimeDelta};
use ccr_gateway::GatewayMetrics;
use ccr_sim::report::Table;
use std::collections::VecDeque;

/// One slot's condensed trace record.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Slot start.
    pub start: SimTime,
    /// Master (clock generator) of the slot.
    pub master: NodeId,
    /// Transmissions in the data phase.
    pub grants: usize,
    /// Messages completed this slot.
    pub deliveries: usize,
    /// Next master (hand-over target).
    pub next_master: NodeId,
    /// Hand-over hop distance.
    pub handover_hops: u16,
    /// Hand-over gap.
    pub gap: TimeDelta,
    /// Slot was clock-recovery dead time.
    pub recovering: bool,
    /// The slot's token (distribution packet) was lost or corrupted —
    /// recovery starts after this slot.
    pub token_lost: bool,
    /// Collection entries dropped by the control-channel CRC this slot.
    pub corrupt_entries: u16,
    /// Unreliable-class messages lost to data-phase errors this slot.
    pub unreliable_lost: u32,
    /// A barrier completed.
    pub barrier: bool,
    /// A reduction completed.
    pub reduce: bool,
}

impl SlotRecord {
    /// Condense a slot outcome.
    pub fn from_outcome(out: &SlotOutcome) -> Self {
        SlotRecord {
            slot: out.slot_index,
            start: out.slot_start,
            master: out.master,
            grants: out.grant_count,
            deliveries: out.deliveries.len(),
            next_master: out.next_master,
            handover_hops: out.handover_hops,
            gap: out.gap,
            recovering: out.recovering,
            token_lost: out.token_lost,
            corrupt_entries: out.corrupt_entries,
            unreliable_lost: out.unreliable_lost,
            barrier: out.barrier_completed,
            reduce: out.reduce_result.is_some(),
        }
    }
}

/// A bounded recorder of recent slot records.
#[derive(Debug)]
pub struct TraceRecorder {
    records: VecDeque<SlotRecord>,
    capacity: usize,
    observed: u64,
}

impl TraceRecorder {
    /// Keep at most `capacity` most recent slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace");
        TraceRecorder {
            records: VecDeque::with_capacity(capacity),
            capacity,
            observed: 0,
        }
    }

    /// Record one slot.
    pub fn observe(&mut self, out: &SlotOutcome) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(SlotRecord::from_outcome(out));
        self.observed += 1;
    }

    /// Total slots observed (including evicted ones).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.records.iter()
    }

    /// Slots in which the master moved.
    pub fn handovers(&self) -> impl Iterator<Item = &SlotRecord> {
        self.records.iter().filter(|r| r.handover_hops > 0)
    }

    /// Render the retained trace as [JSON Lines](https://jsonlines.org/):
    /// one self-describing JSON object per slot, oldest first, `\n`
    /// separated with a trailing newline. Hand-rolled (the workspace
    /// carries no serde by default); every field is a number or boolean so
    /// no string escaping is needed. Times are picoseconds.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 160);
        for r in &self.records {
            out.push_str(&format!(
                concat!(
                    "{{\"slot\":{},\"start_ps\":{},\"master\":{},\"grants\":{},",
                    "\"deliveries\":{},\"next_master\":{},\"handover_hops\":{},",
                    "\"gap_ps\":{},\"recovering\":{},\"token_lost\":{},",
                    "\"corrupt_entries\":{},\"unreliable_lost\":{},",
                    "\"barrier\":{},\"reduce\":{}}}\n"
                ),
                r.slot,
                r.start.as_ps(),
                r.master.0,
                r.grants,
                r.deliveries,
                r.next_master.0,
                r.handover_hops,
                r.gap.as_ps(),
                r.recovering,
                r.token_lost,
                r.corrupt_entries,
                r.unreliable_lost,
                r.barrier,
                r.reduce,
            ));
        }
        out
    }

    /// Render the retained trace as a timeline table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "slot trace (last {} of {} slots)",
                self.records.len(),
                self.observed
            ),
            &[
                "slot", "start", "master", "grants", "deliv", "next", "hops", "gap", "flags",
            ],
        );
        for r in &self.records {
            let mut flags = String::new();
            if r.recovering {
                flags.push('R');
            }
            if r.token_lost {
                flags.push('T');
            }
            if r.corrupt_entries > 0 {
                flags.push('C');
            }
            if r.unreliable_lost > 0 {
                flags.push('L');
            }
            if r.barrier {
                flags.push('B');
            }
            if r.reduce {
                flags.push('Σ');
            }
            t.row(&[
                r.slot.to_string(),
                r.start.to_string(),
                r.master.to_string(),
                r.grants.to_string(),
                r.deliveries.to_string(),
                r.next_master.to_string(),
                r.handover_hops.to_string(),
                r.gap.to_string(),
                flags,
            ]);
        }
        t.render()
    }
}

/// One sampling window of gateway activity: the per-window *deltas* of
/// the gateway-wide counters, so a flat-line row means an idle window and
/// a `shed` burst is visible at the window it happened in.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayRecord {
    /// Fabric slot index at the end of the window.
    pub slot: u64,
    /// Frames offered to ingress during the window.
    pub frames_in: u64,
    /// Datagrams injected into the fabric during the window.
    pub injected: u64,
    /// Datagrams shed by pacing during the window.
    pub shed: u64,
    /// `Nack` control frames sent back to clients during the window.
    pub nacks: u64,
    /// `Backoff` advisories sent back to clients during the window.
    pub backoffs: u64,
    /// End-to-end deliveries handed to egress during the window.
    pub delivered: u64,
    /// Deliveries that missed their link's deadline during the window.
    pub deadline_missed: u64,
}

/// A bounded recorder of recent gateway activity windows — the gateway
/// counterpart of [`TraceRecorder`]. Feed it the cumulative
/// [`GatewayMetrics`] at each sampling point; it differences consecutive
/// snapshots into per-window [`GatewayRecord`]s.
#[derive(Debug)]
pub struct GatewayTraceRecorder {
    records: VecDeque<GatewayRecord>,
    capacity: usize,
    observed: u64,
    last: GatewayRecord,
}

impl GatewayTraceRecorder {
    /// Keep at most `capacity` most recent windows.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity gateway trace");
        GatewayTraceRecorder {
            records: VecDeque::with_capacity(capacity),
            capacity,
            observed: 0,
            last: GatewayRecord {
                slot: 0,
                frames_in: 0,
                injected: 0,
                shed: 0,
                nacks: 0,
                backoffs: 0,
                delivered: 0,
                deadline_missed: 0,
            },
        }
    }

    /// Record one window ending at fabric slot `slot`, given the
    /// gateway's cumulative counters at that instant.
    pub fn observe(&mut self, slot: u64, m: &GatewayMetrics) {
        let cum = GatewayRecord {
            slot,
            frames_in: m.frames_in.get(),
            injected: m.injected.get(),
            shed: m.shed.get(),
            nacks: m.nacks_sent.get(),
            backoffs: m.backoffs_sent.get(),
            delivered: m.delivered.get(),
            deadline_missed: m.deadline_missed.get(),
        };
        let delta = GatewayRecord {
            slot,
            frames_in: cum.frames_in - self.last.frames_in,
            injected: cum.injected - self.last.injected,
            shed: cum.shed - self.last.shed,
            nacks: cum.nacks - self.last.nacks,
            backoffs: cum.backoffs - self.last.backoffs,
            delivered: cum.delivered - self.last.delivered,
            deadline_missed: cum.deadline_missed - self.last.deadline_missed,
        };
        self.last = cum;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(delta);
        self.observed += 1;
    }

    /// Total windows observed (including evicted ones).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The retained windows, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &GatewayRecord> {
        self.records.iter()
    }

    /// The retained windows as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "gateway trace (last {} of {} windows)",
                self.records.len(),
                self.observed
            ),
            &[
                "slot",
                "in",
                "injected",
                "shed",
                "nack",
                "backoff",
                "delivered",
                "missed",
            ],
        );
        for r in &self.records {
            t.row(&[
                r.slot.to_string(),
                r.frames_in.to_string(),
                r.injected.to_string(),
                r.shed.to_string(),
                r.nacks.to_string(),
                r.backoffs.to_string(),
                r.delivered.to_string(),
                r.deadline_missed.to_string(),
            ]);
        }
        t
    }

    /// Render the retained windows as a timeline table.
    pub fn render(&self) -> String {
        self.table().render()
    }

    /// Render the retained windows as JSON Lines (hand-rolled like
    /// [`TraceRecorder::to_jsonl`]; every field is a number).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            out.push_str(&format!(
                concat!(
                    "{{\"slot\":{},\"frames_in\":{},\"injected\":{},",
                    "\"shed\":{},\"nacks\":{},\"backoffs\":{},",
                    "\"delivered\":{},\"deadline_missed\":{}}}\n"
                ),
                r.slot,
                r.frames_in,
                r.injected,
                r.shed,
                r.nacks,
                r.backoffs,
                r.delivered,
                r.deadline_missed,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_edf::config::NetworkConfig;
    use ccr_edf::message::{Destination, Message};
    use ccr_edf::network::RingNetwork;

    fn traced_run(slots: u64, cap: usize) -> TraceRecorder {
        let cfg = NetworkConfig::builder(5)
            .slot_bytes(2048)
            .build_auto_slot()
            .unwrap();
        let mut net = RingNetwork::new_ccr_edf(cfg);
        net.submit_message(
            SimTime::ZERO,
            Message::non_real_time(NodeId(2), Destination::Unicast(NodeId(4)), 2, SimTime::ZERO),
        );
        let mut tr = TraceRecorder::new(cap);
        for _ in 0..slots {
            tr.observe(net.step_slot());
        }
        tr
    }

    #[test]
    fn records_every_slot_up_to_capacity() {
        let tr = traced_run(10, 100);
        assert_eq!(tr.observed(), 10);
        assert_eq!(tr.records().count(), 10);
        // slot indices contiguous
        let idx: Vec<u64> = tr.records().map(|r| r.slot).collect();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tr = traced_run(50, 8);
        assert_eq!(tr.observed(), 50);
        let idx: Vec<u64> = tr.records().map(|r| r.slot).collect();
        assert_eq!(idx, (42..50).collect::<Vec<_>>());
    }

    #[test]
    fn handover_filter_and_render() {
        let tr = traced_run(6, 16);
        // slot 0 hands over 0→2 (the submitted message's source)
        let h: Vec<&SlotRecord> = tr.handovers().collect();
        assert!(!h.is_empty());
        assert_eq!(h[0].next_master, NodeId(2));
        let txt = tr.render();
        assert!(txt.contains("slot trace"));
        assert!(txt.contains("n2"));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceRecorder::new(0);
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_slot() {
        let tr = traced_run(12, 8);
        let txt = tr.to_jsonl();
        assert!(txt.ends_with('\n'));
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 8, "one line per retained record");
        for (line, rec) in lines.iter().zip(tr.records()) {
            assert!(line.starts_with('{') && line.ends_with('}'));
            // braces balance and all fields present with the right values
            assert_eq!(line.matches('{').count(), 1);
            assert!(line.contains(&format!("\"slot\":{}", rec.slot)));
            assert!(line.contains(&format!("\"start_ps\":{}", rec.start.as_ps())));
            assert!(line.contains(&format!("\"master\":{}", rec.master.0)));
            assert!(line.contains(&format!("\"gap_ps\":{}", rec.gap.as_ps())));
            assert!(line.contains("\"recovering\":false"));
            assert!(line.contains("\"token_lost\":false"));
            assert!(line.contains("\"corrupt_entries\":0"));
            assert!(line.contains("\"unreliable_lost\":0"));
        }
        // eviction respected: first line is slot 4
        assert!(lines[0].contains("\"slot\":4,"));
    }

    #[test]
    fn fault_slots_carry_their_flags_into_the_trace() {
        use ccr_edf::config::FaultConfig;
        use ccr_edf::fault::{FaultKind, FaultScript};

        let cfg = NetworkConfig::builder(5)
            .slot_bytes(2048)
            .faults(FaultConfig {
                recovery_timeout_slots: 3,
                ..Default::default()
            })
            .fault_script(
                FaultScript::new()
                    .at(2, FaultKind::CorruptCollection { victim: NodeId(1) })
                    .at(4, FaultKind::LoseToken),
            )
            .build_auto_slot()
            .unwrap();
        let mut net = RingNetwork::new_ccr_edf(cfg);
        let mut tr = TraceRecorder::new(16);
        for _ in 0..10 {
            tr.observe(net.step_slot());
        }
        let recs: Vec<&SlotRecord> = tr.records().collect();
        assert_eq!(recs[2].corrupt_entries, 1);
        assert!(recs[4].token_lost);
        assert!(recs[5].recovering, "recovery dead time follows the loss");
        let txt = tr.render();
        assert!(txt.contains('T') && txt.contains('C') && txt.contains('R'));
        let jsonl = tr.to_jsonl();
        assert!(jsonl.contains("\"token_lost\":true"));
        assert!(jsonl.contains("\"corrupt_entries\":1"));
    }

    #[test]
    fn gateway_recorder_differences_cumulative_counters() {
        let mut m = GatewayMetrics::default();
        let mut tr = GatewayTraceRecorder::new(2);

        m.frames_in.incr();
        m.injected.incr();
        tr.observe(100, &m);

        m.frames_in.incr();
        m.frames_in.incr();
        m.shed.incr();
        m.nacks_sent.incr();
        m.backoffs_sent.incr();
        tr.observe(200, &m);

        m.delivered.incr();
        m.deadline_missed.incr();
        tr.observe(300, &m);

        // Capacity 2: window ending at slot 100 was evicted.
        let recs: Vec<&GatewayRecord> = tr.records().collect();
        assert_eq!(tr.observed(), 3);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].slot, 200);
        assert_eq!(recs[0].frames_in, 2, "delta, not cumulative");
        assert_eq!(recs[0].shed, 1);
        assert_eq!(recs[0].nacks, 1);
        assert_eq!(recs[0].backoffs, 1);
        assert_eq!(recs[0].injected, 0);
        assert_eq!(recs[1].slot, 300);
        assert_eq!(recs[1].delivered, 1);
        assert_eq!(recs[1].deadline_missed, 1);

        assert!(tr.render().contains("gateway trace"));
        let jsonl = tr.to_jsonl();
        assert!(jsonl.contains("\"slot\":200,\"frames_in\":2,"));
        assert!(jsonl.contains("\"shed\":1,\"nacks\":1,\"backoffs\":1,"));
        assert!(jsonl.contains("\"deadline_missed\":1}"));
    }
}
