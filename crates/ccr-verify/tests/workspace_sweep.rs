//! The gate run against the *real* workspace, in-process.
//!
//! These tests pin three load-bearing properties of the verifier:
//!
//! 1. **Zero findings with every rule armed.** The workspace source is the
//!    positive fixture; any new violation (or stale marker) fails here
//!    before CI ever runs the binary.
//! 2. **Every allow-marker is honoured.** The exact count is asserted so a
//!    marker that silently stops matching (rule renamed, line reshuffled
//!    past its target) shows up as a diff in this number, not as quiet
//!    rot.
//! 3. **Byte-identical reports.** Two independent runs must serialize to
//!    the same JSON — the baseline-diff gate in CI is only sound if the
//!    report is deterministic.

use ccr_verify::{find_workspace_root, report, rules, run};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn workspace_sweep_is_clean_with_all_rules_armed() {
    let rep = run(&workspace_root(), &rules::RuleConfig::workspace());
    assert!(
        rep.findings.is_empty(),
        "workspace must verify clean:\n{}",
        rep.findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(rep.files_scanned > 100, "scanned {}", rep.files_scanned);
    assert!(rep.fns_indexed > 1000, "indexed {}", rep.fns_indexed);
}

/// Marker audit: every `// ccr-verify: allow(..)` / `hot_path` /
/// `event_path` marker in the tree is live. If this number moves, either a
/// marker was added/removed on purpose (update the constant, re-justify in
/// the diff) or one rotted (fix the marker).
#[test]
fn every_allow_marker_is_honoured() {
    let rep = run(&workspace_root(), &rules::RuleConfig::workspace());
    assert_eq!(
        rep.markers_honoured, 30,
        "marker census drifted — audit `grep -rn 'ccr-verify:' crates/ src/`"
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let root = workspace_root();
    let cfg = rules::RuleConfig::workspace();
    let a = report::to_json(&run(&root, &cfg));
    let b = report::to_json(&run(&root, &cfg));
    assert_eq!(a, b, "report serialization must be deterministic");
}

/// The checked-in baseline matches reality: an empty diff in both
/// directions. (CI re-checks this with the binary; this keeps the failure
/// local and fast.)
#[test]
fn checked_in_baseline_matches_the_tree() {
    let root = workspace_root();
    let baseline = std::fs::read_to_string(root.join("verify/baseline.json"))
        .expect("verify/baseline.json is checked in");
    let rep = run(&root, &rules::RuleConfig::workspace());
    let (new, fixed) = report::diff_baseline(&rep, &baseline);
    assert!(
        new.is_empty() && fixed.is_empty(),
        "baseline drift — new: {new:?}, fixed (stale entries): {fixed:?}\n\
         regenerate with `cargo run -p ccr-verify -- --emit json --write-baseline verify/baseline.json`"
    );
}
