//! Negative tests: every seeded violation in `fixtures/` must be detected
//! by exactly the annotated rule, and nothing else may fire.
//!
//! Annotation grammar (trybuild-style):
//! * `//~ ERROR <rule>`  — a finding of `<rule>` on this line
//! * `//~^ ERROR <rule>` — a finding of `<rule>` on the previous line

use ccr_verify::model::FileModel;
use ccr_verify::rules::{rule_protocol_pin, run_all, ProtocolPin, RuleConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_config() -> RuleConfig {
    let one = |s: &str| -> BTreeSet<String> { std::iter::once(s.to_string()).collect() };
    RuleConfig {
        det_crates: one("fixture"),
        lib_crates: one("fixture"),
        hot_roots: vec![("fixture".into(), "step_slot".into())],
        pump_roots: vec![("fixture".into(), "ingress".into())],
        cast_exempt: Vec::new(),
        det_exempt: Vec::new(),
        protocol_pins: Vec::new(),
    }
}

fn expectations(raw: &str) -> BTreeSet<(String, usize)> {
    let mut out = BTreeSet::new();
    for (i, line) in raw.lines().enumerate() {
        let line_no = i + 1;
        if let Some(pos) = line.find("//~") {
            let rest = line[pos + 3..].trim_start();
            let (target, rest) = if let Some(r) = rest.strip_prefix('^') {
                (line_no - 1, r.trim_start())
            } else {
                (line_no, rest)
            };
            let rule = rest
                .strip_prefix("ERROR")
                .expect("annotation must read `//~ ERROR <rule>`")
                .trim()
                .to_string();
            out.insert((rule, target));
        }
    }
    out
}

fn fixture_findings(path: &Path) -> Vec<ccr_verify::rules::Finding> {
    let raw = std::fs::read_to_string(path).expect("fixture readable");
    let model = FileModel::parse(path.to_path_buf(), "fixture", raw);
    run_all(&[model], &fixture_config())
}

fn check_fixture(path: &Path) {
    let raw = std::fs::read_to_string(path).expect("fixture readable");
    let expected = expectations(&raw);
    let findings = fixture_findings(path);
    let actual: BTreeSet<(String, usize)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    assert_eq!(
        actual,
        expected,
        "fixture {} mismatch.\nfindings:\n{}",
        path.display(),
        findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn seeded_hot_path_allocations_are_detected() {
    check_fixture(&fixture_path("hot_alloc.rs"));
}

#[test]
fn seeded_nondeterminism_is_detected() {
    check_fixture(&fixture_path("nondet.rs"));
}

#[test]
fn seeded_time_casts_are_detected() {
    check_fixture(&fixture_path("casts.rs"));
}

#[test]
fn seeded_unwraps_are_detected() {
    check_fixture(&fixture_path("unwraps.rs"));
}

#[test]
fn marker_mechanics_suppress_and_report() {
    check_fixture(&fixture_path("markers.rs"));
}

#[test]
fn event_path_functions_are_pruned_from_the_hot_walk() {
    check_fixture(&fixture_path("event_path.rs"));
}

#[test]
fn clean_fixture_stays_clean() {
    check_fixture(&fixture_path("clean.rs"));
}

#[test]
fn dyn_trait_allocation_is_caught_through_dispatch() {
    check_fixture(&fixture_path("trait_dispatch.rs"));
}

#[test]
fn seeded_blocking_calls_are_detected() {
    check_fixture(&fixture_path("blocking.rs"));
}

#[test]
fn seeded_panic_arith_is_detected() {
    check_fixture(&fixture_path("panic_arith.rs"));
}

#[test]
fn seeded_dimension_mixing_is_detected() {
    check_fixture(&fixture_path("dimension_mix.rs"));
}

/// The diagnostic must let a reader audit the resolution: the chain text
/// names every hop *and* the trait-dispatch edge taken.
#[test]
fn dispatch_diagnostics_print_the_resolved_call_chain() {
    let findings = fixture_findings(&fixture_path("trait_dispatch.rs"));
    assert_eq!(findings.len(), 1);
    let msg = &findings[0].message;
    assert!(
        msg.contains("step_slot") && msg.contains("tick") && msg.contains("pick"),
        "chain names every hop: {msg}"
    );
    assert!(
        msg.contains("dyn Arb::pick -> Chatty"),
        "chain prints the dispatch edge taken: {msg}"
    );
    assert!(
        msg.contains("dyn Arb::tick -> default body"),
        "chain shows the walk went through the trait default: {msg}"
    );
}

#[test]
fn blocking_diagnostics_print_the_resolved_call_chain() {
    let findings = fixture_findings(&fixture_path("blocking.rs"));
    let park = findings
        .iter()
        .find(|f| f.message.contains("`park`"))
        .expect("park finding");
    assert!(
        park.message.contains("step_slot -> helper"),
        "chain from root to the blocking call: {}",
        park.message
    );
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "blocking.rs",
            "casts.rs",
            "clean.rs",
            "dimension_mix.rs",
            "event_path.rs",
            "hot_alloc.rs",
            "markers.rs",
            "nondet.rs",
            "panic_arith.rs",
            "trait_dispatch.rs",
            "unwraps.rs"
        ],
        "new fixture files need a matching #[test]"
    );
}

// ---------------------------------------------------------------------
// protocol-pin (exercised against a scratch tree: the rule reads mirror
// files from disk, since mirrors live outside the scanned crates)
// ---------------------------------------------------------------------

const PIN_ANCHOR: &str = r#"
pub mod protocol {
    pub const CLAIM: &str = "next.fetch_add(1, Ordering::Relaxed)";
}

pub fn worker(next: &std::sync::atomic::AtomicUsize) -> usize {
    use std::sync::atomic::Ordering;
    next.fetch_add(1, Ordering::Relaxed)
}
"#;

fn pin_config(mirror: &str) -> RuleConfig {
    let mut cfg = fixture_config();
    cfg.protocol_pins = vec![ProtocolPin {
        name: "claim".into(),
        anchor: "crates/sim/src/parallel.rs".into(),
        mirrors: vec![mirror.to_string()],
    }];
    cfg
}

fn pin_models(anchor_src: &str) -> Vec<FileModel> {
    vec![FileModel::parse(
        PathBuf::from("crates/sim/src/parallel.rs"),
        "fixture",
        anchor_src.to_string(),
    )]
}

fn scratch_root(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("pin_{tag}"));
    std::fs::create_dir_all(&root).expect("scratch root");
    root
}

#[test]
fn protocol_pin_passes_when_anchor_and_mirror_agree() {
    let root = scratch_root("ok");
    std::fs::write(
        root.join("model.rs"),
        "fn model() { next.fetch_add(1, Ordering::Relaxed); }",
    )
    .expect("write mirror");
    let findings = rule_protocol_pin(&root, &pin_models(PIN_ANCHOR), &pin_config("model.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn protocol_pin_catches_a_drifted_mirror() {
    let root = scratch_root("drift");
    std::fs::write(
        root.join("model.rs"),
        "fn model() { next.fetch_add(1, Ordering::SeqCst); }",
    )
    .expect("write mirror");
    let findings = rule_protocol_pin(&root, &pin_models(PIN_ANCHOR), &pin_config("model.rs"));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "protocol-pin");
    assert!(
        findings[0].message.contains("CLAIM"),
        "{}",
        findings[0].message
    );
}

#[test]
fn protocol_pin_catches_a_dead_pin_and_a_missing_mirror() {
    let root = scratch_root("dead");
    // Anchor defines the fragment but the real code drifted away from it,
    // and the mirror file does not exist at all.
    let drifted_anchor = PIN_ANCHOR.replace("fetch_add(1,", "fetch_add(2,");
    // Put the const back so only the code side is missing.
    let drifted_anchor = drifted_anchor.replace(
        "pub const CLAIM: &str = \"next.fetch_add(2, Ordering::Relaxed)\";",
        "pub const CLAIM: &str = \"next.fetch_add(1, Ordering::Relaxed)\";",
    );
    let findings = rule_protocol_pin(
        &root,
        &pin_models(&drifted_anchor),
        &pin_config("absent.rs"),
    );
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["protocol-pin", "protocol-pin"], "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no longer appears")));
    assert!(findings.iter().any(|f| f.message.contains("missing")));
}
