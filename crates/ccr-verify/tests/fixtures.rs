//! Negative tests: every seeded violation in `fixtures/` must be detected
//! by exactly the annotated rule, and nothing else may fire.
//!
//! Annotation grammar (trybuild-style):
//! * `//~ ERROR <rule>`  — a finding of `<rule>` on this line
//! * `//~^ ERROR <rule>` — a finding of `<rule>` on the previous line

use ccr_verify::model::FileModel;
use ccr_verify::rules::{run_all, RuleConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_config() -> RuleConfig {
    let one = |s: &str| -> BTreeSet<String> { std::iter::once(s.to_string()).collect() };
    RuleConfig {
        det_crates: one("fixture"),
        lib_crates: one("fixture"),
        hot_roots: vec![("fixture".into(), "step_slot".into())],
        cast_exempt: Vec::new(),
        det_exempt: Vec::new(),
    }
}

fn expectations(raw: &str) -> BTreeSet<(String, usize)> {
    let mut out = BTreeSet::new();
    for (i, line) in raw.lines().enumerate() {
        let line_no = i + 1;
        if let Some(pos) = line.find("//~") {
            let rest = line[pos + 3..].trim_start();
            let (target, rest) = if let Some(r) = rest.strip_prefix('^') {
                (line_no - 1, r.trim_start())
            } else {
                (line_no, rest)
            };
            let rule = rest
                .strip_prefix("ERROR")
                .expect("annotation must read `//~ ERROR <rule>`")
                .trim()
                .to_string();
            out.insert((rule, target));
        }
    }
    out
}

fn check_fixture(path: &Path) {
    let raw = std::fs::read_to_string(path).expect("fixture readable");
    let expected = expectations(&raw);
    let model = FileModel::parse(path.to_path_buf(), "fixture", raw);
    let files = vec![model];
    let findings = run_all(&files, &fixture_config());
    let actual: BTreeSet<(String, usize)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    assert_eq!(
        actual,
        expected,
        "fixture {} mismatch.\nfindings:\n{}",
        path.display(),
        findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn seeded_hot_path_allocations_are_detected() {
    check_fixture(&fixture_path("hot_alloc.rs"));
}

#[test]
fn seeded_nondeterminism_is_detected() {
    check_fixture(&fixture_path("nondet.rs"));
}

#[test]
fn seeded_time_casts_are_detected() {
    check_fixture(&fixture_path("casts.rs"));
}

#[test]
fn seeded_unwraps_are_detected() {
    check_fixture(&fixture_path("unwraps.rs"));
}

#[test]
fn marker_mechanics_suppress_and_report() {
    check_fixture(&fixture_path("markers.rs"));
}

#[test]
fn event_path_functions_are_pruned_from_the_hot_walk() {
    check_fixture(&fixture_path("event_path.rs"));
}

#[test]
fn clean_fixture_stays_clean() {
    check_fixture(&fixture_path("clean.rs"));
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "casts.rs",
            "clean.rs",
            "event_path.rs",
            "hot_alloc.rs",
            "markers.rs",
            "nondet.rs",
            "unwraps.rs"
        ],
        "new fixture files need a matching #[test]"
    );
}
