//! Seeded unchecked arithmetic and indexing on time/seq-flavoured values
//! inside the hot walk. Saturating/checked forms and literal operands are
//! exempt; the same expressions outside the hot walk are exempt too.

pub struct Engine {
    now_ps: u64,
    deadline_ps: u64,
    seq: u64,
    ring: [u64; 8],
}

impl Engine {
    pub fn step_slot(&mut self) -> u64 {
        let slack = self.deadline_ps - self.now_ps; //~ ERROR panic-arith
        let safe = self.deadline_ps.saturating_sub(self.now_ps);
        let bumped = self.seq + 1;
        let seq_slot = self.seq;
        let held = self.ring[seq_slot]; //~ ERROR panic-arith
        slack + safe + bumped + held
    }
}

/// Not reachable from any hot root: the identical subtraction is fine
/// here (cold paths may rely on debug-mode overflow checks).
pub fn report_gap(deadline_ps: u64, now_ps: u64) -> u64 {
    deadline_ps - now_ps
}
