// Seeded violations for the alloc-in-hot-path rule. Not compiled — read
// by tests/fixtures.rs and checked against the trybuild-style annotations.

// ccr-verify: hot_path
fn hot_root_marked() {
    helper();
}

fn helper() {
    let v = Vec::new(); //~ ERROR alloc-in-hot-path
    let s = format!("x"); //~ ERROR alloc-in-hot-path
    consume(v, s);
}

fn step_slot() {
    let b = Box::new(1u8); //~ ERROR alloc-in-hot-path
    let owned = borrowed().to_vec(); //~ ERROR alloc-in-hot-path
    consume(owned, b);
}

fn cold_path() {
    // Not reachable from any root: allocation is fine here.
    let _ = Vec::new();
    let _ = String::new();
}

fn consume<A, B>(_a: A, _b: B) {}

fn borrowed() -> &'static [u8] {
    &[1, 2, 3]
}
