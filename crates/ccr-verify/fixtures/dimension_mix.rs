//! Seeded unit-dimension confusion: picosecond-, slot- and byte-flavoured
//! identifiers must not meet under `+`/`-` without a named conversion.
//! Multiplication/division are the conversions and stay exempt, as does
//! any line routed through a `*_per_*`/`to_*` helper name.

pub fn admit(deadline_ps: u64, n_slots: u64, payload_bytes: u64) -> u64 {
    let bad_budget = deadline_ps + n_slots; //~ ERROR dimension-mix
    let bad_size = payload_bytes - n_slots; //~ ERROR dimension-mix
    bad_budget + bad_size
}

/// The sanctioned way across dimensions: the conversion is named, so the
/// unit change is visible at the call site.
pub fn admit_converted(deadline_ps: u64, n_slots: u64, slot_ps: u64) -> u64 {
    let budget_ps = deadline_ps - n_slots * slot_ps;
    let same_dim = deadline_ps + budget_ps;
    same_dim
}
