// Seeded violations for the nondeterminism rule.

use std::collections::HashMap;

struct S {
    map: HashMap<u32, u32>,
}

impl S {
    fn tick(&self) -> u64 {
        let t = std::time::Instant::now(); //~ ERROR nondeterminism
        consume(t);
        let mut acc = 0u64;
        for (_k, v) in self.map.iter() { //~ ERROR nondeterminism
            acc += u64::from(*v);
        }
        acc
    }

    fn entropy(&self) -> u64 {
        let r = rand::thread_rng(); //~ ERROR nondeterminism
        consume(r);
        7
    }

    fn lookup(&self, k: u32) -> Option<u32> {
        // Keyed lookups are deterministic and allowed.
        self.map.get(&k).copied()
    }
}

fn consume<T>(_t: T) {}
