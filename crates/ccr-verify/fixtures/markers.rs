// Allow-marker mechanics: justified markers suppress, reasonless and
// stale markers are findings of their own.

fn justified(x: Option<u32>) -> u32 {
    // ccr-verify: allow(unwrap-in-lib) -- fixture: documented exception
    x.unwrap()
}

fn undocumented(x: Option<u32>) -> u32 {
    // ccr-verify: allow(unwrap-in-lib)
    //~^ ERROR allow-marker
    x.unwrap()
    //~^ ERROR unwrap-in-lib
}

// ccr-verify: allow(time-cast) -- stale: nothing below casts anything
//~^ ERROR allow-marker
fn stale() {}
