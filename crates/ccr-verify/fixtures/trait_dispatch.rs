//! Seeded trait-dispatch violation: the hot walk must fan out through a
//! `dyn Trait` field to *every* impl of the dispatched method — including
//! one reached only through the trait's default body — and the diagnostic
//! must print the `trait::method -> impl` edge taken.

pub trait Arb {
    fn pick(&self) -> u32;

    /// Default body: dispatches to `pick` on whatever the impl is.
    fn tick(&self) -> u32 {
        self.pick()
    }
}

pub struct Quiet;

impl Arb for Quiet {
    fn pick(&self) -> u32 {
        7
    }
}

pub struct Chatty;

impl Arb for Chatty {
    fn pick(&self) -> u32 {
        let v = vec![1u32]; //~ ERROR alloc-in-hot-path
        v[0]
    }
}

pub struct Engine {
    arb: Box<dyn Arb>,
}

impl Engine {
    pub fn step_slot(&self) -> u32 {
        self.arb.tick()
    }
}
