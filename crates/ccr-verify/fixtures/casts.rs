// Seeded violations for the time-cast rule.

fn bad_float_cast(x: f64) -> u64 {
    let ps = (x * 1e12).round() as u64; //~ ERROR time-cast
    ps
}

fn bad_from_ps(horizon_ps: f64) -> u64 {
    let d = TimeDelta::from_ps(horizon_ps as u64); //~ ERROR time-cast
    d.as_ps()
}

fn raw_ctor(ps: u64) -> TimeDelta {
    TimeDelta(ps) //~ ERROR time-cast
}

fn fine_widening(hops: u16) -> u64 {
    // Integer widening is lossless and allowed.
    hops as u64
}
