// A fixture with zero violations: the gate must stay silent on it.

// ccr-verify: hot_path
fn step_like(scratch: &mut [u64; 8], inputs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (i, x) in inputs.iter().enumerate() {
        scratch[i % 8] = scratch[i % 8].wrapping_add(*x);
        acc = acc.wrapping_add(scratch[i % 8]);
    }
    acc
}

fn checked_conversion(ns: u64) -> u64 {
    ns.saturating_mul(1_000)
}

fn stated(x: Option<u32>) -> u32 {
    x.expect("invariant: validated by the admission test")
}
