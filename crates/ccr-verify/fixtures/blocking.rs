//! Seeded blocking violations, reachable from the slot-engine root and
//! from the gateway pump root — plus a workspace method *named* like a
//! blocking primitive, which must not fire (the walk scans its body
//! instead of pattern-matching the call).

use std::sync::Mutex;

pub struct Engine {
    state: Mutex<u32>,
    backlog: u32,
}

impl Engine {
    pub fn step_slot(&self) -> u32 {
        let held = self.state.lock().expect("state mutex"); //~ ERROR blocking-in-hot-path
        let n = *held + self.accept();
        drop(held);
        helper();
        n
    }

    /// The pump root: blocking here stalls the wire, not just the sim.
    pub fn ingress(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1)); //~ ERROR blocking-in-hot-path
    }

    /// Named like `TcpListener::accept`, but it is our own method on a
    /// typed receiver — no finding, and its body joins the walk.
    pub fn accept(&self) -> u32 {
        self.backlog
    }
}

fn helper() {
    std::thread::park(); //~ ERROR blocking-in-hot-path
}
