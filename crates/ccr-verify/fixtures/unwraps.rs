// Seeded violations for the unwrap-in-lib rule.

fn lib_code(x: Option<u32>) -> u32 {
    let a = x.unwrap(); //~ ERROR unwrap-in-lib
    let b = Some(1).expect(""); //~ ERROR unwrap-in-lib
    a + b
}

fn stated_invariant(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked admission first")
}

#[cfg(test)]
mod tests {
    fn in_tests(x: Option<u32>) -> u32 {
        x.unwrap() // fine: test code is exempt
    }
}
