// The event-path / steady-state distinction for alloc-in-hot-path. Not
// compiled — read by tests/fixtures.rs.
//
// `step_slot` is a hot root. Its steady-state callees must stay
// allocation-free, but the rare-event branch (admission-style
// reconfiguration) is marked `event_path` and pruned from the walk —
// along with everything only reachable through it.

fn step_slot() {
    advance_rings();
    bogus_exemption();
    if rare_event_pending() {
        reconcile_after_fault();
    }
}

fn advance_rings() {
    let v = Vec::new(); //~ ERROR alloc-in-hot-path
    consume(v);
}

// ccr-verify: event_path -- fault reconfiguration runs off the slot loop
fn reconcile_after_fault() {
    // Allocation is fine here: this runs once per fault, not per slot.
    let plans = Vec::new();
    rebuild_routing(plans);
}

fn rebuild_routing<T>(_plans: T) {
    // Only reachable through the pruned event path: also exempt.
    let _ = String::new();
}

// An event_path marker without a reason grants nothing and is itself a
// finding (unparseable directive).
// ccr-verify: event_path
//~^ ERROR allow-marker
fn bogus_exemption() {
    let _ = Box::new(1u8); //~ ERROR alloc-in-hot-path
}

fn rare_event_pending() -> bool {
    false
}

fn consume<T>(_v: T) {}
