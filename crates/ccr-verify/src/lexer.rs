//! A minimal Rust lexer: enough to blank out comments, string literals and
//! char literals so the rule engine can pattern-match on *code* without a
//! full parse. The cleaned text preserves byte offsets and newlines, so
//! line numbers computed against it map 1:1 onto the original source.

/// The result of cleaning one source file.
pub struct Cleaned {
    /// Source with comment and string/char literal *contents* replaced by
    /// spaces. Quotes are kept so token boundaries survive; newlines are
    /// kept so line numbers are unchanged.
    pub clean: String,
    /// `(line, text)` of every line comment, with the leading `//` and
    /// surrounding whitespace stripped. Lines are 1-indexed. Used for
    /// `ccr-verify:` marker parsing.
    pub comments: Vec<(usize, String)>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Blank comments and literals out of `src`. Not a validating lexer: on
/// pathological input it degrades to passing bytes through, which only ever
/// produces *extra* findings, never hides code.
pub fn clean_source(src: &str) -> Cleaned {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut state = State::Normal;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                comments.push((line, std::mem::take(&mut comment_buf)));
                state = State::Normal;
            }
            out.push(b'\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        comment_buf.clear();
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::Block(1);
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                    b'"' => {
                        // Possible raw/byte string prefix directly before us
                        // is handled at the prefix characters below; a bare
                        // quote starts an ordinary string.
                        state = State::Str;
                        out.push(b'"');
                        i += 1;
                        continue;
                    }
                    b'r' | b'b' => {
                        // r"..."  r#"..."#  br"..."  b"..."
                        let (hashes, quote_at) = raw_prefix(bytes, i);
                        if let Some(q) = quote_at {
                            out.resize(out.len() + (q - i + 1), b' ');
                            out.push(b'"');
                            // we emitted one space per consumed byte plus the
                            // quote; rewind one to keep offsets aligned
                            out.pop();
                            out.pop();
                            out.push(b'"');
                            state = State::RawStr(hashes);
                            i = q + 1;
                            continue;
                        }
                        out.push(b);
                        i += 1;
                        continue;
                    }
                    b'\'' => {
                        if let Some(end) = char_literal_end(bytes, i) {
                            out.push(b'\'');
                            out.resize(out.len() + (end - i - 1), b' ');
                            out.push(b'\'');
                            for &bb in &bytes[i..end + 1] {
                                if bb == b'\n' {
                                    line += 1;
                                }
                            }
                            i = end + 1;
                            continue;
                        }
                        // lifetime tick
                        out.push(b'\'');
                        i += 1;
                        continue;
                    }
                    _ => {
                        out.push(b);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                comment_buf.push(b as char);
                out.push(b' ');
                i += 1;
            }
            State::Block(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::Block(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'"' {
                    out.push(b'"');
                    state = State::Normal;
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && trailing_hashes(bytes, i + 1) >= hashes {
                    out.push(b'"');
                    out.resize(out.len() + hashes as usize, b' ');
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        comments.push((line, comment_buf));
    }

    Cleaned {
        clean: String::from_utf8(out).unwrap_or_default(),
        comments,
    }
}

/// If a raw/byte string starts at `i`, return `(hash_count, index of the
/// opening quote)`.
fn raw_prefix(bytes: &[u8], i: usize) -> (u32, Option<usize>) {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') && (raw || (hashes == 0 && j > i)) {
        // b"...", r"...", r#"..."#, br#"..."#
        (hashes, Some(j))
    } else {
        (0, None)
    }
}

fn trailing_hashes(bytes: &[u8], from: usize) -> u32 {
    let mut n = 0u32;
    while bytes.get(from + n as usize) == Some(&b'#') {
        n += 1;
    }
    n
}

/// If `'` at `i` opens a char literal (not a lifetime), return the index of
/// the closing quote.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // escape: scan to the closing quote
        let mut j = i + 2;
        while j < bytes.len() {
            if bytes[j] == b'\\' {
                j += 2;
                continue;
            }
            if bytes[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // 'x' — exactly one (possibly multi-byte) char then a quote; a lifetime
    // like 'a or 'static has an identifier char NOT followed by a quote.
    let mut j = i + 2;
    // skip UTF-8 continuation bytes of a multi-byte scalar
    while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        Some(j)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments_but_keeps_them() {
        let c = clean_source("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!c.clean.contains("Instant"));
        assert_eq!(c.comments.len(), 1);
        assert_eq!(c.comments[0].0, 1);
        assert!(c.comments[0].1.contains("Instant::now()"));
    }

    #[test]
    fn blanks_strings_and_preserves_offsets() {
        let src = r#"let s = "Instant::now()"; let t = 1;"#;
        let c = clean_source(src);
        assert!(!c.clean.contains("Instant"));
        assert_eq!(c.clean.len(), src.len());
        assert!(c.clean.contains("let t = 1;"));
    }

    #[test]
    fn handles_raw_strings_and_chars_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\n'; let r = r#\"vec![]\"#; }";
        let c = clean_source(src);
        assert!(!c.clean.contains("vec!"));
        assert!(c.clean.contains("fn f<'a>"));
        assert_eq!(c.clean.len(), src.len());
    }

    #[test]
    fn nested_block_comments() {
        let c = clean_source("a /* x /* y */ z */ b");
        assert_eq!(c.clean, "a                   b");
    }

    #[test]
    fn newlines_survive_inside_block_comments() {
        let c = clean_source("a\n/* x\n y */\nb // tail");
        assert_eq!(c.clean.matches('\n').count(), 3);
        assert_eq!(c.comments[0].0, 4);
    }
}
