//! Per-file source model: cleaned text, line table, test-code mask,
//! function spans, and `ccr-verify:` markers.
//!
//! Marker grammar (inside ordinary `//` comments):
//!
//! ```text
//! // ccr-verify: allow(<rule>) -- <reason>
//! // ccr-verify: hot_path
//! // ccr-verify: event_path -- <reason>
//! ```
//!
//! An `allow` marker suppresses findings of `<rule>` on its own line and on
//! the line directly below (so it can sit above the offending statement).
//! The reason is mandatory; the gate reports markers whose reason is
//! missing, and markers that suppressed nothing, as errors of their own —
//! "zero unexplained allow-markers" is part of the contract.
//!
//! `hot_path` marks the function below as a root of the alloc-free walk;
//! `event_path` marks it as a *rare-event* function (admission, fault
//! reconfiguration, teardown) that is reachable from a hot root but runs
//! outside the steady-state slot loop — the alloc walk stops there instead
//! of flagging its (legitimate) allocations. The reason is mandatory, same
//! as `allow`.

use crate::lexer::{clean_source, Cleaned};
use std::path::PathBuf;

/// One `ccr-verify: allow(...)` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-indexed line the marker comment sits on.
    pub line: usize,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Justification text after the rule; empty is an error.
    pub reason: String,
}

/// What item a function definition belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnOwner {
    /// A free function at module scope.
    Free,
    /// A method inside `impls[idx]` (inherent or trait impl).
    Impl(usize),
    /// A default method inside `traits[idx]`.
    Trait(usize),
}

/// A function item found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name (identifier after `fn`).
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body (including braces) in the cleaned text.
    pub body: (usize, usize),
    /// True when the body lies inside `#[cfg(test)]` code or the fn is
    /// `#[test]`-annotated.
    pub is_test: bool,
    /// True when a `ccr-verify: hot_path` marker sits within two lines
    /// above the `fn` keyword.
    pub hot_root: bool,
    /// True when a `ccr-verify: event_path` marker sits within two lines
    /// above the `fn` keyword: the function handles rare events (admission,
    /// faults) and is pruned from the alloc-in-hot-path walk.
    pub event_path: bool,
    /// Which impl/trait block (if any) owns this definition.
    pub owner: FnOwner,
    /// Generic parameters with their first trait bound (`P` → `MacProtocol`
    /// for `fn f<P: MacProtocol>`).
    pub generics: Vec<(String, Option<String>)>,
    /// `(name, type text)` of each simple identifier parameter. Receiver
    /// (`self`) forms and pattern parameters are omitted.
    pub params: Vec<(String, String)>,
    /// Return type text after `->`, if any.
    pub ret: Option<String>,
}

/// An `impl` block: `impl<G> Trait for Type { .. }` or `impl Type { .. }`.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Base name of the self type (`RingNetwork` for
    /// `impl<P: MacProtocol> RingNetwork<P>`).
    pub self_type: String,
    /// Base name of the implemented trait for trait impls.
    pub trait_name: Option<String>,
    /// Generic parameters with their first trait bound.
    pub generics: Vec<(String, Option<String>)>,
    /// Byte range of the block body (including braces) in the cleaned text.
    pub body: (usize, usize),
}

/// A `trait` block, with every method name it declares (defaulted or not).
#[derive(Debug, Clone)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// Names of all `fn` items declared in the block.
    pub methods: Vec<String>,
    /// Byte range of the block body in the cleaned text.
    pub body: (usize, usize),
}

/// A braced `struct` definition with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Generic parameters with their first trait bound (`P` →
    /// `MacProtocol` for `struct RingNetwork<P: MacProtocol = CcrEdfMac>`).
    pub generics: Vec<(String, Option<String>)>,
    /// `(field name, type text)` pairs.
    pub fields: Vec<(String, String)>,
}

/// Everything the rules need to know about one source file.
pub struct FileModel {
    /// Path as given to [`FileModel::parse`].
    pub path: PathBuf,
    /// Cargo package name of the owning crate.
    pub crate_name: String,
    /// Raw source (only used for string-literal checks, e.g. `expect("")`).
    pub raw: String,
    /// Comment/string-blanked source; same length and line structure.
    pub clean: String,
    /// Byte offset of the start of each 1-indexed line in `clean`.
    line_starts: Vec<usize>,
    /// `mask[line-1]` is true when the line is test-only code.
    pub test_mask: Vec<bool>,
    /// Function items, in file order.
    pub fns: Vec<FnDef>,
    /// Allow markers, in file order.
    pub markers: Vec<AllowMarker>,
    /// `impl` blocks, in file order.
    pub impls: Vec<ImplDef>,
    /// `trait` blocks, in file order.
    pub traits: Vec<TraitDef>,
    /// Braced `struct` definitions, in file order.
    pub structs: Vec<StructDef>,
}

impl FileModel {
    /// Parse one file.
    pub fn parse(path: PathBuf, crate_name: &str, raw: String) -> FileModel {
        let Cleaned { clean, comments } = clean_source(&raw);
        let line_starts = line_starts(&clean);
        let n_lines = line_starts.len();
        let test_mask = test_mask(&clean, &line_starts, n_lines);

        let mut markers = Vec::new();
        let mut hot_lines = Vec::new();
        let mut event_lines = Vec::new();
        for (line, text) in &comments {
            let t = text.trim();
            let Some(rest) = t.strip_prefix("ccr-verify:") else {
                continue;
            };
            let rest = rest.trim();
            if rest == "hot_path" {
                hot_lines.push(*line);
            } else if let Some(tail) = rest.strip_prefix("event_path") {
                // The reason is mandatory: `event_path -- why this is rare`.
                let reason = tail.trim().trim_start_matches(['-', '—', ':']).trim();
                if reason.is_empty() {
                    markers.push(AllowMarker {
                        line: *line,
                        rule: "<unparseable: event_path without a reason>".into(),
                        reason: String::new(),
                    });
                } else {
                    event_lines.push(*line);
                }
            } else if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    let rule = args[..close].trim().to_string();
                    let reason = args[close + 1..]
                        .trim()
                        .trim_start_matches(['-', '—', ':'])
                        .trim()
                        .to_string();
                    markers.push(AllowMarker {
                        line: *line,
                        rule,
                        reason,
                    });
                }
            } else {
                // Unknown ccr-verify directive: surface as a marker with an
                // unknown rule so the gate flags it instead of silently
                // ignoring a typo.
                markers.push(AllowMarker {
                    line: *line,
                    rule: format!("<unparseable: {rest}>"),
                    reason: String::new(),
                });
            }
        }

        let mut fns = parse_fns(&clean, &line_starts, &test_mask, &hot_lines, &event_lines);
        let (impls, traits, structs) = parse_items(&clean);
        // Attach each fn to the innermost impl/trait block containing its
        // body. Impl and trait bodies never nest, so a simple containment
        // check suffices; impl wins because methods can't live in both.
        for f in &mut fns {
            for (ii, im) in impls.iter().enumerate() {
                if im.body.0 < f.body.0 && f.body.1 <= im.body.1 {
                    f.owner = FnOwner::Impl(ii);
                }
            }
            if f.owner == FnOwner::Free {
                for (ti, tr) in traits.iter().enumerate() {
                    if tr.body.0 < f.body.0 && f.body.1 <= tr.body.1 {
                        f.owner = FnOwner::Trait(ti);
                    }
                }
            }
        }

        FileModel {
            path,
            crate_name: crate_name.to_string(),
            raw,
            clean,
            line_starts,
            test_mask,
            fns,
            markers,
            impls,
            traits,
            structs,
        }
    }

    /// 1-indexed line containing byte offset `pos` of the cleaned text.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The raw text of a 1-indexed line, trimmed, for finding snippets.
    pub fn snippet(&self, line: usize) -> &str {
        self.raw.lines().nth(line - 1).unwrap_or("").trim()
    }

    /// True when the 1-indexed line is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// Iterate over the cleaned text of each non-test line as
    /// `(line_number, text)`.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.clean
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(n, _)| !self.is_test_line(*n))
    }
}

fn line_starts(s: &str) -> Vec<usize> {
    let mut v = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// Mark every line covered by `#[cfg(test)]`-gated items or `#[test]`
/// functions. Works on cleaned text, so braces inside strings can't confuse
/// the matcher.
fn test_mask(clean: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut from = 0usize;
        while let Some(hit) = clean[from..].find(pat) {
            let at = from + hit;
            from = at + pat.len();
            // Find the gated item's body: the next `{` before any
            // same-level `;` (an item like `#[cfg(test)] use x;` has none).
            let mut j = at + pat.len();
            let bytes = clean.as_bytes();
            let mut depth_paren = 0i32;
            let mut body_start = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth_paren += 1,
                    b')' | b']' => depth_paren -= 1,
                    b';' if depth_paren == 0 => break,
                    b'{' if depth_paren == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_start else { continue };
            let close = match_brace(clean, open);
            let (a, b) = (line_of_at(line_starts, at), line_of_at(line_starts, close));
            for l in a..=b.min(n_lines) {
                mask[l - 1] = true;
            }
        }
    }
    mask
}

fn line_of_at(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte offset of the `}` matching the `{` at `open` (or end of text).
pub fn match_brace(clean: &str, open: usize) -> usize {
    let bytes = clean.as_bytes();
    let mut depth = 0i32;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    clean.len().saturating_sub(1)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn parse_fns(
    clean: &str,
    line_starts: &[usize],
    test_mask: &[bool],
    hot_lines: &[usize],
    event_lines: &[usize],
) -> Vec<FnDef> {
    let bytes = clean.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 2 < bytes.len() {
        // A `fn` keyword: preceded by a non-identifier byte, followed by
        // whitespace.
        if &bytes[i..i + 2] == b"fn"
            && (i == 0 || !is_ident(bytes[i - 1]))
            && bytes.get(i + 2).is_some_and(|b| b.is_ascii_whitespace())
        {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name = clean[name_start..j].to_string();
            let sig_start = j;
            // Scan the signature for the body `{` (or `;` for trait
            // signatures / extern decls) at bracket depth 0.
            let mut depth = 0i32;
            let mut body = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b';' if depth == 0 => break,
                    b'{' if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let line = line_of_at(line_starts, i);
            if let Some(open) = body {
                let close = match_brace(clean, open);
                let is_test = test_mask.get(line - 1).copied().unwrap_or(false);
                let hot_root = hot_lines.iter().any(|&hl| hl < line && line - hl <= 3);
                let event_path = event_lines.iter().any(|&el| el < line && line - el <= 3);
                let sig = &clean[sig_start..open];
                let (generics, params, ret) = parse_signature(sig);
                fns.push(FnDef {
                    name,
                    line,
                    body: (open, close),
                    is_test,
                    hot_root,
                    event_path,
                    owner: FnOwner::Free,
                    generics,
                    params,
                    ret,
                });
                // Continue scanning *inside* the body too (nested fns are
                // rare but real); just move past the signature.
                i = open + 1;
                continue;
            }
            i = j.max(i + 2);
            continue;
        }
        i += 1;
    }
    fns
}

/// Split `text` on top-level commas (depth 0 of `()`, `[]`, `{}`, `<>`).
fn split_top_level(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => {
                // `->` never appears where we split; treat every `<` as an
                // opener unless it is part of `<<`-free comparison contexts,
                // which cannot occur in type position.
                angle += 1;
            }
            b'>' if i > 0 && bytes[i - 1] == b'-' => {} // `->` arrow
            b'>' => angle -= 1,
            b',' if depth == 0 && angle <= 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < text.len() {
        out.push(&text[start..]);
    }
    out
}

/// Parse `<A: Bound, B, 'a, const N: usize>` starting at the `<` byte.
/// Returns the params (lifetimes and consts skipped) and the byte offset
/// one past the closing `>`.
fn parse_generics(text: &str, open: usize) -> (Vec<(String, Option<String>)>, usize) {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = open;
    let mut close = text.len();
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let inner = &text[open + 1..close.min(text.len())];
    let mut params = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() || part.starts_with('\'') || part.starts_with("const ") {
            continue;
        }
        let (name, bounds) = match part.find(':') {
            Some(c) => (part[..c].trim(), Some(part[c + 1..].trim())),
            None => (part.split('=').next().unwrap_or(part).trim(), None),
        };
        if name.is_empty() || !name.bytes().all(is_ident) {
            continue;
        }
        // First non-lifetime, non-`?Sized` bound, reduced to its base name.
        let bound = bounds.and_then(|b| {
            b.split('+')
                .map(str::trim)
                .find(|p| !p.starts_with('\'') && !p.starts_with('?'))
                .map(base_name)
        });
        params.push((name.to_string(), bound.filter(|b| !b.is_empty())));
    }
    (params, close.saturating_add(1))
}

/// The base identifier of a type path: `crate::mac::CcrEdfMac<T>` →
/// `CcrEdfMac`. Strips leading `&`, `mut`, and `dyn`/`impl` keywords.
pub fn base_name(ty: &str) -> String {
    let mut s = ty.trim();
    loop {
        let t = s
            .trim_start_matches('&')
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start();
        let t = t
            .strip_prefix("dyn ")
            .or_else(|| t.strip_prefix("impl "))
            .unwrap_or(t)
            .trim_start();
        // Lifetimes after `&`.
        let t = if let Some(rest) = t.strip_prefix('\'') {
            rest.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
                .trim_start()
        } else {
            t
        };
        if t == s {
            break;
        }
        s = t;
    }
    if s.starts_with('[') || s.starts_with('(') {
        return String::new(); // slices, arrays, tuples: no base name
    }
    let head = s
        .split(|c: char| c == '<' || c == '(' || c.is_whitespace())
        .next()
        .unwrap_or("");
    head.rsplit("::").next().unwrap_or("").to_string()
}

/// Parse one fn signature (text between the fn name and the body `{`):
/// generics, simple identifier params, and the return type.
fn parse_signature(sig: &str) -> SignatureParts {
    let bytes = sig.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let generics = if bytes.get(i) == Some(&b'<') {
        let (g, end) = parse_generics(sig, i);
        i = end;
        g
    } else {
        Vec::new()
    };
    // Parameter list: the first balanced `(...)` from here.
    let mut params = Vec::new();
    let mut after_params = i;
    if let Some(rel) = sig[i..].find('(') {
        let open = i + rel;
        let mut depth = 0i32;
        let mut j = open;
        let mut close = sig.len();
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for part in split_top_level(&sig[open + 1..close.min(sig.len())]) {
            let part = part.trim();
            let Some(colon) = find_top_level_colon(part) else {
                continue; // `self`, `&mut self`, …
            };
            let name = part[..colon].trim().trim_start_matches("mut ").trim();
            let ty = part[colon + 1..].trim();
            if !name.is_empty() && name.bytes().all(is_ident) {
                params.push((name.to_string(), ty.to_string()));
            }
        }
        after_params = close.saturating_add(1);
    }
    let ret = sig[after_params.min(sig.len())..].find("->").map(|r| {
        let tail = &sig[after_params + r + 2..];
        let end = tail.find("where").unwrap_or(tail.len());
        tail[..end].trim().to_string()
    });
    (generics, params, ret.filter(|r| !r.is_empty()))
}

type SignatureParts = (
    Vec<(String, Option<String>)>,
    Vec<(String, String)>,
    Option<String>,
);

/// A `:` at paren/angle depth 0 that is not part of `::`.
fn find_top_level_colon(part: &str) -> Option<usize> {
    let bytes = part.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Item keyword at the start of a line (after optional visibility and
/// `unsafe`/`default` qualifiers)? Returns true when `pos` is such a
/// keyword occurrence, which filters out `-> impl Trait` return types and
/// `&dyn Trait` mentions mid-expression.
fn at_item_position(clean: &str, pos: usize) -> bool {
    let line_start = clean[..pos].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let prefix = clean[line_start..pos].trim_start();
    let mut rest = prefix;
    loop {
        let before = rest;
        for kw in ["pub", "unsafe", "default"] {
            if let Some(r) = rest.strip_prefix(kw) {
                let r = r.trim_start();
                // `pub(crate)` / `pub(super)`
                rest = if let Some(p) = r.strip_prefix('(') {
                    match p.find(')') {
                        Some(c) => p[c + 1..].trim_start(),
                        None => r,
                    }
                } else {
                    r
                };
            }
        }
        if rest == before {
            break;
        }
    }
    rest.is_empty()
}

/// Parse `impl`, `trait` and braced `struct` items out of the cleaned text.
fn parse_items(clean: &str) -> (Vec<ImplDef>, Vec<TraitDef>, Vec<StructDef>) {
    let bytes = clean.as_bytes();
    let mut impls = Vec::new();
    let mut traits = Vec::new();
    let mut structs = Vec::new();
    for (kw, which) in [("impl", 0u8), ("trait", 1u8), ("struct", 2u8)] {
        let kwb = kw.as_bytes();
        let mut from = 0usize;
        while let Some(hit) = clean[from..].find(kw) {
            let at = from + hit;
            from = at + kw.len();
            let bounded = (at == 0 || !is_ident(bytes[at - 1]))
                && bytes
                    .get(at + kw.len())
                    .is_some_and(|b| b.is_ascii_whitespace() || *b == b'<');
            if !bounded || !at_item_position(clean, at) {
                continue;
            }
            let mut i = at + kwb.len();
            match which {
                0 => {
                    // impl [<G>] [Trait for] Type [where ..] {
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let generics = if bytes.get(i) == Some(&b'<') {
                        let (g, end) = parse_generics(clean, i);
                        i = end;
                        g
                    } else {
                        Vec::new()
                    };
                    // Header text up to the body `{` at angle/paren depth 0.
                    let mut depth = 0i32;
                    let mut j = i;
                    let mut open = None;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'(' | b'[' => depth += 1,
                            b')' | b']' => depth -= 1,
                            b'<' => depth += 1,
                            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
                            b'>' => depth -= 1,
                            b';' if depth == 0 => break,
                            b'{' if depth == 0 => {
                                open = Some(j);
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let Some(open) = open else { continue };
                    let header = &clean[i..open];
                    let header = header.split(" where ").next().unwrap_or(header);
                    let (trait_name, self_ty) = match header.find(" for ") {
                        Some(f) => (Some(base_name(&header[..f])), base_name(&header[f + 5..])),
                        None => (None, base_name(header)),
                    };
                    let close = match_brace(clean, open);
                    impls.push(ImplDef {
                        self_type: self_ty,
                        trait_name: trait_name.filter(|t| !t.is_empty()),
                        generics,
                        body: (open, close),
                    });
                }
                1 => {
                    // trait Name[<G>][: Super] {
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let name_start = i;
                    while i < bytes.len() && is_ident(bytes[i]) {
                        i += 1;
                    }
                    let name = clean[name_start..i].to_string();
                    if name.is_empty() {
                        continue;
                    }
                    let mut depth = 0i32;
                    let mut open = None;
                    let mut j = i;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'(' | b'[' => depth += 1,
                            b')' | b']' => depth -= 1,
                            b'<' => depth += 1,
                            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
                            b'>' => depth -= 1,
                            b';' if depth == 0 => break,
                            b'{' if depth == 0 => {
                                open = Some(j);
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let Some(open) = open else { continue };
                    let close = match_brace(clean, open);
                    let body = &clean[open..=close.min(clean.len() - 1)];
                    let mut methods = Vec::new();
                    let bb = body.as_bytes();
                    let mut k = 0usize;
                    while let Some(h) = body[k..].find("fn") {
                        let p = k + h;
                        k = p + 2;
                        if (p == 0 || !is_ident(bb[p - 1]))
                            && bb.get(p + 2).is_some_and(|b| b.is_ascii_whitespace())
                        {
                            let mut q = p + 2;
                            while q < bb.len() && bb[q].is_ascii_whitespace() {
                                q += 1;
                            }
                            let ns = q;
                            while q < bb.len() && is_ident(bb[q]) {
                                q += 1;
                            }
                            if q > ns {
                                methods.push(body[ns..q].to_string());
                            }
                        }
                    }
                    traits.push(TraitDef {
                        name,
                        methods,
                        body: (open, close),
                    });
                }
                _ => {
                    // struct Name[<G>] { fields } — tuple/unit structs skipped.
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let name_start = i;
                    while i < bytes.len() && is_ident(bytes[i]) {
                        i += 1;
                    }
                    let name = clean[name_start..i].to_string();
                    if name.is_empty() {
                        continue;
                    }
                    let generics = if bytes.get(i) == Some(&b'<') {
                        let (g, end) = parse_generics(clean, i);
                        i = end;
                        g
                    } else {
                        Vec::new()
                    };
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    // Skip a where clause, if present, up to `{` or `;`.
                    if clean[i..].starts_with("where") {
                        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
                            i += 1;
                        }
                    }
                    if bytes.get(i) != Some(&b'{') {
                        continue; // tuple or unit struct
                    }
                    let close = match_brace(clean, i);
                    let inner = &clean[i + 1..close.min(clean.len())];
                    let mut fields = Vec::new();
                    for part in split_top_level(inner) {
                        let mut part = part.trim();
                        // Strip attributes and visibility.
                        while part.starts_with("#[") {
                            match part.find(']') {
                                Some(c) => part = part[c + 1..].trim_start(),
                                None => break,
                            }
                        }
                        part = part.strip_prefix("pub").unwrap_or(part).trim_start();
                        if let Some(p) = part.strip_prefix('(') {
                            if let Some(c) = p.find(')') {
                                part = p[c + 1..].trim_start();
                            }
                        }
                        let Some(colon) = find_top_level_colon(part) else {
                            continue;
                        };
                        let fname = part[..colon].trim();
                        let fty = part[colon + 1..].trim();
                        if !fname.is_empty() && fname.bytes().all(is_ident) {
                            fields.push((fname.to_string(), fty.to_string()));
                        }
                    }
                    structs.push(StructDef {
                        name,
                        generics,
                        fields,
                    });
                }
            }
        }
    }
    impls.sort_by_key(|i| i.body.0);
    traits.sort_by_key(|t| t.body.0);
    (impls, traits, structs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("mem.rs"), "test-crate", src.to_string())
    }

    #[test]
    fn finds_fns_and_bodies() {
        let m = model("fn alpha() { beta(); }\nfn beta() -> u32 { 1 }\n");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!(m.fns[1].line, 2);
        let body = &m.clean[m.fns[0].body.0..=m.fns[0].body.1];
        assert!(body.contains("beta()"));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let m = model("trait T { fn sig(&self) -> u8; fn with_default(&self) { } }");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        let m = model(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(4));
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
    }

    #[test]
    fn markers_parse_with_reasons() {
        let src = "// ccr-verify: allow(nondeterminism) -- wall-clock meter only\nlet t = 0;\n// ccr-verify: hot_path\nfn fast() {}\n// ccr-verify: allow(unwrap-in-lib)\n";
        let m = model(src);
        assert_eq!(m.markers.len(), 2);
        assert_eq!(m.markers[0].rule, "nondeterminism");
        assert_eq!(m.markers[0].reason, "wall-clock meter only");
        assert!(m.markers[1].reason.is_empty());
        assert!(m.fns.iter().any(|f| f.name == "fast" && f.hot_root));
    }

    #[test]
    fn event_path_markers_need_a_reason() {
        let src = "// ccr-verify: event_path -- admission runs off the slot loop\nfn admit() {}\n\n\n\n// ccr-verify: event_path\nfn bare() {}\n";
        let m = model(src);
        assert!(m.fns.iter().any(|f| f.name == "admit" && f.event_path));
        let bare = m.fns.iter().find(|f| f.name == "bare").unwrap();
        assert!(!bare.event_path, "reasonless marker grants nothing");
        assert_eq!(m.markers.len(), 1);
        assert!(m.markers[0].rule.starts_with("<unparseable"));
    }

    #[test]
    fn where_clause_bracket_depth_does_not_confuse_body() {
        let m = model("fn g<T: Into<Vec<u8>>>(x: [u8; 4]) -> u8 where T: Sized { x[0] }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "g");
    }

    #[test]
    fn impl_blocks_and_owners() {
        let src = "\
trait Mac { fn go(&self); fn tick(&self) { self.go(); } }
struct Edf { queue: Vec<u32> }
impl Mac for Edf {
    fn go(&self) {}
}
impl Edf {
    fn helper(&self) -> u32 { 1 }
}
fn free() {}
";
        let m = model(src);
        assert_eq!(m.traits.len(), 1);
        assert_eq!(m.traits[0].name, "Mac");
        assert_eq!(m.traits[0].methods, ["go", "tick"]);
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Mac"));
        assert_eq!(m.impls[0].self_type, "Edf");
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields, [("queue".into(), "Vec<u32>".into())]);
        let tick = m.fns.iter().find(|f| f.name == "tick").expect("tick");
        assert_eq!(tick.owner, FnOwner::Trait(0));
        let go = m.fns.iter().find(|f| f.name == "go").expect("go");
        assert_eq!(go.owner, FnOwner::Impl(0));
        let helper = m.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert_eq!(helper.owner, FnOwner::Impl(1));
        assert_eq!(helper.ret.as_deref(), Some("u32"));
        let free = m.fns.iter().find(|f| f.name == "free").expect("free");
        assert_eq!(free.owner, FnOwner::Free);
    }

    #[test]
    fn generic_impl_bounds_are_parsed() {
        let src = "\
struct Ring<P: Mac = Default> { mac: P, slot_ps: u64 }
impl<P: Mac> Ring<P> {
    fn step(&mut self, n: u32) -> u64 { self.slot_ps }
}
";
        let m = model(src);
        assert_eq!(m.structs[0].generics, [("P".into(), Some("Mac".into()))]);
        assert_eq!(m.impls[0].generics, [("P".into(), Some("Mac".into()))]);
        assert_eq!(m.impls[0].self_type, "Ring");
        let step = &m.fns[0];
        assert_eq!(step.params, [("n".into(), "u32".into())]);
        assert_eq!(step.ret.as_deref(), Some("u64"));
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let src = "fn iterish() -> impl Iterator<Item = u8> { [1u8].into_iter() }\n";
        let m = model(src);
        assert!(m.impls.is_empty());
        assert_eq!(m.fns.len(), 1);
    }

    #[test]
    fn base_name_strips_wrappers() {
        assert_eq!(base_name("&mut crate::mac::CcrEdfMac"), "CcrEdfMac");
        assert_eq!(base_name("dyn Scheduler"), "Scheduler");
        assert_eq!(base_name("&'a [u8]"), "");
        assert_eq!(base_name("Vec<Frame>"), "Vec");
    }
}
