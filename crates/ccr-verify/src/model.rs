//! Per-file source model: cleaned text, line table, test-code mask,
//! function spans, and `ccr-verify:` markers.
//!
//! Marker grammar (inside ordinary `//` comments):
//!
//! ```text
//! // ccr-verify: allow(<rule>) -- <reason>
//! // ccr-verify: hot_path
//! // ccr-verify: event_path -- <reason>
//! ```
//!
//! An `allow` marker suppresses findings of `<rule>` on its own line and on
//! the line directly below (so it can sit above the offending statement).
//! The reason is mandatory; the gate reports markers whose reason is
//! missing, and markers that suppressed nothing, as errors of their own —
//! "zero unexplained allow-markers" is part of the contract.
//!
//! `hot_path` marks the function below as a root of the alloc-free walk;
//! `event_path` marks it as a *rare-event* function (admission, fault
//! reconfiguration, teardown) that is reachable from a hot root but runs
//! outside the steady-state slot loop — the alloc walk stops there instead
//! of flagging its (legitimate) allocations. The reason is mandatory, same
//! as `allow`.

use crate::lexer::{clean_source, Cleaned};
use std::path::PathBuf;

/// One `ccr-verify: allow(...)` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-indexed line the marker comment sits on.
    pub line: usize,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Justification text after the rule; empty is an error.
    pub reason: String,
}

/// A function item found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name (identifier after `fn`).
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body (including braces) in the cleaned text.
    pub body: (usize, usize),
    /// True when the body lies inside `#[cfg(test)]` code or the fn is
    /// `#[test]`-annotated.
    pub is_test: bool,
    /// True when a `ccr-verify: hot_path` marker sits within two lines
    /// above the `fn` keyword.
    pub hot_root: bool,
    /// True when a `ccr-verify: event_path` marker sits within two lines
    /// above the `fn` keyword: the function handles rare events (admission,
    /// faults) and is pruned from the alloc-in-hot-path walk.
    pub event_path: bool,
}

/// Everything the rules need to know about one source file.
pub struct FileModel {
    /// Path as given to [`FileModel::parse`].
    pub path: PathBuf,
    /// Cargo package name of the owning crate.
    pub crate_name: String,
    /// Raw source (only used for string-literal checks, e.g. `expect("")`).
    pub raw: String,
    /// Comment/string-blanked source; same length and line structure.
    pub clean: String,
    /// Byte offset of the start of each 1-indexed line in `clean`.
    line_starts: Vec<usize>,
    /// `mask[line-1]` is true when the line is test-only code.
    pub test_mask: Vec<bool>,
    /// Function items, in file order.
    pub fns: Vec<FnDef>,
    /// Allow markers, in file order.
    pub markers: Vec<AllowMarker>,
}

impl FileModel {
    /// Parse one file.
    pub fn parse(path: PathBuf, crate_name: &str, raw: String) -> FileModel {
        let Cleaned { clean, comments } = clean_source(&raw);
        let line_starts = line_starts(&clean);
        let n_lines = line_starts.len();
        let test_mask = test_mask(&clean, &line_starts, n_lines);

        let mut markers = Vec::new();
        let mut hot_lines = Vec::new();
        let mut event_lines = Vec::new();
        for (line, text) in &comments {
            let t = text.trim();
            let Some(rest) = t.strip_prefix("ccr-verify:") else {
                continue;
            };
            let rest = rest.trim();
            if rest == "hot_path" {
                hot_lines.push(*line);
            } else if let Some(tail) = rest.strip_prefix("event_path") {
                // The reason is mandatory: `event_path -- why this is rare`.
                let reason = tail.trim().trim_start_matches(['-', '—', ':']).trim();
                if reason.is_empty() {
                    markers.push(AllowMarker {
                        line: *line,
                        rule: "<unparseable: event_path without a reason>".into(),
                        reason: String::new(),
                    });
                } else {
                    event_lines.push(*line);
                }
            } else if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    let rule = args[..close].trim().to_string();
                    let reason = args[close + 1..]
                        .trim()
                        .trim_start_matches(['-', '—', ':'])
                        .trim()
                        .to_string();
                    markers.push(AllowMarker {
                        line: *line,
                        rule,
                        reason,
                    });
                }
            } else {
                // Unknown ccr-verify directive: surface as a marker with an
                // unknown rule so the gate flags it instead of silently
                // ignoring a typo.
                markers.push(AllowMarker {
                    line: *line,
                    rule: format!("<unparseable: {rest}>"),
                    reason: String::new(),
                });
            }
        }

        let fns = parse_fns(&clean, &line_starts, &test_mask, &hot_lines, &event_lines);

        FileModel {
            path,
            crate_name: crate_name.to_string(),
            raw,
            clean,
            line_starts,
            test_mask,
            fns,
            markers,
        }
    }

    /// 1-indexed line containing byte offset `pos` of the cleaned text.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The raw text of a 1-indexed line, trimmed, for finding snippets.
    pub fn snippet(&self, line: usize) -> &str {
        self.raw.lines().nth(line - 1).unwrap_or("").trim()
    }

    /// True when the 1-indexed line is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// Iterate over the cleaned text of each non-test line as
    /// `(line_number, text)`.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.clean
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(n, _)| !self.is_test_line(*n))
    }
}

fn line_starts(s: &str) -> Vec<usize> {
    let mut v = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// Mark every line covered by `#[cfg(test)]`-gated items or `#[test]`
/// functions. Works on cleaned text, so braces inside strings can't confuse
/// the matcher.
fn test_mask(clean: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut from = 0usize;
        while let Some(hit) = clean[from..].find(pat) {
            let at = from + hit;
            from = at + pat.len();
            // Find the gated item's body: the next `{` before any
            // same-level `;` (an item like `#[cfg(test)] use x;` has none).
            let mut j = at + pat.len();
            let bytes = clean.as_bytes();
            let mut depth_paren = 0i32;
            let mut body_start = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth_paren += 1,
                    b')' | b']' => depth_paren -= 1,
                    b';' if depth_paren == 0 => break,
                    b'{' if depth_paren == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_start else { continue };
            let close = match_brace(clean, open);
            let (a, b) = (line_of_at(line_starts, at), line_of_at(line_starts, close));
            for l in a..=b.min(n_lines) {
                mask[l - 1] = true;
            }
        }
    }
    mask
}

fn line_of_at(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte offset of the `}` matching the `{` at `open` (or end of text).
pub fn match_brace(clean: &str, open: usize) -> usize {
    let bytes = clean.as_bytes();
    let mut depth = 0i32;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    clean.len().saturating_sub(1)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn parse_fns(
    clean: &str,
    line_starts: &[usize],
    test_mask: &[bool],
    hot_lines: &[usize],
    event_lines: &[usize],
) -> Vec<FnDef> {
    let bytes = clean.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 2 < bytes.len() {
        // A `fn` keyword: preceded by a non-identifier byte, followed by
        // whitespace.
        if &bytes[i..i + 2] == b"fn"
            && (i == 0 || !is_ident(bytes[i - 1]))
            && bytes.get(i + 2).is_some_and(|b| b.is_ascii_whitespace())
        {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name = clean[name_start..j].to_string();
            // Scan the signature for the body `{` (or `;` for trait
            // signatures / extern decls) at bracket depth 0.
            let mut depth = 0i32;
            let mut body = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b';' if depth == 0 => break,
                    b'{' if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let line = line_of_at(line_starts, i);
            if let Some(open) = body {
                let close = match_brace(clean, open);
                let is_test = test_mask.get(line - 1).copied().unwrap_or(false);
                let hot_root = hot_lines.iter().any(|&hl| hl < line && line - hl <= 3);
                let event_path = event_lines.iter().any(|&el| el < line && line - el <= 3);
                fns.push(FnDef {
                    name,
                    line,
                    body: (open, close),
                    is_test,
                    hot_root,
                    event_path,
                });
                // Continue scanning *inside* the body too (nested fns are
                // rare but real); just move past the signature.
                i = open + 1;
                continue;
            }
            i = j.max(i + 2);
            continue;
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("mem.rs"), "test-crate", src.to_string())
    }

    #[test]
    fn finds_fns_and_bodies() {
        let m = model("fn alpha() { beta(); }\nfn beta() -> u32 { 1 }\n");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!(m.fns[1].line, 2);
        let body = &m.clean[m.fns[0].body.0..=m.fns[0].body.1];
        assert!(body.contains("beta()"));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let m = model("trait T { fn sig(&self) -> u8; fn with_default(&self) { } }");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        let m = model(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(4));
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
    }

    #[test]
    fn markers_parse_with_reasons() {
        let src = "// ccr-verify: allow(nondeterminism) -- wall-clock meter only\nlet t = 0;\n// ccr-verify: hot_path\nfn fast() {}\n// ccr-verify: allow(unwrap-in-lib)\n";
        let m = model(src);
        assert_eq!(m.markers.len(), 2);
        assert_eq!(m.markers[0].rule, "nondeterminism");
        assert_eq!(m.markers[0].reason, "wall-clock meter only");
        assert!(m.markers[1].reason.is_empty());
        assert!(m.fns.iter().any(|f| f.name == "fast" && f.hot_root));
    }

    #[test]
    fn event_path_markers_need_a_reason() {
        let src = "// ccr-verify: event_path -- admission runs off the slot loop\nfn admit() {}\n\n\n\n// ccr-verify: event_path\nfn bare() {}\n";
        let m = model(src);
        assert!(m.fns.iter().any(|f| f.name == "admit" && f.event_path));
        let bare = m.fns.iter().find(|f| f.name == "bare").unwrap();
        assert!(!bare.event_path, "reasonless marker grants nothing");
        assert_eq!(m.markers.len(), 1);
        assert!(m.markers[0].rule.starts_with("<unparseable"));
    }

    #[test]
    fn where_clause_bracket_depth_does_not_confuse_body() {
        let m = model("fn g<T: Into<Vec<u8>>>(x: [u8; 4]) -> u8 where T: Sized { x[0] }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "g");
    }
}
