//! `ccr-verify` — the workspace's static-analysis gate.
//!
//! The CCR-EDF repo's core claims (bit-identical replay for any thread
//! count, an allocation-free slot engine, picosecond-exact deadline
//! arithmetic) are *invariants of the source*, not just properties a test
//! happens to observe. This crate enforces them statically:
//!
//! * [`rules`] — four CCR-specific lint families over a hand-rolled lexer
//!   (the workspace is registry-free, so no `syn`);
//! * [`deps`] — an offline dependency/licensing audit (the `cargo-deny`
//!   stand-in);
//! * an allow-marker mechanism (`// ccr-verify: allow(rule) -- reason`)
//!   that makes every intentional exception machine-readable and
//!   self-explaining.
//!
//! Run it as `cargo run -p ccr-verify` from anywhere in the workspace; it
//! exits non-zero on any finding. `scripts/check.sh` and the CI `verify`
//! job both gate on it.

pub mod callgraph;
pub mod deps;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use model::FileModel;
use rules::{Finding, RuleConfig};
use std::path::{Path, PathBuf};

/// The result of one whole-workspace run.
pub struct Report {
    /// All surviving findings, sorted by path and line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of function items indexed.
    pub fns_indexed: usize,
    /// Number of allow-markers that suppressed a finding.
    pub markers_honoured: usize,
}

/// Recursively collect `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Crate package name from a `Cargo.toml`, if readable.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Find the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parse all workspace sources into [`FileModel`]s. Returns the models and
/// every member manifest (for the deps audit).
pub fn load_workspace(root: &Path) -> (Vec<FileModel>, Vec<PathBuf>) {
    let mut models = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    let root_name =
        package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "workspace-root".into());

    // Root facade crate: src/ only (tests/ and examples/ are test code by
    // definition and exempt from the library rules).
    let mut files = Vec::new();
    rs_files(&root.join("src"), &mut files);

    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            manifests.push(manifest.clone());
            let name = package_name(&manifest).unwrap_or_else(|| "unknown".into());
            let mut crate_files = Vec::new();
            rs_files(&dir.join("src"), &mut crate_files);
            for path in crate_files {
                if let Ok(raw) = std::fs::read_to_string(&path) {
                    let rel = path
                        .strip_prefix(root)
                        .map(|p| p.to_path_buf())
                        .unwrap_or_else(|_| path.clone());
                    models.push(FileModel::parse(rel, &name, raw));
                }
            }
        }
    }
    for path in files {
        if let Ok(raw) = std::fs::read_to_string(&path) {
            let rel = path
                .strip_prefix(root)
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|_| path.clone());
            models.push(FileModel::parse(rel, &root_name, raw));
        }
    }
    (models, manifests)
}

/// Run the full gate over the workspace at `root`.
pub fn run(root: &Path, cfg: &RuleConfig) -> Report {
    let (models, manifests) = load_workspace(root);
    let files_scanned = models.len();
    let fns_indexed = models.iter().map(|m| m.fns.len()).sum();
    let total_markers: usize = models.iter().map(|m| m.markers.len()).sum();

    let mut findings = rules::run_all(&models, cfg);
    findings.extend(rules::rule_protocol_pin(root, &models, cfg));
    findings.extend(deps::audit(root, &manifests));
    findings.sort();

    let unused_marker_findings = findings
        .iter()
        .filter(|f| f.rule == rules::RULE_MARKER)
        .count();
    Report {
        findings,
        files_scanned,
        fns_indexed,
        markers_honoured: total_markers.saturating_sub(unused_marker_findings),
    }
}
