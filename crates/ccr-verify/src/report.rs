//! Machine-readable reports: `--emit json`, stable finding IDs, and the
//! checked-in baseline diff.
//!
//! CI wants to *diff* findings, not grep stdout: a new finding should fail
//! the build even when a hundred pre-existing ones are grandfathered, and a
//! fixed finding should be removable from the baseline without touching
//! anything else. That needs IDs that survive unrelated edits:
//!
//! * **not** the line number (any edit above the finding moves it), so the
//!   ID hashes `rule | path | snippet | occurrence-index` — the
//!   occurrence-index disambiguates identical snippets in one file and is
//!   counted per (rule, path, snippet) triple, so inserting an unrelated
//!   finding does not renumber the rest;
//! * hashed with FNV-1a 64 (dependency-free, stable across platforms and
//!   releases — `DefaultHasher` explicitly guarantees neither).
//!
//! The JSON is hand-rolled and canonical: findings pre-sorted, keys in a
//! fixed order, strings escaped per RFC 8259. Two runs over the same tree
//! produce byte-identical output (asserted by a workspace test), so the
//! baseline can be compared with `cmp` and stored in git.

use crate::rules::Finding;
use crate::Report;
use std::collections::{BTreeMap, BTreeSet};

/// FNV-1a 64-bit — tiny, stable, good enough for content addressing a few
/// hundred findings (collisions would need ~2³² of them).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable ID of a finding: `rule|path|snippet|occurrence`, hashed.
pub fn finding_id(f: &Finding, occurrence: usize) -> String {
    let key = format!("{}|{}|{}|{}", f.rule, f.path, f.snippet.trim(), occurrence);
    format!("{:016x}", fnv1a(key.as_bytes()))
}

/// Assign every finding its stable ID, in report order.
pub fn finding_ids(findings: &[Finding]) -> Vec<String> {
    let mut seen: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let key = (
                f.rule.to_string(),
                f.path.clone(),
                f.snippet.trim().to_string(),
            );
            let n = seen.entry(key).or_insert(0);
            let id = finding_id(f, *n);
            *n += 1;
            id
        })
        .collect()
}

/// Escape a string per RFC 8259.
fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a whole report as canonical JSON (trailing newline, so the
/// file is diff- and POSIX-friendly when checked in).
pub fn to_json(report: &Report) -> String {
    let ids = finding_ids(&report.findings);
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"fns_indexed\": {},\n", report.fns_indexed));
    out.push_str(&format!(
        "  \"markers_honoured\": {},\n",
        report.markers_honoured
    ));
    out.push_str("  \"findings\": [");
    for (i, (f, id)) in report.findings.iter().zip(&ids).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str("\"id\": ");
        esc(id, &mut out);
        out.push_str(", \"rule\": ");
        esc(f.rule, &mut out);
        out.push_str(", \"path\": ");
        esc(&f.path, &mut out);
        out.push_str(&format!(", \"line\": {}", f.line));
        out.push_str(", \"message\": ");
        esc(&f.message, &mut out);
        out.push_str(", \"snippet\": ");
        esc(f.snippet.trim(), &mut out);
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Extract the finding IDs from a report JSON produced by [`to_json`].
/// This is a scraper for our own canonical format, not a JSON parser: it
/// reads every `"id": "<16 hex>"` pair.
pub fn ids_in_json(json: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0;
    while let Some(hit) = json[from..].find("\"id\": \"") {
        let start = from + hit + 7;
        from = start;
        if let Some(end) = json[start..].find('"') {
            let id = &json[start..start + end];
            if id.len() == 16 && id.bytes().all(|b| b.is_ascii_hexdigit()) {
                out.insert(id.to_string());
            }
        }
    }
    out
}

/// Compare a fresh report against the checked-in baseline. Returns
/// `(new, fixed)`: IDs present now but not in the baseline, and IDs in the
/// baseline that no longer occur (stale grandfathering — also an error, so
/// the baseline always reflects reality).
pub fn diff_baseline(report: &Report, baseline_json: &str) -> (Vec<String>, Vec<String>) {
    let current: BTreeSet<String> = finding_ids(&report.findings).into_iter().collect();
    let baseline = ids_in_json(baseline_json);
    let new = current.difference(&baseline).cloned().collect();
    let fixed = baseline.difference(&current).cloned().collect();
    (new, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: usize, snippet: &str) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files_scanned: 2,
            fns_indexed: 10,
            markers_honoured: 1,
        }
    }

    #[test]
    fn ids_survive_line_drift() {
        let a = finding("r", "p.rs", 10, "let x = y;");
        let mut b = a.clone();
        b.line = 99; // unrelated edits above moved it
        assert_eq!(finding_id(&a, 0), finding_id(&b, 0));
    }

    #[test]
    fn duplicate_snippets_get_distinct_ids() {
        let fs = vec![
            finding("r", "p.rs", 1, "x.lock()"),
            finding("r", "p.rs", 5, "x.lock()"),
        ];
        let ids = finding_ids(&fs);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn json_roundtrips_ids_and_is_stable() {
        let rep = report(vec![
            finding("r", "a \"quoted\" path.rs", 1, "snippet with \\ and \t"),
            finding("s", "b.rs", 2, "y"),
        ]);
        let j1 = to_json(&rep);
        let j2 = to_json(&rep);
        assert_eq!(j1, j2, "serialization is deterministic");
        assert_eq!(
            ids_in_json(&j1),
            finding_ids(&rep.findings).into_iter().collect()
        );
        assert!(j1.ends_with("}\n"));
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let j = to_json(&report(Vec::new()));
        assert!(j.contains("\"findings\": []"));
        assert!(ids_in_json(&j).is_empty());
    }

    #[test]
    fn baseline_diff_reports_new_and_fixed() {
        let old = report(vec![
            finding("r", "a.rs", 1, "x"),
            finding("r", "b.rs", 2, "y"),
        ]);
        let baseline = to_json(&old);
        let now = report(vec![
            finding("r", "a.rs", 1, "x"),
            finding("r", "c.rs", 3, "z"),
        ]);
        let (new, fixed) = diff_baseline(&now, &baseline);
        assert_eq!(new.len(), 1, "c.rs finding is new");
        assert_eq!(fixed.len(), 1, "b.rs finding is gone but grandfathered");
        let (n2, f2) = diff_baseline(&old, &baseline);
        assert!(n2.is_empty() && f2.is_empty());
    }
}
