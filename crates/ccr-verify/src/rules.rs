//! The CCR-EDF-specific lint rules.
//!
//! Four rule families (see `DESIGN.md` §10 for the full rationale table):
//!
//! * `alloc-in-hot-path` — no allocation or cloning in functions reachable
//!   from the slot-engine hot-path roots. The walk distinguishes steady
//!   state from rare events: `// ccr-verify: event_path -- reason` marks a
//!   function (admission, fault reconfiguration) as off the per-slot loop,
//!   pruning it and everything only reachable through it.
//! * `nondeterminism` — no wall clocks, OS randomness, ambient I/O, or
//!   hash-order iteration in the deterministic model crates.
//! * `time-cast` — no lossy `as` casts on time-flavoured values and no raw
//!   `TimeDelta(..)`/`SimTime(..)` tuple construction outside the newtype
//!   module; use the checked `try_from_ps_f64`-style constructors.
//! * `unwrap-in-lib` — no bare `.unwrap()` (or empty-message `.expect("")`)
//!   in non-test library code; state the invariant in an `expect` message
//!   or return a typed error.
//!
//! Every finding can be silenced by a `// ccr-verify: allow(<rule>) --
//! reason` marker on the offending line or the line above; the reason is
//! mandatory and unused markers are themselves findings.

use crate::callgraph::CallGraph;
use crate::model::{FileModel, FnDef};
use std::collections::BTreeSet;
use std::fmt;

pub const RULE_ALLOC: &str = "alloc-in-hot-path";
pub const RULE_DET: &str = "nondeterminism";
pub const RULE_CAST: &str = "time-cast";
pub const RULE_UNWRAP: &str = "unwrap-in-lib";
pub const RULE_DEPS: &str = "deps";
pub const RULE_MARKER: &str = "allow-marker";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File the finding is in (workspace-relative where possible).
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Which crates each rule family applies to, and which functions root the
/// hot-path walk.
pub struct RuleConfig {
    /// Crates whose library code must be deterministic (rule 2 + 3).
    pub det_crates: BTreeSet<String>,
    /// Crates whose library code must not `unwrap()` (rule 4).
    pub lib_crates: BTreeSet<String>,
    /// `(crate, fn name)` pairs that root the hot-path walk in addition to
    /// `ccr-verify: hot_path` markers.
    pub hot_roots: Vec<(String, String)>,
    /// Path suffixes exempt from the `time-cast` rule (the sanctioned
    /// newtype impls live here).
    pub cast_exempt: Vec<String>,
    /// Path suffixes exempt from the `nondeterminism` rule: the sim↔wall
    /// bridge files whose entire purpose is wall clocks and sockets. The
    /// deterministic core behind them stays fully swept.
    pub det_exempt: Vec<String>,
}

impl RuleConfig {
    /// The workspace's production configuration.
    pub fn workspace() -> RuleConfig {
        let det: &[&str] = &[
            "ccr-edf",
            "ccr-sim",
            "ccr-phys",
            "ccr-multiring",
            "ccr-calculus",
            "ccr-traffic",
            "ccr-gateway",
            "cc-fpr",
        ];
        RuleConfig {
            det_crates: det.iter().map(|s| s.to_string()).collect(),
            lib_crates: det.iter().map(|s| s.to_string()).collect(),
            hot_roots: vec![
                ("ccr-edf".into(), "step_slot".into()),
                ("ccr-edf".into(), "arbitrate_into".into()),
                ("ccr-multiring".into(), "step_slot".into()),
            ],
            cast_exempt: vec!["sim/src/time.rs".into()],
            det_exempt: vec![
                // The gateway's wall-time edge: clocks, sockets, and the
                // thread handoff. Everything behind Gateway::ingress is sim
                // time and stays in the sweep.
                "gateway/src/clock.rs".into(),
                "gateway/src/udp.rs".into(),
                "gateway/src/handoff.rs".into(),
            ],
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find occurrences of `pat` in `text` honouring identifier boundaries on
/// whichever ends of the pattern are identifier characters.
fn token_positions(text: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let first_is_ident = pat.as_bytes().first().is_some_and(|&b| is_ident(b));
    let last_is_ident = pat.as_bytes().last().is_some_and(|&b| is_ident(b));
    let mut from = 0;
    while let Some(hit) = text[from..].find(pat) {
        let at = from + hit;
        from = at + 1;
        if first_is_ident && at > 0 && is_ident(text.as_bytes()[at - 1]) {
            continue;
        }
        if last_is_ident
            && text
                .as_bytes()
                .get(at + pat.len())
                .is_some_and(|&b| is_ident(b))
        {
            continue;
        }
        out.push(at);
    }
    out
}

// ---------------------------------------------------------------------
// Rule 1: alloc-in-hot-path
// ---------------------------------------------------------------------

const ALLOC_TOKENS: &[(&str, &str)] = &[
    ("vec!", "vec! allocates"),
    ("format!", "format! allocates a String"),
    ("Vec::new", "Vec::new allocates on first push"),
    ("VecDeque::new", "VecDeque::new allocates on first push"),
    ("Box::new", "Box::new heap-allocates"),
    ("String::new", "String::new allocates on first push"),
    (".to_vec(", "to_vec clones into a fresh allocation"),
    (".to_owned(", "to_owned clones into a fresh allocation"),
    (".to_string(", "to_string allocates"),
    (".collect(", "collect usually allocates its container"),
    ("with_capacity(", "with_capacity allocates"),
    (
        ".clone(",
        "clone may allocate; hot-path state must be reused",
    ),
];

/// Deny allocation-shaped calls in every function reachable from the
/// hot-path roots — except through `event_path`-marked functions, which
/// handle rare events (admission, faults, teardown) and are pruned from
/// the walk along with everything only reachable through them.
pub fn rule_alloc(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let mut roots = Vec::new();
    let mut pruned = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            if g.event_path {
                pruned.insert((fi, gi));
                continue;
            }
            let named_root = cfg
                .hot_roots
                .iter()
                .any(|(c, n)| *c == f.crate_name && *n == g.name);
            if g.hot_root || named_root {
                roots.push((fi, gi));
            }
        }
    }
    let reachable = graph.reachable_pruned(files, &roots, &pruned);
    // Reconstruct one example call chain per reached function for the
    // diagnostic, so the reader can audit (and, if bogus, break) the edge.
    let chain_of = |mut at: (usize, usize)| -> String {
        let mut names = vec![files[at.0].fns[at.1].name.clone()];
        while let Some(Some(parent)) = reachable.get(&at) {
            at = *parent;
            names.push(files[at.0].fns[at.1].name.clone());
            if names.len() > 12 {
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    };
    let mut findings = Vec::new();
    for &(fi, gi) in reachable.keys() {
        let f = &files[fi];
        let g: &FnDef = &f.fns[gi];
        let body = &f.clean[g.body.0..=g.body.1];
        for (tok, why) in ALLOC_TOKENS {
            for at in token_positions(body, tok) {
                let line = f.line_of(g.body.0 + at);
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line,
                    rule: RULE_ALLOC,
                    message: format!(
                        "`{}` inside `{}` (hot via {}): {}",
                        tok.trim_matches(&['.', '('][..]),
                        g.name,
                        chain_of((fi, gi)),
                        why
                    ),
                    snippet: f.snippet(line).to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 2: nondeterminism
// ---------------------------------------------------------------------

const DET_TOKENS: &[(&str, &str)] = &[
    ("Instant", "wall-clock reads make runs irreproducible"),
    ("SystemTime", "wall-clock reads make runs irreproducible"),
    ("thread_rng", "OS randomness breaks bit-identical replay"),
    (
        "rand::",
        "external RNGs break bit-identical replay; use ccr_sim::rng",
    ),
    (
        "std::fs::",
        "ambient file I/O does not belong in the model crates",
    ),
    (
        "std::env::",
        "environment reads make behaviour machine-dependent",
    ),
    ("println!", "model crates must not write to stdout"),
    ("eprintln!", "model crates must not write to stderr"),
    ("dbg!", "leftover debugging macro"),
];

const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Identifiers bound to `HashMap`/`HashSet` in this file: struct fields
/// (`name: HashMap<..>`) and let-bindings (`let name = HashMap::new()`).
fn hash_bound_idents(clean: &str) -> BTreeSet<String> {
    let bytes = clean.as_bytes();
    let mut out = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in token_positions(clean, ty) {
            // Walk left over whitespace to the preceding `:` or `=`.
            let mut j = at;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 {
                continue;
            }
            let sep = bytes[j - 1];
            if sep != b':' && sep != b'=' {
                continue;
            }
            let mut k = j - 1;
            if sep == b':' && k > 0 && bytes[k - 1] == b':' {
                // `::` path separator, not a type ascription
                continue;
            }
            while k > 0 && bytes[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            let end = k;
            while k > 0 && is_ident(bytes[k - 1]) {
                k -= 1;
            }
            if k < end {
                out.insert(clean[k..end].to_string());
            }
        }
    }
    out
}

/// Deny wall clocks, OS randomness, ambient I/O and hash-order iteration
/// in the deterministic crates.
pub fn rule_determinism(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.det_crates.contains(&f.crate_name) {
            continue;
        }
        let path_str = f.path.display().to_string();
        if cfg.det_exempt.iter().any(|suf| path_str.ends_with(suf)) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            for (tok, why) in DET_TOKENS {
                if !token_positions(text, tok).is_empty() {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_DET,
                        message: format!("`{tok}` in a deterministic crate: {why}"),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
        // Hash-order iteration: only for identifiers this file binds to a
        // hash container.
        let idents = hash_bound_idents(&f.clean);
        for h in &idents {
            for (line_no, text) in f.code_lines() {
                let mut hit = false;
                for m in HASH_ITER_METHODS {
                    let pat = format!("{h}{m}");
                    if !token_positions(text, &pat).is_empty() {
                        hit = true;
                    }
                }
                if !hit && for_loop_over(text, h) {
                    hit = true;
                }
                if hit {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_DET,
                        message: format!(
                            "iteration over hash container `{h}`: hash order is \
                             nondeterministic — use a BTreeMap/BTreeSet or sort first"
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
    }
    findings
}

/// Does this line `for .. in ..` over identifier `h` (possibly behind
/// `&`, `&mut` or `self.`)?
fn for_loop_over(line: &str, h: &str) -> bool {
    if !line.contains("for ") {
        return false;
    }
    let Some(pos) = line.find(" in ") else {
        return false;
    };
    let mut rest = line[pos + 4..].trim_start();
    rest = rest.trim_start_matches('&');
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    rest = rest.strip_prefix("self.").unwrap_or(rest);
    let ident_len = rest.bytes().take_while(|&b| is_ident(b)).count();
    &rest[..ident_len] == h
}

// ---------------------------------------------------------------------
// Rule 3: time-cast
// ---------------------------------------------------------------------

const INT_CASTS: &[&str] = &["as u64", "as u32", "as i64"];
const FLOAT_EVIDENCE: &[&str] = &["f64", "round(", "ceil(", "floor(", ".ln("];

/// Deny lossy float→integer casts on time-flavoured lines and raw
/// `TimeDelta(..)`/`SimTime(..)` construction outside the newtype module.
pub fn rule_time_cast(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.det_crates.contains(&f.crate_name) {
            continue;
        }
        let path_str = f.path.display().to_string();
        if cfg.cast_exempt.iter().any(|suf| path_str.ends_with(suf)) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            let int_cast = INT_CASTS
                .iter()
                .any(|c| !token_positions(text, c).is_empty());
            if int_cast {
                // Boundary-aware matching so `div_ceil(`/`log2_ceil(` do not
                // count as float evidence.
                let floaty = FLOAT_EVIDENCE
                    .iter()
                    .any(|e| !token_positions(text, e).is_empty());
                let psy = !token_positions(text, "from_ps(").is_empty()
                    || !token_positions(text, "from_ns(").is_empty();
                if floaty || psy {
                    findings.push(Finding {
                        path: path_str.clone(),
                        line: line_no,
                        rule: RULE_CAST,
                        message: "lossy `as` cast on a time-flavoured value: NaN/negative/huge \
                                  inputs silently wrap — use TimeDelta::try_from_ps_f64 or a \
                                  checked conversion"
                            .into(),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
            for ctor in ["TimeDelta(", "SimTime("] {
                if !token_positions(text, ctor).is_empty() {
                    findings.push(Finding {
                        path: path_str.clone(),
                        line: line_no,
                        rule: RULE_CAST,
                        message: format!(
                            "raw `{}..)` tuple construction bypasses the checked newtype \
                             constructors; use from_ps/try_from_ps_f64",
                            ctor
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 4: unwrap-in-lib
// ---------------------------------------------------------------------

/// Deny bare `.unwrap()` / `.unwrap_unchecked()` / empty-message
/// `.expect("")` in non-test library code.
pub fn rule_unwrap(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.lib_crates.contains(&f.crate_name) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            for pat in [".unwrap()", ".unwrap_unchecked()"] {
                if text.contains(pat) {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_UNWRAP,
                        message: format!(
                            "bare `{pat}` in library code: state the invariant with \
                             `.expect(\"invariant: ...\")` or return a typed error"
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
        // Empty expect-messages need the raw text (strings are blanked in
        // the cleaned copy).
        for (i, raw_line) in f.raw.lines().enumerate() {
            let line_no = i + 1;
            if f.is_test_line(line_no) {
                continue;
            }
            if raw_line.contains(".expect(\"\")") {
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line: line_no,
                    rule: RULE_UNWRAP,
                    message: "`.expect(\"\")` with an empty message is an unwrap in disguise"
                        .into(),
                    snippet: f.snippet(line_no).to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Marker application
// ---------------------------------------------------------------------

/// Apply allow-markers: drop suppressed findings, then report invalid or
/// unused markers as findings of their own.
pub fn apply_markers(files: &[FileModel], findings: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![Vec::new(); files.len()];
    for (fi, f) in files.iter().enumerate() {
        used[fi] = vec![false; f.markers.len()];
    }
    let mut kept = Vec::new();
    'next: for finding in findings {
        for (fi, f) in files.iter().enumerate() {
            if f.path.display().to_string() != finding.path {
                continue;
            }
            for (mi, m) in f.markers.iter().enumerate() {
                let covers = m.line == finding.line || m.line + 1 == finding.line;
                if covers && m.rule == finding.rule && !m.reason.is_empty() {
                    used[fi][mi] = true;
                    continue 'next;
                }
            }
        }
        kept.push(finding);
    }
    for (fi, f) in files.iter().enumerate() {
        for (mi, m) in f.markers.iter().enumerate() {
            if m.rule.starts_with("<unparseable") {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!("unparseable ccr-verify directive {}", m.rule),
                    snippet: f.snippet(m.line).to_string(),
                });
            } else if m.reason.is_empty() {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!(
                        "allow({}) without a reason: every exception must explain itself",
                        m.rule
                    ),
                    snippet: f.snippet(m.line).to_string(),
                });
            } else if !used[fi][mi] {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!(
                        "allow({}) suppresses nothing — stale marker, remove it",
                        m.rule
                    ),
                    snippet: f.snippet(m.line).to_string(),
                });
            }
        }
    }
    kept.sort();
    kept.dedup();
    kept
}

/// Run every source rule (not the deps audit) over the given models.
pub fn run_all(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rule_alloc(files, cfg));
    findings.extend(rule_determinism(files, cfg));
    findings.extend(rule_time_cast(files, cfg));
    findings.extend(rule_unwrap(files, cfg));
    apply_markers(files, findings)
}
