//! The CCR-EDF-specific lint rules.
//!
//! Eight rule families (see `DESIGN.md` §10 for the full rationale table):
//!
//! * `alloc-in-hot-path` — no allocation or cloning in functions reachable
//!   from the slot-engine hot-path roots. The walk distinguishes steady
//!   state from rare events: `// ccr-verify: event_path -- reason` marks a
//!   function (admission, fault reconfiguration) as off the per-slot loop,
//!   pruning it and everything only reachable through it.
//! * `blocking-in-hot-path` — no sleeps, mutex locks, blocking receives or
//!   socket waits reachable from the hot roots **or** the gateway pump
//!   roots: a slot engine that can park mid-slot cannot certify deadlines.
//! * `panic-arith` — no unchecked `+ - * /` or direct indexing on
//!   time/sequence-flavoured values reachable from the hot/pump roots;
//!   overflow panics in debug and silently wraps a deadline in release.
//! * `dimension-mix` — no `+`/`-` mixing picosecond-, slot- and
//!   byte-flavoured identifiers without a named conversion; the paper's
//!   timing model makes unit confusion fatal (a slot count added to a
//!   picosecond deadline admits garbage).
//! * `nondeterminism` — no wall clocks, OS randomness, ambient I/O, or
//!   hash-order iteration in the deterministic model crates.
//! * `time-cast` — no lossy `as` casts on time-flavoured values and no raw
//!   `TimeDelta(..)`/`SimTime(..)` tuple construction outside the newtype
//!   module; use the checked `try_from_ps_f64`-style constructors.
//! * `unwrap-in-lib` — no bare `.unwrap()` (or empty-message `.expect("")`)
//!   in non-test library code; state the invariant in an `expect` message
//!   or return a typed error.
//! * `protocol-pin` — declaratively pinned code fragments (the parallel
//!   chunk-claim protocol) must appear verbatim both at their anchor and in
//!   every mirror (the loom model), so the model checker and the
//!   implementation cannot drift apart silently.
//!
//! The hot-path walks ride on the type-aware call graph: trait-dispatched
//! calls fan out to every impl, and each finding prints the resolved chain
//! including the `trait::method → impl` edge taken.
//!
//! Every source finding can be silenced by a `// ccr-verify: allow(<rule>)
//! -- reason` marker on the offending line or the line above; the reason is
//! mandatory and unused markers are themselves findings.

use crate::callgraph::{CallGraph, FnRef, ReachMap};
use crate::model::{FileModel, FnDef};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

pub const RULE_ALLOC: &str = "alloc-in-hot-path";
pub const RULE_BLOCK: &str = "blocking-in-hot-path";
pub const RULE_PANIC: &str = "panic-arith";
pub const RULE_DIM: &str = "dimension-mix";
pub const RULE_DET: &str = "nondeterminism";
pub const RULE_CAST: &str = "time-cast";
pub const RULE_UNWRAP: &str = "unwrap-in-lib";
pub const RULE_DEPS: &str = "deps";
pub const RULE_MARKER: &str = "allow-marker";
pub const RULE_PIN: &str = "protocol-pin";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File the finding is in (workspace-relative where possible).
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// One declaratively pinned protocol: named string fragments defined as
/// `pub const NAME: &str = "..";` in the anchor file must appear verbatim
/// at least twice in the anchor (definition + the real code) and at least
/// once in every mirror file.
#[derive(Debug, Clone)]
pub struct ProtocolPin {
    /// Display name of the pinned protocol.
    pub name: String,
    /// Workspace-relative path of the file defining the fragments.
    pub anchor: String,
    /// Workspace-relative paths (possibly outside the scanned crates, e.g.
    /// the loom model) that must embed each fragment verbatim.
    pub mirrors: Vec<String>,
}

/// Which crates each rule family applies to, and which functions root the
/// hot-path walk.
pub struct RuleConfig {
    /// Crates whose library code must be deterministic (rule 2 + 3).
    pub det_crates: BTreeSet<String>,
    /// Crates whose library code must not `unwrap()` (rule 4).
    pub lib_crates: BTreeSet<String>,
    /// `(crate, fn name)` pairs that root the hot-path walk in addition to
    /// `ccr-verify: hot_path` markers.
    pub hot_roots: Vec<(String, String)>,
    /// `(crate, fn name)` pairs rooting the gateway pump walks. Pumps join
    /// the blocking and panic-arith walks but **not** the alloc walk: the
    /// gateway copies each datagram into sim-owned buffers by design (the
    /// wire edge is allowed to allocate; the slot engine behind it is not).
    pub pump_roots: Vec<(String, String)>,
    /// Path suffixes exempt from the `time-cast` rule (the sanctioned
    /// newtype impls live here).
    pub cast_exempt: Vec<String>,
    /// Path suffixes exempt from the `nondeterminism` rule: the sim↔wall
    /// bridge files whose entire purpose is wall clocks and sockets. The
    /// deterministic core behind them stays fully swept.
    pub det_exempt: Vec<String>,
    /// Declaratively pinned protocols (see [`ProtocolPin`]).
    pub protocol_pins: Vec<ProtocolPin>,
}

impl RuleConfig {
    /// The workspace's production configuration.
    pub fn workspace() -> RuleConfig {
        let det: &[&str] = &[
            "ccr-edf",
            "ccr-sim",
            "ccr-phys",
            "ccr-multiring",
            "ccr-calculus",
            "ccr-traffic",
            "ccr-gateway",
            "ccr-synth",
            "cc-fpr",
        ];
        RuleConfig {
            det_crates: det.iter().map(|s| s.to_string()).collect(),
            lib_crates: det.iter().map(|s| s.to_string()).collect(),
            hot_roots: vec![
                ("ccr-edf".into(), "step_slot".into()),
                ("ccr-edf".into(), "arbitrate_into".into()),
                ("ccr-multiring".into(), "step_slot".into()),
            ],
            pump_roots: vec![
                ("ccr-gateway".into(), "ingress".into()),
                ("ccr-gateway".into(), "pace".into()),
                ("ccr-gateway".into(), "reconcile".into()),
                ("ccr-gateway".into(), "poll_egress".into()),
            ],
            cast_exempt: vec!["sim/src/time.rs".into()],
            det_exempt: vec![
                // The gateway's wall-time edge: clocks, sockets, and the
                // thread handoff. Everything behind Gateway::ingress is sim
                // time and stays in the sweep.
                "gateway/src/clock.rs".into(),
                "gateway/src/udp.rs".into(),
                "gateway/src/handoff.rs".into(),
            ],
            protocol_pins: vec![ProtocolPin {
                name: "parallel-chunk-claim".into(),
                anchor: "crates/sim/src/parallel.rs".into(),
                mirrors: vec!["verify/loom/src/lib.rs".into()],
            }],
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find occurrences of `pat` in `text` honouring identifier boundaries on
/// whichever ends of the pattern are identifier characters.
fn token_positions(text: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let first_is_ident = pat.as_bytes().first().is_some_and(|&b| is_ident(b));
    let last_is_ident = pat.as_bytes().last().is_some_and(|&b| is_ident(b));
    let mut from = 0;
    while let Some(hit) = text[from..].find(pat) {
        let at = from + hit;
        from = at + 1;
        if first_is_ident && at > 0 && is_ident(text.as_bytes()[at - 1]) {
            continue;
        }
        if last_is_ident
            && text
                .as_bytes()
                .get(at + pat.len())
                .is_some_and(|&b| is_ident(b))
        {
            continue;
        }
        out.push(at);
    }
    out
}

// ---------------------------------------------------------------------
// Rule 1: alloc-in-hot-path
// ---------------------------------------------------------------------

const ALLOC_TOKENS: &[(&str, &str)] = &[
    ("vec!", "vec! allocates"),
    ("format!", "format! allocates a String"),
    ("Vec::new", "Vec::new allocates on first push"),
    ("VecDeque::new", "VecDeque::new allocates on first push"),
    ("Box::new", "Box::new heap-allocates"),
    ("String::new", "String::new allocates on first push"),
    (".to_vec(", "to_vec clones into a fresh allocation"),
    (".to_owned(", "to_owned clones into a fresh allocation"),
    (".to_string(", "to_string allocates"),
    (".collect(", "collect usually allocates its container"),
    ("with_capacity(", "with_capacity allocates"),
    (
        ".clone(",
        "clone may allocate; hot-path state must be reused",
    ),
];

/// Collect the hot-walk roots and event-path pruning set. `pumps` adds
/// the gateway pump roots (blocking / panic-arith walks) on top of the
/// slot-engine hot roots and `hot_path` markers.
fn hot_roots(files: &[FileModel], cfg: &RuleConfig, pumps: bool) -> (Vec<FnRef>, BTreeSet<FnRef>) {
    let mut roots = Vec::new();
    let mut pruned = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            if g.event_path {
                pruned.insert((fi, gi));
                continue;
            }
            let named = |set: &[(String, String)]| {
                set.iter().any(|(c, n)| *c == f.crate_name && *n == g.name)
            };
            if g.hot_root || named(&cfg.hot_roots) || (pumps && named(&cfg.pump_roots)) {
                roots.push((fi, gi));
            }
        }
    }
    (roots, pruned)
}

/// Reconstruct one example call chain to `at` for a diagnostic, so the
/// reader can audit (and, if bogus, break) the edge. Trait-dispatch edges
/// print the resolution taken: `step [dyn Mac::arb -> Fast] -> arb`.
fn chain_of(files: &[FileModel], reachable: &ReachMap, mut at: FnRef) -> String {
    let mut parts = vec![files[at.0].fns[at.1].name.clone()];
    while let Some(Some((parent, label))) = reachable.get(&at) {
        if let Some(l) = label {
            parts.push(format!("[{l}]"));
        }
        at = *parent;
        parts.push(files[at.0].fns[at.1].name.clone());
        if parts.len() > 16 {
            break;
        }
    }
    parts.reverse();
    parts.join(" -> ")
}

/// Deny allocation-shaped calls in every function reachable from the
/// hot-path roots — except through `event_path`-marked functions, which
/// handle rare events (admission, faults, teardown) and are pruned from
/// the walk along with everything only reachable through them.
pub fn rule_alloc(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let (roots, pruned) = hot_roots(files, cfg, false);
    let reachable = graph.reachable_pruned(files, &roots, &pruned);
    let mut findings = Vec::new();
    for &(fi, gi) in reachable.keys() {
        let f = &files[fi];
        let g: &FnDef = &f.fns[gi];
        let body = &f.clean[g.body.0..=g.body.1];
        for (tok, why) in ALLOC_TOKENS {
            for at in token_positions(body, tok) {
                let line = f.line_of(g.body.0 + at);
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line,
                    rule: RULE_ALLOC,
                    message: format!(
                        "`{}` inside `{}` (hot via {}): {}",
                        tok.trim_matches(&['.', '('][..]),
                        g.name,
                        chain_of(files, &reachable, (fi, gi)),
                        why
                    ),
                    snippet: f.snippet(line).to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: blocking-in-hot-path
// ---------------------------------------------------------------------

const BLOCK_TOKENS: &[(&str, &str)] = &[
    ("sleep(", "sleeping parks the thread mid-slot"),
    (".lock(", "Mutex::lock can block on contention"),
    (".recv(", "blocking receive parks until a message arrives"),
    (".recv_timeout(", "timed receive still parks the thread"),
    (".recv_from(", "blocking socket receive"),
    (".accept(", "blocking socket accept"),
    (".wait(", "condvar/barrier wait parks the thread"),
    (
        ".wait_timeout(",
        "timed condvar wait still parks the thread",
    ),
    (".join()", "joining a thread blocks until it exits"),
    ("park(", "thread::park blocks indefinitely"),
    ("read_to_end(", "blocking stream read"),
    ("read_to_string(", "blocking stream read"),
];

/// Deny blocking-shaped calls in every function reachable from the hot
/// roots *or* the gateway pump roots: a slot engine (or the wire pump
/// feeding it) that can park mid-slot cannot certify any deadline.
pub fn rule_blocking(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let (roots, pruned) = hot_roots(files, cfg, true);
    let reachable = graph.reachable_pruned(files, &roots, &pruned);
    let mut findings = Vec::new();
    for &(fi, gi) in reachable.keys() {
        let f = &files[fi];
        let g: &FnDef = &f.fns[gi];
        let body = &f.clean[g.body.0..=g.body.1];
        // Method names this body calls on *workspace* receivers: a
        // `.accept(..)` on a workspace type is that type's method (whose
        // body the walk scans anyway), not the std blocking primitive.
        let local_methods = graph.workspace_method_names(files, (fi, gi));
        for (tok, why) in BLOCK_TOKENS {
            let method = tok.trim_matches(&['.', '(', ')'][..]);
            if tok.starts_with('.') && local_methods.contains(method) {
                continue;
            }
            for at in token_positions(body, tok) {
                let line = f.line_of(g.body.0 + at);
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line,
                    rule: RULE_BLOCK,
                    message: format!(
                        "`{}` inside `{}` (hot via {}): {}",
                        tok.trim_matches(&['.', '('][..]),
                        g.name,
                        chain_of(files, &reachable, (fi, gi)),
                        why
                    ),
                    snippet: f.snippet(line).to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rules: panic-arith and dimension-mix (flavoured-operand analysis)
// ---------------------------------------------------------------------

/// Identifier segments that mark a value as time- or sequence-flavoured.
const FLAVOUR_SEGS: &[&str] = &[
    "ps", "ns", "us", "ms", "seq", "slot", "slots", "deadline", "time", "stamp", "now", "tick",
    "ticks", "epoch", "horizon", "period", "budget", "laxity",
];

/// Is any `_`-separated segment of `ident` time/seq-flavoured?
fn flavoured(ident: &str) -> bool {
    ident.split('_').any(|s| FLAVOUR_SEGS.contains(&s))
}

/// The operand adjacent to a binary operator, as an identifier when one
/// can be read off the line.
fn left_operand(line: &str, op_at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut k = op_at;
    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    if k == 0 {
        return None;
    }
    if bytes[k - 1] == b')' {
        // `f(x) + y` — attribute the operand to the call `f`.
        let mut depth = 0i32;
        let mut p = k - 1;
        loop {
            match bytes[p] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if p == 0 {
                return None;
            }
            p -= 1;
        }
        let mut s = p;
        while s > 0 && is_ident(bytes[s - 1]) {
            s -= 1;
        }
        if s == p {
            return None;
        }
        return Some(line[s..p].to_string());
    }
    if !is_ident(bytes[k - 1]) {
        return None;
    }
    let end = k;
    while k > 0 && is_ident(bytes[k - 1]) {
        k -= 1;
    }
    let ident = &line[k..end];
    if ident.as_bytes()[0].is_ascii_digit() {
        return None; // numeric literal
    }
    Some(ident.to_string())
}

/// The operand to the right of a binary operator, as an identifier.
fn right_operand(line: &str, after: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut k = after;
    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
        k += 1;
    }
    // Borrows/derefs don't change the flavour; `self.` prefixes peel off.
    while k < bytes.len() && (bytes[k] == b'&' || bytes[k] == b'*') {
        k += 1;
    }
    let start = k;
    while k < bytes.len() && is_ident(bytes[k]) {
        k += 1;
    }
    if k == start || bytes[start].is_ascii_digit() {
        return None;
    }
    let ident = &line[start..k];
    if ident == "self" && bytes.get(k) == Some(&b'.') {
        return right_operand(line, k + 1);
    }
    Some(ident.to_string())
}

/// Binary `+ - * /` operator positions on a line, excluding compound
/// assignment (`+=`), arrows (`->`), doubled operators and unary uses.
fn binary_op_positions(line: &str) -> Vec<(usize, char)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        let op = match b {
            b'+' | b'-' | b'*' | b'/' => b as char,
            _ => continue,
        };
        let next = bytes.get(i + 1);
        if next == Some(&b'=') || next == Some(&b'>') || next == Some(&b) {
            continue;
        }
        if i > 0 {
            let prev = bytes[i - 1];
            if matches!(
                prev,
                b'+' | b'-' | b'*' | b'/' | b'=' | b'<' | b'>' | b'(' | b','
            ) {
                continue; // unary or part of another operator
            }
        }
        out.push((i, op));
    }
    out
}

/// Lines carrying checked/saturating/wrapping evidence are exempt: the
/// author already chose an overflow policy.
fn has_overflow_policy(line: &str) -> bool {
    ["saturating_", "checked_", "wrapping_", "overflowing_"]
        .iter()
        .any(|p| line.contains(p))
}

/// Deny unchecked arithmetic and direct indexing on time/seq-flavoured
/// values in every function reachable from the hot or pump roots: in
/// release builds, an overflowing deadline silently wraps; in debug it
/// panics mid-slot. Both ends a certification.
pub fn rule_panic_arith(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let (roots, pruned) = hot_roots(files, cfg, true);
    let reachable = graph.reachable_pruned(files, &roots, &pruned);
    let mut findings = Vec::new();
    for &(fi, gi) in reachable.keys() {
        let f = &files[fi];
        let g: &FnDef = &f.fns[gi];
        let body = &f.clean[g.body.0..=g.body.1];
        let first_line = f.line_of(g.body.0);
        for (off, line) in body.lines().enumerate() {
            let line_no = first_line + off;
            if has_overflow_policy(line) {
                continue;
            }
            let mut hit: Option<String> = None;
            for (at, op) in binary_op_positions(line) {
                let (Some(l), Some(r)) = (left_operand(line, at), right_operand(line, at + 1))
                else {
                    continue;
                };
                if flavoured(&l) && flavoured(&r) {
                    hit = Some(format!(
                        "unchecked `{l} {op} {r}` on time/seq-flavoured values"
                    ));
                    break;
                }
            }
            if hit.is_none() {
                // Direct indexing by a single flavoured identifier:
                // `ring[seq]` panics when the sequence outruns the buffer.
                for at in token_positions(line, "[") {
                    let close = line[at..].find(']').map(|c| at + c);
                    let Some(close) = close else { continue };
                    let inner = line[at + 1..close].trim();
                    let bytes = line.as_bytes();
                    let indexed = at > 0 && is_ident(bytes[at - 1]);
                    if indexed
                        && !inner.is_empty()
                        && inner.bytes().all(is_ident)
                        && !inner.as_bytes()[0].is_ascii_digit()
                        && flavoured(inner)
                    {
                        hit = Some(format!("direct indexing by time/seq-flavoured `{inner}`"));
                        break;
                    }
                }
            }
            if let Some(what) = hit {
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line: line_no,
                    rule: RULE_PANIC,
                    message: format!(
                        "{} inside `{}` (hot via {}): overflow panics in debug and wraps a \
                         deadline in release — use checked_/saturating_ ops or a masked index",
                        what,
                        g.name,
                        chain_of(files, &reachable, (fi, gi)),
                    ),
                    snippet: f.snippet(line_no).to_string(),
                });
            }
        }
    }
    findings
}

/// The unit dimension an identifier carries, if any. Time wins over slot
/// and byte so conversion products (`slot_ps`) count as time.
fn dim_of(ident: &str) -> Option<&'static str> {
    const TIME: &[&str] = &[
        "ps", "ns", "us", "ms", "time", "stamp", "deadline", "horizon", "period", "laxity",
    ];
    const SLOT: &[&str] = &["slot", "slots"];
    const BYTE: &[&str] = &["byte", "bytes", "mtu", "octet", "octets"];
    let mut dim = None;
    for seg in ident.split('_') {
        if TIME.contains(&seg) {
            return Some("time");
        }
        if SLOT.contains(&seg) {
            dim = dim.or(Some("slot"));
        }
        if BYTE.contains(&seg) {
            dim = dim.or(Some("byte"));
        }
    }
    dim
}

/// Substrings that mark a line as a *named conversion* between dimensions
/// — the sanctioned way to cross them.
const DIM_CONVERSIONS: &[&str] = &[
    "per_slot",
    "per_byte",
    "per_frame",
    "ps_per",
    "bytes_per",
    "slots_per",
    "to_ps",
    "to_slot",
    "to_byte",
    "from_ps",
    "from_slot",
    "from_byte",
    "as_ps",
    "as_slot",
    "as_byte",
    "slot_ps",
    "slot_duration",
    "byte_ps",
    "ps_of",
];

/// Deny `+`/`-` between identifiers of different unit dimensions
/// (picoseconds, slots, bytes) anywhere in the deterministic crates:
/// adding a slot count to a picosecond deadline admits garbage, and the
/// type system cannot see it because both are plain integers.
/// Multiplication and division are exempt — they *are* the conversions.
pub fn rule_dimension_mix(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.det_crates.contains(&f.crate_name) {
            continue;
        }
        for (line_no, line) in f.code_lines() {
            if DIM_CONVERSIONS.iter().any(|c| line.contains(c)) {
                continue;
            }
            for (at, op) in binary_op_positions(line) {
                if op != '+' && op != '-' {
                    continue;
                }
                let (Some(l), Some(r)) = (left_operand(line, at), right_operand(line, at + 1))
                else {
                    continue;
                };
                let (Some(dl), Some(dr)) = (dim_of(&l), dim_of(&r)) else {
                    continue;
                };
                if dl != dr {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_DIM,
                        message: format!(
                            "`{l} {op} {r}` mixes {dl}-flavoured and {dr}-flavoured values \
                             without a named conversion — route through a *_per_*/to_* helper \
                             so the unit change is visible"
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                    break;
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule: protocol-pin
// ---------------------------------------------------------------------

/// Parse `pub const NAME: &str = "..";` fragments from raw source text.
fn pinned_fragments(raw: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for at in token_positions(raw, "const ") {
        let rest = &raw[at + 6..];
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let ns = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if i == ns {
            continue;
        }
        let name = rest[ns..i].to_string();
        let Some(colon) = rest[i..].find(':') else {
            continue;
        };
        let after_colon = &rest[i + colon + 1..];
        if !after_colon.trim_start().starts_with("&str") {
            continue;
        }
        let Some(q1) = after_colon.find('"') else {
            continue;
        };
        let lit_start = i + colon + 1 + q1 + 1;
        let Some(q2) = rest[lit_start..].find('"') else {
            continue;
        };
        out.push((name, rest[lit_start..lit_start + q2].to_string()));
    }
    out
}

/// Enforce every [`ProtocolPin`]: each pinned fragment must appear at
/// least twice in the anchor (the definition plus the real code it pins)
/// and at least once in every mirror. Mirrors may live outside the
/// scanned crates (the loom model), so this rule reads them from disk.
pub fn rule_protocol_pin(root: &Path, files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pin in &cfg.protocol_pins {
        let anchor_model = files
            .iter()
            .find(|f| f.path.display().to_string().ends_with(&pin.anchor));
        let Some(anchor) = anchor_model else {
            findings.push(Finding {
                path: pin.anchor.clone(),
                line: 1,
                rule: RULE_PIN,
                message: format!(
                    "protocol `{}`: anchor file not found in the workspace scan",
                    pin.name
                ),
                snippet: String::new(),
            });
            continue;
        };
        let frags = pinned_fragments(&anchor.raw);
        if frags.is_empty() {
            findings.push(Finding {
                path: pin.anchor.clone(),
                line: 1,
                rule: RULE_PIN,
                message: format!(
                    "protocol `{}`: anchor defines no `pub const NAME: &str` fragments",
                    pin.name
                ),
                snippet: String::new(),
            });
            continue;
        }
        for (name, lit) in &frags {
            if anchor.raw.matches(lit.as_str()).count() < 2 {
                findings.push(Finding {
                    path: pin.anchor.clone(),
                    line: 1,
                    rule: RULE_PIN,
                    message: format!(
                        "protocol `{}`: fragment `{name}` is defined but its code \
                         (`{lit}`) no longer appears in the anchor — the pin is dead \
                         or the implementation drifted",
                        pin.name
                    ),
                    snippet: String::new(),
                });
            }
        }
        for mirror in &pin.mirrors {
            let Ok(text) = std::fs::read_to_string(root.join(mirror)) else {
                findings.push(Finding {
                    path: mirror.clone(),
                    line: 1,
                    rule: RULE_PIN,
                    message: format!("protocol `{}`: mirror file is missing", pin.name),
                    snippet: String::new(),
                });
                continue;
            };
            for (name, lit) in &frags {
                if !text.contains(lit.as_str()) {
                    findings.push(Finding {
                        path: mirror.clone(),
                        line: 1,
                        rule: RULE_PIN,
                        message: format!(
                            "protocol `{}`: mirror does not embed fragment `{name}` \
                             (`{lit}`) — the model checker no longer checks the \
                             shipped protocol",
                            pin.name
                        ),
                        snippet: String::new(),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 2: nondeterminism
// ---------------------------------------------------------------------

const DET_TOKENS: &[(&str, &str)] = &[
    ("Instant", "wall-clock reads make runs irreproducible"),
    ("SystemTime", "wall-clock reads make runs irreproducible"),
    ("thread_rng", "OS randomness breaks bit-identical replay"),
    (
        "rand::",
        "external RNGs break bit-identical replay; use ccr_sim::rng",
    ),
    (
        "std::fs::",
        "ambient file I/O does not belong in the model crates",
    ),
    (
        "std::env::",
        "environment reads make behaviour machine-dependent",
    ),
    ("println!", "model crates must not write to stdout"),
    ("eprintln!", "model crates must not write to stderr"),
    ("dbg!", "leftover debugging macro"),
];

const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Identifiers bound to `HashMap`/`HashSet` in this file: struct fields
/// (`name: HashMap<..>`) and let-bindings (`let name = HashMap::new()`).
fn hash_bound_idents(clean: &str) -> BTreeSet<String> {
    let bytes = clean.as_bytes();
    let mut out = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in token_positions(clean, ty) {
            // Walk left over whitespace to the preceding `:` or `=`.
            let mut j = at;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 {
                continue;
            }
            let sep = bytes[j - 1];
            if sep != b':' && sep != b'=' {
                continue;
            }
            let mut k = j - 1;
            if sep == b':' && k > 0 && bytes[k - 1] == b':' {
                // `::` path separator, not a type ascription
                continue;
            }
            while k > 0 && bytes[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            let end = k;
            while k > 0 && is_ident(bytes[k - 1]) {
                k -= 1;
            }
            if k < end {
                out.insert(clean[k..end].to_string());
            }
        }
    }
    out
}

/// Deny wall clocks, OS randomness, ambient I/O and hash-order iteration
/// in the deterministic crates.
pub fn rule_determinism(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.det_crates.contains(&f.crate_name) {
            continue;
        }
        let path_str = f.path.display().to_string();
        if cfg.det_exempt.iter().any(|suf| path_str.ends_with(suf)) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            for (tok, why) in DET_TOKENS {
                if !token_positions(text, tok).is_empty() {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_DET,
                        message: format!("`{tok}` in a deterministic crate: {why}"),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
        // Hash-order iteration: only for identifiers this file binds to a
        // hash container.
        let idents = hash_bound_idents(&f.clean);
        for h in &idents {
            for (line_no, text) in f.code_lines() {
                let mut hit = false;
                for m in HASH_ITER_METHODS {
                    let pat = format!("{h}{m}");
                    if !token_positions(text, &pat).is_empty() {
                        hit = true;
                    }
                }
                if !hit && for_loop_over(text, h) {
                    hit = true;
                }
                if hit {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_DET,
                        message: format!(
                            "iteration over hash container `{h}`: hash order is \
                             nondeterministic — use a BTreeMap/BTreeSet or sort first"
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
    }
    findings
}

/// Does this line `for .. in ..` over identifier `h` (possibly behind
/// `&`, `&mut` or `self.`)?
fn for_loop_over(line: &str, h: &str) -> bool {
    if !line.contains("for ") {
        return false;
    }
    let Some(pos) = line.find(" in ") else {
        return false;
    };
    let mut rest = line[pos + 4..].trim_start();
    rest = rest.trim_start_matches('&');
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    rest = rest.strip_prefix("self.").unwrap_or(rest);
    let ident_len = rest.bytes().take_while(|&b| is_ident(b)).count();
    &rest[..ident_len] == h
}

// ---------------------------------------------------------------------
// Rule 3: time-cast
// ---------------------------------------------------------------------

const INT_CASTS: &[&str] = &["as u64", "as u32", "as i64"];
const FLOAT_EVIDENCE: &[&str] = &["f64", "round(", "ceil(", "floor(", ".ln("];

/// Deny lossy float→integer casts on time-flavoured lines and raw
/// `TimeDelta(..)`/`SimTime(..)` construction outside the newtype module.
pub fn rule_time_cast(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.det_crates.contains(&f.crate_name) {
            continue;
        }
        let path_str = f.path.display().to_string();
        if cfg.cast_exempt.iter().any(|suf| path_str.ends_with(suf)) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            let int_cast = INT_CASTS
                .iter()
                .any(|c| !token_positions(text, c).is_empty());
            if int_cast {
                // Boundary-aware matching so `div_ceil(`/`log2_ceil(` do not
                // count as float evidence.
                let floaty = FLOAT_EVIDENCE
                    .iter()
                    .any(|e| !token_positions(text, e).is_empty());
                let psy = !token_positions(text, "from_ps(").is_empty()
                    || !token_positions(text, "from_ns(").is_empty();
                if floaty || psy {
                    findings.push(Finding {
                        path: path_str.clone(),
                        line: line_no,
                        rule: RULE_CAST,
                        message: "lossy `as` cast on a time-flavoured value: NaN/negative/huge \
                                  inputs silently wrap — use TimeDelta::try_from_ps_f64 or a \
                                  checked conversion"
                            .into(),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
            for ctor in ["TimeDelta(", "SimTime("] {
                if !token_positions(text, ctor).is_empty() {
                    findings.push(Finding {
                        path: path_str.clone(),
                        line: line_no,
                        rule: RULE_CAST,
                        message: format!(
                            "raw `{}..)` tuple construction bypasses the checked newtype \
                             constructors; use from_ps/try_from_ps_f64",
                            ctor
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 4: unwrap-in-lib
// ---------------------------------------------------------------------

/// Deny bare `.unwrap()` / `.unwrap_unchecked()` / empty-message
/// `.expect("")` in non-test library code.
pub fn rule_unwrap(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !cfg.lib_crates.contains(&f.crate_name) {
            continue;
        }
        for (line_no, text) in f.code_lines() {
            for pat in [".unwrap()", ".unwrap_unchecked()"] {
                if text.contains(pat) {
                    findings.push(Finding {
                        path: f.path.display().to_string(),
                        line: line_no,
                        rule: RULE_UNWRAP,
                        message: format!(
                            "bare `{pat}` in library code: state the invariant with \
                             `.expect(\"invariant: ...\")` or return a typed error"
                        ),
                        snippet: f.snippet(line_no).to_string(),
                    });
                }
            }
        }
        // Empty expect-messages need the raw text (strings are blanked in
        // the cleaned copy).
        for (i, raw_line) in f.raw.lines().enumerate() {
            let line_no = i + 1;
            if f.is_test_line(line_no) {
                continue;
            }
            if raw_line.contains(".expect(\"\")") {
                findings.push(Finding {
                    path: f.path.display().to_string(),
                    line: line_no,
                    rule: RULE_UNWRAP,
                    message: "`.expect(\"\")` with an empty message is an unwrap in disguise"
                        .into(),
                    snippet: f.snippet(line_no).to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Marker application
// ---------------------------------------------------------------------

/// Apply allow-markers: drop suppressed findings, then report invalid or
/// unused markers as findings of their own.
pub fn apply_markers(files: &[FileModel], findings: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![Vec::new(); files.len()];
    for (fi, f) in files.iter().enumerate() {
        used[fi] = vec![false; f.markers.len()];
    }
    let mut kept = Vec::new();
    'next: for finding in findings {
        for (fi, f) in files.iter().enumerate() {
            if f.path.display().to_string() != finding.path {
                continue;
            }
            for (mi, m) in f.markers.iter().enumerate() {
                let covers = m.line == finding.line || m.line + 1 == finding.line;
                if covers && m.rule == finding.rule && !m.reason.is_empty() {
                    used[fi][mi] = true;
                    continue 'next;
                }
            }
        }
        kept.push(finding);
    }
    for (fi, f) in files.iter().enumerate() {
        for (mi, m) in f.markers.iter().enumerate() {
            if m.rule.starts_with("<unparseable") {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!("unparseable ccr-verify directive {}", m.rule),
                    snippet: f.snippet(m.line).to_string(),
                });
            } else if m.reason.is_empty() {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!(
                        "allow({}) without a reason: every exception must explain itself",
                        m.rule
                    ),
                    snippet: f.snippet(m.line).to_string(),
                });
            } else if !used[fi][mi] {
                kept.push(Finding {
                    path: f.path.display().to_string(),
                    line: m.line,
                    rule: RULE_MARKER,
                    message: format!(
                        "allow({}) suppresses nothing — stale marker, remove it",
                        m.rule
                    ),
                    snippet: f.snippet(m.line).to_string(),
                });
            }
        }
    }
    kept.sort();
    kept.dedup();
    kept
}

/// Run every source rule (not the deps audit) over the given models.
pub fn run_all(files: &[FileModel], cfg: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rule_alloc(files, cfg));
    findings.extend(rule_blocking(files, cfg));
    findings.extend(rule_panic_arith(files, cfg));
    findings.extend(rule_dimension_mix(files, cfg));
    findings.extend(rule_determinism(files, cfg));
    findings.extend(rule_time_cast(files, cfg));
    findings.extend(rule_unwrap(files, cfg));
    apply_markers(files, findings)
}
