//! A type-aware, still dependency-free call graph over the workspace.
//!
//! PR 4's graph resolved calls by *name* alone, which left every
//! trait-dispatched call (`dyn Trait`, generic `P: Trait`) a hole in the
//! hot-path walk. This version builds an impl index (trait → impl blocks →
//! method bodies) plus local receiver-type inference, and resolves method
//! calls in three tiers:
//!
//! 1. **Typed**: the receiver chain (`self.field[i].lock()`) is evaluated
//!    against struct field types, `let` bindings, parameter types and
//!    workspace return types. A concrete receiver resolves to exactly its
//!    type's method; a trait-typed receiver (`dyn Trait`, a generic bound,
//!    or a `Trait::method` path) fans out to **every** impl of that method
//!    plus the trait's default body — the edge records which
//!    `trait::method → impl` dispatch it took, and diagnostics print it.
//! 2. **Name fallback**: when inference fails, a call `foo(...)`/`.foo(...)`
//!    resolves to workspace functions *named* `foo` — preferring the
//!    caller's crate, falling back cross-crate only when unambiguous.
//! 3. **Ubiquitous names** (`new`, `push`, `iter`, …) never resolve through
//!    the name fallback — one false edge through `new` would merge the
//!    whole workspace into the hot set — but they *do* resolve through the
//!    typed tier, so `queues.push(m)` on a workspace queue type is walked.
//!
//! The graph still over-approximates reachability where types are unknown,
//! which is the right bias for a lint: extra edges can only produce extra
//! findings, which an explicit allow-marker then documents.

use crate::model::{base_name, FileModel, FnOwner};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A function's global index: `(file index, fn index within file)`.
pub type FnRef = (usize, usize);

/// `reached[f] = Some((caller, edge_label))` for every function reached
/// from the roots; the label is present on trait-dispatch edges and names
/// the `trait::method → impl` resolution taken.
pub type ReachMap = BTreeMap<FnRef, Option<(FnRef, Option<String>)>>;

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "move", "unsafe", "ref",
    "mut", "await", "else", "impl", "use", "pub", "where", "let", "enum", "struct", "trait",
    "type", "const", "static", "break", "continue", "crate", "self", "Self", "super", "dyn",
    "true", "false", "Some", "Ok", "Err", "None",
];

/// Names so common in Rust (std trait methods, constructors, iterator
/// adapters) that matching them by name carries no signal: a call to
/// `.iter()` is almost never the workspace function named `iter`, and one
/// false edge through `new` merges the whole workspace into the hot set.
/// Calls to these are never resolved through the *name* fallback; the
/// typed tier resolves them when the receiver type is known.
const UBIQUITOUS_NAMES: &[&str] = &[
    "new",
    "drop",
    "default",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "chain",
    "next",
    "len",
    "is_empty",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "fmt",
    "from",
    "into",
    "map",
    "filter",
    "fold",
    "collect",
    "extend",
    "clear",
    "drain",
    "as_ref",
    "as_mut",
    "to_string",
    "write",
    "read",
    "min",
    "max",
    "sum",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "index",
    "rev",
    "take",
    "skip",
    "zip",
    "count",
    "last",
    "first",
    "sort",
    "sort_by",
    "retain",
    "split",
    "join",
    "find",
    "position",
    "any",
    "all",
    "enumerate",
    "flatten",
    "flat_map",
    "unwrap_or",
    "and_then",
    "ok_or",
    "entry",
    "keys",
    "values",
    "reserve",
    "resize",
    "truncate",
    "swap",
    "replace",
    "with_capacity",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------
// Call-site extraction
// ---------------------------------------------------------------------

/// One segment of a receiver chain, leftmost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// `self` at the root of the chain.
    SelfRoot,
    /// A plain identifier root (parameter or local binding).
    Ident(String),
    /// A `Type::`-rooted chain (`Queue::new().head()`); also carries bare
    /// static calls `Type::method(..)`.
    PathRoot(String),
    /// A free-function root inside a `let` initializer (`make_queue().x`).
    CallRoot(String),
    /// `.field` access.
    Field(String),
    /// `[..]` index access.
    Index,
    /// `.method(..)` call mid-chain.
    Call(String),
}

/// One call site found in a body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called identifier.
    pub name: String,
    /// `None` for free calls `foo(..)`; `Some(chain)` for method/path
    /// calls — an empty chain means the receiver could not be parsed.
    pub recv: Option<Vec<Seg>>,
}

/// Find the `[` matching the `]` at `close` (scanning left). Returns its
/// index, or `None` when unbalanced.
fn open_bracket_before(bytes: &[u8], close: usize, open: u8, shut: u8) -> Option<usize> {
    let mut depth = 0i32;
    let mut p = close;
    loop {
        if bytes[p] == shut {
            depth += 1;
        } else if bytes[p] == open {
            depth -= 1;
            if depth == 0 {
                return Some(p);
            }
        }
        if p == 0 {
            return None;
        }
        p -= 1;
    }
}

/// Read the identifier ending at `end` (exclusive); returns its start.
fn ident_start_before(bytes: &[u8], end: usize) -> usize {
    let mut s = end;
    while s > 0 && is_ident(bytes[s - 1]) {
        s -= 1;
    }
    s
}

/// Parse the receiver chain of a method call whose name starts at
/// `ident_start` in `body`. Returns `None` for a free call, `Some(chain)`
/// otherwise (empty = unparseable receiver).
fn recv_of(body: &str, ident_start: usize) -> Option<Vec<Seg>> {
    let bytes = body.as_bytes();
    let mut k = ident_start;
    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    if k >= 2 && &body[k - 2..k] == "::" {
        let end = k - 2;
        let s = ident_start_before(bytes, end);
        if s == end {
            return Some(Vec::new()); // turbofish or `<T>::f` — unknown
        }
        return Some(vec![Seg::PathRoot(body[s..end].to_string())]);
    }
    if k == 0 || bytes[k - 1] != b'.' {
        return None; // free call
    }
    let mut segs: Vec<Seg> = Vec::new();
    let mut cur = k - 1; // bytes[cur] == '.', elements end here
    loop {
        let mut e = cur;
        // Trailing index brackets of this element.
        while e > 0 && bytes[e - 1] == b']' {
            let Some(p) = open_bracket_before(bytes, e - 1, b'[', b']') else {
                return Some(Vec::new());
            };
            segs.push(Seg::Index);
            e = p;
        }
        if e > 0 && bytes[e - 1] == b')' {
            // `..method(..)` or `Type::call(..)` or `free_call(..)`.
            let Some(p) = open_bracket_before(bytes, e - 1, b'(', b')') else {
                return Some(Vec::new());
            };
            let s = ident_start_before(bytes, p);
            if s == p {
                return Some(Vec::new()); // closure or parenthesised expr
            }
            let name = body[s..p].to_string();
            if s >= 2 && &body[s - 2..s] == "::" {
                let e2 = s - 2;
                let s2 = ident_start_before(bytes, e2);
                if s2 == e2 {
                    return Some(Vec::new());
                }
                segs.push(Seg::Call(name));
                segs.push(Seg::PathRoot(body[s2..e2].to_string()));
                segs.reverse();
                return Some(segs);
            }
            if s > 0 && bytes[s - 1] == b'.' {
                segs.push(Seg::Call(name));
                cur = s - 1;
                continue;
            }
            // A free-call root `helper().x()`: the root type is the
            // call's return type; the edge to `helper` itself is found
            // when the scanner reaches its own call site.
            segs.push(Seg::CallRoot(name));
            segs.reverse();
            return Some(segs);
        }
        // Plain identifier element.
        let s = ident_start_before(bytes, e);
        if s == e {
            return Some(Vec::new()); // literal, `?`, parenthesised, …
        }
        let name = &body[s..e];
        if s > 0 && bytes[s - 1] == b'.' {
            segs.push(Seg::Field(name.to_string()));
            cur = s - 1;
            continue;
        }
        segs.push(if name == "self" {
            Seg::SelfRoot
        } else {
            Seg::Ident(name.to_string())
        });
        segs.reverse();
        return Some(segs);
    }
}

/// Extract every call site (`name(`, `.name(`, `Type::name(`) from a body.
pub fn call_sites(body: &str) -> Vec<CallSite> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'(' {
                let name = &body[start..i];
                if !KEYWORDS.contains(&name) {
                    out.push(CallSite {
                        name: name.to_string(),
                        recv: recv_of(body, start),
                    });
                }
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Extract the set of called identifiers from a body (name-only view).
pub fn calls_in(body: &str) -> BTreeSet<String> {
    call_sites(body).into_iter().map(|s| s.name).collect()
}

// ---------------------------------------------------------------------
// Type text manipulation
// ---------------------------------------------------------------------

/// Containers whose `Deref` makes method/index access transparent.
const DEREF_WRAPPERS: &[&str] = &["Box", "Rc", "Arc"];

/// The first top-level generic argument of `Outer<A, B>` → `A`.
fn generic_arg(ty: &str) -> Option<&str> {
    let open = ty.find('<')?;
    let bytes = ty.as_bytes();
    let mut depth = 0i32;
    let mut j = open;
    let mut close = None;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let inner = &ty[open + 1..close?];
    // First top-level comma.
    let mut depth = 0i32;
    for (idx, b) in inner.bytes().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth == 0 => return Some(inner[..idx].trim()),
            _ => {}
        }
    }
    Some(inner.trim())
}

/// Strip leading `&`/`mut`/lifetimes from a type text.
fn strip_refs(ty: &str) -> &str {
    let mut s = ty.trim();
    loop {
        let t = s.trim_start_matches('&').trim_start();
        let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
        let t = if let Some(rest) = t.strip_prefix('\'') {
            rest.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
                .trim_start()
        } else {
            t
        };
        if t == s {
            return s;
        }
        s = t;
    }
}

/// The shape of a type text, after stripping refs and deref-transparent
/// wrappers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    /// A named type with its full text preserved (for generic args).
    Named {
        base: String,
        text: String,
    },
    /// `dyn Trait` / `impl Trait`.
    DynTrait(String),
    /// `[T]` / `[T; N]`.
    Slice(String),
    Unknown,
}

fn shape_of(ty: &str) -> Shape {
    let mut s = strip_refs(ty).to_string();
    loop {
        if let Some(rest) = s.strip_prefix("dyn ") {
            return Shape::DynTrait(base_name(rest));
        }
        if let Some(rest) = s.strip_prefix("impl ") {
            return Shape::DynTrait(base_name(rest.split('+').next().unwrap_or(rest)));
        }
        if let Some(tail) = s.strip_prefix('[') {
            let inner = tail.rsplit_once(']').map(|(a, _)| a).unwrap_or(tail);
            let elem = inner.split(';').next().unwrap_or(inner).trim();
            return Shape::Slice(elem.to_string());
        }
        let base = base_name(&s);
        if base.is_empty() {
            return Shape::Unknown;
        }
        if DEREF_WRAPPERS.contains(&base.as_str()) {
            match generic_arg(&s) {
                Some(inner) => {
                    s = strip_refs(inner).to_string();
                    continue;
                }
                None => return Shape::Unknown,
            }
        }
        return Shape::Named {
            base,
            text: s.clone(),
        };
    }
}

// ---------------------------------------------------------------------
// The graph
// ---------------------------------------------------------------------

/// The typed call index over all files.
pub struct CallGraph {
    /// name → definitions carrying that name (name-fallback tier).
    by_name: BTreeMap<String, Vec<FnRef>>,
    /// `(type base, method)` → definitions (inherent and trait impls).
    methods: BTreeMap<(String, String), Vec<FnRef>>,
    /// `(trait, method)` → `(impl self type, def)` for every trait impl.
    trait_impls: BTreeMap<(String, String), Vec<(String, FnRef)>>,
    /// `(trait, method)` → default body in the trait block.
    trait_defaults: BTreeMap<(String, String), FnRef>,
    /// Every trait name in the workspace.
    trait_names: BTreeSet<String>,
    /// struct base name → `(file, struct index)` definitions.
    structs: BTreeMap<String, Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Index every non-test function, impl, trait and struct in `files`.
    pub fn build(files: &[FileModel]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut methods: BTreeMap<(String, String), Vec<FnRef>> = BTreeMap::new();
        let mut trait_impls: BTreeMap<(String, String), Vec<(String, FnRef)>> = BTreeMap::new();
        let mut trait_defaults: BTreeMap<(String, String), FnRef> = BTreeMap::new();
        let mut trait_names: BTreeSet<String> = BTreeSet::new();
        let mut structs: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for t in &f.traits {
                trait_names.insert(t.name.clone());
            }
            for (si, s) in f.structs.iter().enumerate() {
                structs.entry(s.name.clone()).or_default().push((fi, si));
            }
            for (gi, g) in f.fns.iter().enumerate() {
                if g.is_test {
                    continue;
                }
                by_name.entry(g.name.clone()).or_default().push((fi, gi));
                match g.owner {
                    FnOwner::Impl(ii) => {
                        let im = &f.impls[ii];
                        methods
                            .entry((im.self_type.clone(), g.name.clone()))
                            .or_default()
                            .push((fi, gi));
                        if let Some(tr) = &im.trait_name {
                            trait_impls
                                .entry((tr.clone(), g.name.clone()))
                                .or_default()
                                .push((im.self_type.clone(), (fi, gi)));
                        }
                    }
                    FnOwner::Trait(ti) => {
                        let tr = &f.traits[ti];
                        trait_defaults.insert((tr.name.clone(), g.name.clone()), (fi, gi));
                    }
                    FnOwner::Free => {}
                }
            }
        }
        CallGraph {
            by_name,
            methods,
            trait_impls,
            trait_defaults,
            trait_names,
            structs,
        }
    }

    /// Name-fallback resolution (the PR 4 tier): caller's crate first,
    /// cross-crate only when unambiguous; ubiquitous names never resolve.
    fn resolve_by_name(&self, files: &[FileModel], crate_name: &str, name: &str) -> Vec<FnRef> {
        if UBIQUITOUS_NAMES.contains(&name) {
            return Vec::new();
        }
        let Some(defs) = self.by_name.get(name) else {
            return Vec::new();
        };
        let local: Vec<FnRef> = defs
            .iter()
            .copied()
            .filter(|&(fi, _)| files[fi].crate_name == crate_name)
            .collect();
        if !local.is_empty() {
            return local;
        }
        let crates: BTreeSet<&str> = defs
            .iter()
            .map(|&(fi, _)| files[fi].crate_name.as_str())
            .collect();
        if crates.len() == 1 {
            defs.clone()
        } else {
            Vec::new()
        }
    }

    /// Find the struct definition for `base`, preferring the caller's
    /// crate, falling back to a workspace-unique definition.
    fn struct_def<'a>(
        &self,
        files: &'a [FileModel],
        crate_name: &str,
        base: &str,
    ) -> Option<&'a crate::model::StructDef> {
        let defs = self.structs.get(base)?;
        let local = defs
            .iter()
            .find(|&&(fi, _)| files[fi].crate_name == crate_name);
        let &(fi, si) = local.or(if defs.len() == 1 { defs.first() } else { None })?;
        Some(&files[fi].structs[si])
    }

    /// The generic bound for `name` visible from `caller`: fn generics
    /// first, then the owning impl block's.
    fn generic_bound(&self, files: &[FileModel], caller: FnRef, name: &str) -> Option<String> {
        let f = &files[caller.0];
        let g = &f.fns[caller.1];
        for (p, b) in &g.generics {
            if p == name {
                return b.clone();
            }
        }
        if let FnOwner::Impl(ii) = g.owner {
            for (p, b) in &f.impls[ii].generics {
                if p == name {
                    return b.clone();
                }
            }
        }
        None
    }

    /// The caller's `Self` type text: the impl's self type, or
    /// `dyn Trait` inside a trait default body.
    fn self_type_of(&self, files: &[FileModel], caller: FnRef) -> Option<String> {
        let f = &files[caller.0];
        match f.fns[caller.1].owner {
            FnOwner::Impl(ii) => Some(f.impls[ii].self_type.clone()),
            FnOwner::Trait(ti) => Some(format!("dyn {}", f.traits[ti].name)),
            FnOwner::Free => None,
        }
    }

    /// Apply one chain segment to a type text. `None` = inference lost.
    fn step(&self, files: &[FileModel], caller: FnRef, ty: String, seg: &Seg) -> Option<String> {
        let crate_name = &files[caller.0].crate_name;
        // Generic parameters become their trait bound before any step.
        let ty = match shape_of(&ty) {
            Shape::Named { base, text } => match self.generic_bound(files, caller, &base) {
                Some(tr) => format!("dyn {tr}"),
                None => text,
            },
            Shape::DynTrait(tr) => format!("dyn {tr}"),
            Shape::Slice(e) => format!("[{e}]"),
            Shape::Unknown => return None,
        };
        match seg {
            Seg::Field(fname) => {
                let Shape::Named { base, .. } = shape_of(&ty) else {
                    return None;
                };
                let sd = self.struct_def(files, crate_name, &base)?;
                let fty = sd
                    .fields
                    .iter()
                    .find(|(n, _)| n == fname)
                    .map(|(_, t)| t.clone())?;
                // Substitute the struct's own generic params.
                let fbase = base_name(&fty);
                for (p, b) in &sd.generics {
                    if *p == fbase {
                        return b.as_ref().map(|tr| format!("dyn {tr}"));
                    }
                }
                Some(fty)
            }
            Seg::Index => match shape_of(&ty) {
                Shape::Slice(e) => Some(e),
                Shape::Named { base, text } if base == "Vec" || base == "VecDeque" => {
                    generic_arg(&text).map(|s| s.to_string())
                }
                _ => None,
            },
            Seg::Call(m) => self.call_result(files, caller, &ty, m),
            // Roots are handled by eval_chain; mid-chain roots are a parse
            // bug — drop inference rather than guess.
            _ => None,
        }
    }

    /// The result type of `.m()` on receiver type `ty`: std unwrapping
    /// special cases, then workspace return types.
    fn call_result(
        &self,
        files: &[FileModel],
        _caller: FnRef,
        ty: &str,
        m: &str,
    ) -> Option<String> {
        match shape_of(ty) {
            Shape::Named { base, text } => {
                match (base.as_str(), m) {
                    ("Mutex" | "RwLock", "lock" | "read" | "write")
                    | ("RefCell", "borrow" | "borrow_mut") => {
                        return generic_arg(&text).map(|s| s.to_string());
                    }
                    ("Option" | "Result", "unwrap" | "expect" | "unwrap_or_default") => {
                        return generic_arg(&text).map(|s| s.to_string());
                    }
                    (_, "unwrap" | "expect" | "as_ref" | "as_mut" | "clone") => {
                        // Not an Option/Result: `.lock().expect(..)` has
                        // already unwrapped — identity.
                        return Some(text);
                    }
                    ("Vec" | "VecDeque", "pop" | "pop_front" | "pop_back") => {
                        return generic_arg(&text).map(|s| format!("Option<{s}>"));
                    }
                    (
                        "Vec" | "VecDeque",
                        "front" | "back" | "first" | "last" | "get" | "get_mut",
                    ) => {
                        return generic_arg(&text).map(|s| format!("Option<{s}>"));
                    }
                    _ => {}
                }
                // Workspace method: unique return type wins.
                let defs = self.methods.get(&(base.clone(), m.to_string()))?;
                let rets: BTreeSet<String> = defs
                    .iter()
                    .map(|&(fi, gi)| {
                        files[fi].fns[gi]
                            .ret
                            .clone()
                            .unwrap_or_default()
                            .replace("Self", &base)
                    })
                    .collect();
                if rets.len() == 1 {
                    let r = rets.into_iter().next().filter(|r| !r.is_empty())?;
                    // A generic return type of the *callee* is opaque here.
                    let rbase = base_name(&r);
                    let callee = defs[0];
                    if self.generic_bound(files, callee, &rbase).is_some() {
                        return self
                            .generic_bound(files, callee, &rbase)
                            .map(|tr| format!("dyn {tr}"));
                    }
                    Some(r)
                } else {
                    None
                }
            }
            Shape::Slice(e) => match m {
                "first" | "last" | "get" | "get_mut" => Some(format!("Option<{e}>")),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluate a receiver chain to a type text, or `None`.
    fn eval_chain(
        &self,
        files: &[FileModel],
        caller: FnRef,
        env: &BTreeMap<String, String>,
        segs: &[Seg],
    ) -> Option<String> {
        let mut iter = segs.iter();
        let root = iter.next()?;
        let mut ty = match root {
            Seg::SelfRoot => self.self_type_of(files, caller)?,
            Seg::Ident(x) => env.get(x)?.clone(),
            Seg::PathRoot(t) => {
                if t == "Self" {
                    self.self_type_of(files, caller)?
                } else {
                    t.clone()
                }
            }
            Seg::CallRoot(name) => {
                // Return type of a workspace-unique free fn.
                let defs = self.resolve_by_name(files, &files[caller.0].crate_name, name);
                let rets: BTreeSet<String> = defs
                    .iter()
                    .filter(|&&(fi, gi)| files[fi].fns[gi].owner == FnOwner::Free)
                    .filter_map(|&(fi, gi)| files[fi].fns[gi].ret.clone())
                    .collect();
                if rets.len() == 1 {
                    rets.into_iter().next()?
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        for seg in iter {
            ty = self.step(files, caller, ty, seg)?;
        }
        Some(ty)
    }

    /// Build the local type environment of one function: parameter types
    /// plus `let` bindings (explicit annotations and inferable
    /// initializer chains).
    fn build_env(&self, files: &[FileModel], caller: FnRef) -> BTreeMap<String, String> {
        let f = &files[caller.0];
        let g = &f.fns[caller.1];
        let mut env: BTreeMap<String, String> = BTreeMap::new();
        for (n, t) in &g.params {
            env.insert(n.clone(), t.clone());
        }
        let body = &f.clean[g.body.0..=g.body.1.min(f.clean.len() - 1)];
        let bytes = body.as_bytes();
        let mut from = 0usize;
        while let Some(hit) = body[from..].find("let") {
            let at = from + hit;
            from = at + 3;
            let bounded = (at == 0 || !is_ident(bytes[at - 1]))
                && bytes.get(at + 3).is_some_and(|b| b.is_ascii_whitespace());
            if !bounded {
                continue;
            }
            let mut i = at + 3;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if body[i..].starts_with("mut ") {
                i += 4;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
            }
            let ns = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            if i == ns {
                continue; // destructuring pattern — skip
            }
            let name = body[ns..i].to_string();
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            match bytes.get(i) {
                Some(b':') if bytes.get(i + 1) != Some(&b':') => {
                    // `let x: Type = ..` / `let x: Type;`
                    let rest = &body[i + 1..];
                    let mut depth = 0i32;
                    let mut end = rest.len();
                    for (idx, b) in rest.bytes().enumerate() {
                        match b {
                            b'<' | b'(' | b'[' => depth += 1,
                            b'>' | b')' | b']' => depth -= 1,
                            b'=' | b';' if depth == 0 => {
                                end = idx;
                                break;
                            }
                            _ => {}
                        }
                    }
                    let ty = rest[..end].trim();
                    if !ty.is_empty() {
                        env.insert(name, ty.to_string());
                    }
                }
                Some(b'=') if bytes.get(i + 1) != Some(&b'=') => {
                    // `let x = <chain>` — forward-parse the initializer.
                    if let Some(segs) = parse_init_chain(&body[i + 1..]) {
                        if let Some(ty) = self.eval_chain(files, caller, &env, &segs) {
                            env.insert(name, ty);
                        }
                    }
                }
                _ => {}
            }
        }
        env
    }

    /// Typed resolution of one call site, or `None` when type inference
    /// cannot pin the receiver (callers fall back to name resolution).
    fn resolve_typed(
        &self,
        files: &[FileModel],
        caller: FnRef,
        env: &BTreeMap<String, String>,
        site: &CallSite,
    ) -> Option<Vec<(FnRef, Option<String>)>> {
        let chain = site.recv.as_ref()?;
        let ty = self.eval_chain(files, caller, env, chain)?;
        // Generic param receivers become their bound.
        let ty = match shape_of(&ty) {
            Shape::Named { base, text } => match self.generic_bound(files, caller, &base) {
                Some(tr) => format!("dyn {tr}"),
                None => text,
            },
            Shape::DynTrait(tr) => format!("dyn {tr}"),
            _ => return None,
        };
        match shape_of(&ty) {
            Shape::DynTrait(tr) => self.dispatch(&tr, &site.name),
            Shape::Named { base, .. } if self.trait_names.contains(&base) => {
                // `Trait::method(&x, ..)` UFCS call.
                self.dispatch(&base, &site.name)
            }
            Shape::Named { base, .. } => self
                .methods
                .get(&(base.clone(), site.name.clone()))
                // A known workspace type without this method (deref or
                // blanket impls) — and std types — keep the
                // over-approximating name fallback.
                .map(|defs| defs.iter().map(|&r| (r, None)).collect()),
            _ => None,
        }
    }

    /// Resolve one call site from `caller` to its targets: typed tier
    /// first, name fallback otherwise.
    fn resolve_site(
        &self,
        files: &[FileModel],
        caller: FnRef,
        env: &BTreeMap<String, String>,
        site: &CallSite,
    ) -> Vec<(FnRef, Option<String>)> {
        if let Some(targets) = self.resolve_typed(files, caller, env, site) {
            return targets;
        }
        self.resolve_by_name(files, &files[caller.0].crate_name, &site.name)
            .into_iter()
            .map(|r| (r, None))
            .collect()
    }

    /// The names of method calls in `caller` whose receiver type resolved
    /// to a *workspace* definition through the typed tier. A blocking- or
    /// panic-shaped token (`.accept(`, `.wait(`) whose call resolves here
    /// is a workspace method, not the std blocking primitive — the walk
    /// scans the callee's own body instead of flagging the call.
    pub fn workspace_method_names(&self, files: &[FileModel], caller: FnRef) -> BTreeSet<String> {
        let f = &files[caller.0];
        let g = &f.fns[caller.1];
        let body = &f.clean[g.body.0..=g.body.1.min(f.clean.len() - 1)];
        let env = self.build_env(files, caller);
        let mut out = BTreeSet::new();
        for site in call_sites(body) {
            if site.recv.is_some()
                && self
                    .resolve_typed(files, caller, &env, &site)
                    .is_some_and(|t| !t.is_empty())
            {
                out.insert(site.name);
            }
        }
        out
    }

    /// All impls (and the default body) of `trait::method`, labelled with
    /// the dispatch edge taken. `None` when the trait has no such method
    /// (a supertrait or std-trait call — let the name fallback decide).
    fn dispatch(&self, tr: &str, method: &str) -> Option<Vec<(FnRef, Option<String>)>> {
        let key = (tr.to_string(), method.to_string());
        let mut out: Vec<(FnRef, Option<String>)> = Vec::new();
        if let Some(impls) = self.trait_impls.get(&key) {
            for (ty, r) in impls {
                out.push((*r, Some(format!("dyn {tr}::{method} -> {ty}"))));
            }
        }
        if let Some(&r) = self.trait_defaults.get(&key) {
            out.push((r, Some(format!("dyn {tr}::{method} -> default body"))));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// All functions reachable from the given roots, with one example
    /// caller edge per reached function for diagnostics.
    pub fn reachable(&self, files: &[FileModel], roots: &[FnRef]) -> ReachMap {
        self.reachable_pruned(files, roots, &BTreeSet::new())
    }

    /// Like [`CallGraph::reachable`], but the walk stops at (and excludes)
    /// the `pruned` functions: they count as outside the traversed region,
    /// and nothing is reached *through* them. Used for the event-path /
    /// steady-state distinction — a fault handler called from `step_slot`
    /// is reachable, but its allocations are not steady-state allocations.
    pub fn reachable_pruned(
        &self,
        files: &[FileModel],
        roots: &[FnRef],
        pruned: &BTreeSet<FnRef>,
    ) -> ReachMap {
        let mut seen: ReachMap = BTreeMap::new();
        let mut queue: VecDeque<FnRef> = VecDeque::new();
        for &r in roots {
            if pruned.contains(&r) {
                continue;
            }
            seen.entry(r).or_insert(None);
            queue.push_back(r);
        }
        while let Some((fi, gi)) = queue.pop_front() {
            let f = &files[fi];
            let g = &f.fns[gi];
            let body = &f.clean[g.body.0..=g.body.1.min(f.clean.len() - 1)];
            let env = self.build_env(files, (fi, gi));
            for site in call_sites(body) {
                for (target, label) in self.resolve_site(files, (fi, gi), &env, &site) {
                    if pruned.contains(&target) || target == (fi, gi) {
                        continue;
                    }
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(target) {
                        e.insert(Some(((fi, gi), label)));
                        queue.push_back(target);
                    }
                }
            }
        }
        seen
    }
}

/// Forward-parse a `let` initializer expression into a receiver chain:
/// `self.rings[i].lock()` / `Queue::new()` / `Frame { .. }` / `other_var`.
/// Returns `None` when the expression is not a recognisable chain.
fn parse_init_chain(expr: &str) -> Option<Vec<Seg>> {
    let bytes = expr.as_bytes();
    let mut i = 0usize;
    // Leading borrows/derefs don't change the base type for our purposes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && (bytes[i] == b'&' || bytes[i] == b'*') {
            i += 1;
            continue;
        }
        if expr[i..].starts_with("mut ") {
            i += 4;
            continue;
        }
        break;
    }
    let ns = i;
    while i < bytes.len() && is_ident(bytes[i]) {
        i += 1;
    }
    if i == ns {
        return None;
    }
    let root_name = &expr[ns..i];
    if KEYWORDS.contains(&root_name) && root_name != "self" && root_name != "Self" {
        return None;
    }
    let mut segs: Vec<Seg> = Vec::new();
    // `Type { .. }` struct literal.
    let mut j = i;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    let starts_upper = bytes[ns].is_ascii_uppercase();
    if starts_upper && bytes.get(j) == Some(&b'{') {
        return Some(vec![Seg::PathRoot(root_name.to_string())]);
    }
    if bytes.get(j) == Some(&b'(') && root_name != "self" && !starts_upper {
        // `let q = make_queue();` — a free-call root.
        segs.push(Seg::CallRoot(root_name.to_string()));
        let mut depth = 0i32;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    } else {
        segs.push(match root_name {
            "self" => Seg::SelfRoot,
            "Self" => Seg::PathRoot("Self".to_string()),
            _ if starts_upper => Seg::PathRoot(root_name.to_string()),
            _ => Seg::Ident(root_name.to_string()),
        });
    }
    // Postfix chain.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        match bytes.get(i) {
            Some(b'.') => {
                i += 1;
                let ns = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                if i == ns {
                    break;
                }
                let name = expr[ns..i].to_string();
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if bytes.get(k) == Some(&b'(') {
                    // Skip the balanced argument list.
                    let mut depth = 0i32;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                    segs.push(Seg::Call(name));
                } else {
                    segs.push(Seg::Field(name));
                }
            }
            Some(b'[') => {
                let mut depth = 0i32;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
                segs.push(Seg::Index);
            }
            Some(b':') if bytes.get(i + 1) == Some(&b':') => {
                i += 2;
                let ns = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                if i == ns {
                    break;
                }
                let name = expr[ns..i].to_string();
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if bytes.get(k) == Some(&b'(') {
                    let mut depth = 0i32;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'(' => depth += 1,
                            b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                    segs.push(Seg::Call(name));
                } else if bytes[ns].is_ascii_uppercase() {
                    // A deeper path: `crate::mac::CcrEdfMac::new()` — keep
                    // walking; the last uppercase ident is the type.
                    segs.pop();
                    segs.push(Seg::PathRoot(name));
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    Some(segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(crate_name: &str, src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("m.rs"), crate_name, src.to_string())
    }

    fn reach_names<'a>(files: &'a [FileModel], reach: &ReachMap) -> Vec<&'a str> {
        reach
            .keys()
            .map(|&(fi, gi)| files[fi].fns[gi].name.as_str())
            .collect()
    }

    #[test]
    fn extracts_calls() {
        let calls = calls_in("{ alpha(); x.beta(1); if gamma() { } vec.push(2) }");
        assert!(calls.contains("alpha"));
        assert!(calls.contains("beta"));
        assert!(calls.contains("gamma"));
        assert!(calls.contains("push"));
        assert!(!calls.contains("if"));
    }

    #[test]
    fn receivers_are_parsed() {
        let sites = call_sites("{ self.queues[qi].pop_earliest(); Frame::decode(b); free(); }");
        let pop = sites.iter().find(|s| s.name == "pop_earliest").unwrap();
        // The chain is the *receiver* only; the called method is the
        // site's `name`.
        assert_eq!(
            pop.recv.as_deref(),
            Some(&[Seg::SelfRoot, Seg::Field("queues".into()), Seg::Index][..])
        );
        let dec = sites.iter().find(|s| s.name == "decode").unwrap();
        assert_eq!(
            dec.recv.as_deref(),
            Some(&[Seg::PathRoot("Frame".into())][..])
        );
        let free = sites.iter().find(|s| s.name == "free").unwrap();
        assert!(free.recv.is_none());
    }

    #[test]
    fn walks_transitively_within_crate() {
        let files = vec![file(
            "a",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn unrelated() {}",
        )];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        assert_eq!(reach_names(&files, &reach), ["root", "mid", "leaf"]);
    }

    #[test]
    fn ubiquitous_names_are_not_resolved_by_name() {
        let files = vec![file(
            "a",
            "fn root() { let q = Queue::new(); q.push(1); }\nfn new() { evil(); }\nfn push() {}\nfn evil() {}",
        )];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        assert_eq!(reach.len(), 1, "only the root itself is reachable");
    }

    #[test]
    fn typed_receivers_resolve_ubiquitous_methods() {
        // `q.push(..)` resolves to the workspace Queue::push because the
        // let-initializer types q — the typed tier beats the noise filter.
        let files = vec![file(
            "a",
            "struct Queue { n: u32 }\n\
             impl Queue { fn push(&mut self, x: u32) { grow(); } }\n\
             fn mk() -> Queue { Queue { n: 0 } }\n\
             fn grow() {}\n\
             fn root() { let mut q = mk(); q.push(1); }",
        )];
        let cg = CallGraph::build(&files);
        let root = files[0].fns.iter().position(|f| f.name == "root").unwrap();
        let reach = cg.reachable(&files, &[(0, root)]);
        let names = reach_names(&files, &reach);
        assert!(
            names.contains(&"push"),
            "typed edge to Queue::push: {names:?}"
        );
        assert!(
            names.contains(&"grow"),
            "transitive through push: {names:?}"
        );
    }

    #[test]
    fn dyn_trait_calls_fan_out_to_all_impls() {
        let files = vec![file(
            "a",
            "trait Sched { fn pick(&self); fn tick(&self) { self.pick(); } }\n\
             struct A;\nstruct B;\n\
             impl Sched for A { fn pick(&self) { a_only(); } }\n\
             impl Sched for B { fn pick(&self) { b_only(); } }\n\
             struct Engine { s: Box<dyn Sched> }\n\
             impl Engine { fn run(&self) { self.s.pick(); } }\n\
             fn a_only() {}\nfn b_only() {}\nfn unrelated() {}",
        )];
        let cg = CallGraph::build(&files);
        let run = files[0].fns.iter().position(|f| f.name == "run").unwrap();
        let reach = cg.reachable(&files, &[(0, run)]);
        let names = reach_names(&files, &reach);
        assert!(names.contains(&"a_only"), "{names:?}");
        assert!(names.contains(&"b_only"), "{names:?}");
        assert!(!names.contains(&"unrelated"));
        // The dispatch edge is labelled.
        let a_pick = reach
            .iter()
            .find(|(&(fi, gi), _)| {
                files[fi].fns[gi].name == "pick"
                    && matches!(files[fi].fns[gi].owner, FnOwner::Impl(ii) if files[fi].impls[ii].self_type == "A")
            })
            .unwrap();
        let label = a_pick.1.as_ref().unwrap().1.as_deref().unwrap();
        assert_eq!(label, "dyn Sched::pick -> A");
    }

    #[test]
    fn generic_bound_field_dispatches_through_trait() {
        // The MacProtocol seam: a generic field `mac: P` with
        // `P: Mac` resolves through every impl *and* the default body.
        let files = vec![file(
            "a",
            "trait Mac { fn arb(&self) { default_alloc(); } }\n\
             struct Fast;\n\
             impl Mac for Fast { fn arb(&self) { fast(); } }\n\
             struct Ring<P: Mac> { mac: P }\n\
             impl<P: Mac> Ring<P> { fn step(&self) { self.mac.arb(); } }\n\
             fn default_alloc() {}\nfn fast() {}",
        )];
        let cg = CallGraph::build(&files);
        let step = files[0].fns.iter().position(|f| f.name == "step").unwrap();
        let reach = cg.reachable(&files, &[(0, step)]);
        let names = reach_names(&files, &reach);
        assert!(names.contains(&"fast"), "{names:?}");
        assert!(
            names.contains(&"default_alloc"),
            "default body walked: {names:?}"
        );
    }

    #[test]
    fn lock_chain_infers_cross_crate_method() {
        // `self.rings[i].lock().expect(..)` then `ring.step()` resolves to
        // the foreign crate's Ring::step even though `step` is defined in
        // both crates (name resolution alone would pick the local one).
        let files = vec![
            file(
                "fabric",
                "struct Fabric { rings: Vec<Mutex<Ring>> }\n\
                 impl Fabric { fn step(&mut self) { let mut ring = self.rings[0].lock().expect(\"l\"); ring.step(); } }",
            ),
            file(
                "core",
                "struct Ring { n: u32 }\nimpl Ring { fn step(&mut self) { inner(); } }\nfn inner() {}",
            ),
        ];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        let names: Vec<(usize, &str)> = reach
            .keys()
            .map(|&(fi, gi)| (fi, files[fi].fns[gi].name.as_str()))
            .collect();
        assert!(names.contains(&(1, "step")), "{names:?}");
        assert!(names.contains(&(1, "inner")), "{names:?}");
    }

    #[test]
    fn pruned_functions_stop_the_walk() {
        let files = vec![file(
            "a",
            "fn root() { rare(); steady(); }\nfn rare() { deep(); }\nfn deep() {}\nfn steady() {}",
        )];
        let cg = CallGraph::build(&files);
        let pruned: BTreeSet<FnRef> = std::iter::once((0usize, 1usize)).collect();
        let reach = cg.reachable_pruned(&files, &[(0, 0)], &pruned);
        assert_eq!(
            reach_names(&files, &reach),
            ["root", "steady"],
            "rare() and everything behind it pruned"
        );
    }

    #[test]
    fn ambiguous_cross_crate_names_do_not_merge() {
        let files = vec![
            file("a", "fn root() { shared(); }"),
            file("b", "fn shared() { evil(); }\nfn evil() {}"),
            file("c", "fn shared() {}"),
        ];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        assert_eq!(reach.len(), 1, "shared() is ambiguous across b and c");
    }
}
