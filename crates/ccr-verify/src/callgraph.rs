//! An approximate, name-based call graph over the workspace.
//!
//! Without type information, a call `foo(...)` or `.foo(...)` is resolved
//! to workspace functions *named* `foo` — preferring definitions in the
//! caller's own crate, and falling back to other crates only when the name
//! is defined in exactly one of them. This over-approximates reachability
//! (several same-named methods all count) which is the right bias for a
//! lint: it can only produce extra findings, which an explicit allow-marker
//! then documents.

use crate::model::FileModel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A function's global index: `(file index, fn index within file)`.
pub type FnRef = (usize, usize);

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "move", "unsafe", "ref",
    "mut", "await", "else", "impl", "use", "pub", "where", "let", "enum", "struct", "trait",
    "type", "const", "static", "break", "continue", "crate", "self", "Self", "super", "dyn",
    "true", "false", "Some", "Ok", "Err", "None",
];

/// Names so common in Rust (std trait methods, constructors, iterator
/// adapters) that matching them by name carries no signal: a call to
/// `.iter()` is almost never the workspace function named `iter`, and one
/// false edge through `new` merges the whole workspace into the hot set.
/// Calls to these are never resolved to workspace definitions.
const UBIQUITOUS_NAMES: &[&str] = &[
    "new",
    "default",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "chain",
    "next",
    "len",
    "is_empty",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "fmt",
    "from",
    "into",
    "map",
    "filter",
    "fold",
    "collect",
    "extend",
    "clear",
    "drain",
    "as_ref",
    "as_mut",
    "to_string",
    "write",
    "read",
    "min",
    "max",
    "sum",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "index",
    "rev",
    "take",
    "skip",
    "zip",
    "count",
    "last",
    "first",
    "sort",
    "sort_by",
    "retain",
    "split",
    "join",
    "find",
    "position",
    "any",
    "all",
    "enumerate",
    "flatten",
    "flat_map",
    "unwrap_or",
    "and_then",
    "ok_or",
    "entry",
    "keys",
    "values",
    "reserve",
    "resize",
    "truncate",
    "swap",
    "replace",
    "with_capacity",
];

/// Extract the set of called identifiers (`name(`, `.name(`) from a body.
pub fn calls_in(body: &str) -> BTreeSet<String> {
    let bytes = body.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'(' {
                let name = &body[start..i];
                if !KEYWORDS.contains(&name) {
                    out.insert(name.to_string());
                }
            }
            continue;
        }
        i += 1;
    }
    out
}

/// The callable-name index over all files.
pub struct CallGraph {
    /// name → definitions carrying that name.
    by_name: BTreeMap<String, Vec<FnRef>>,
}

impl CallGraph {
    /// Index every non-test function in `files`.
    pub fn build(files: &[FileModel]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                if !g.is_test {
                    by_name.entry(g.name.clone()).or_default().push((fi, gi));
                }
            }
        }
        CallGraph { by_name }
    }

    /// Resolve a called name from `crate_name` to candidate definitions.
    fn resolve(&self, files: &[FileModel], crate_name: &str, name: &str) -> Vec<FnRef> {
        if UBIQUITOUS_NAMES.contains(&name) {
            return Vec::new();
        }
        let Some(defs) = self.by_name.get(name) else {
            return Vec::new();
        };
        let local: Vec<FnRef> = defs
            .iter()
            .copied()
            .filter(|&(fi, _)| files[fi].crate_name == crate_name)
            .collect();
        if !local.is_empty() {
            return local;
        }
        // Cross-crate: only when unambiguous (defined in a single foreign
        // crate), to keep same-named methods of unrelated types from
        // merging the whole workspace into one blob.
        let crates: BTreeSet<&str> = defs
            .iter()
            .map(|&(fi, _)| files[fi].crate_name.as_str())
            .collect();
        if crates.len() == 1 {
            defs.clone()
        } else {
            Vec::new()
        }
    }

    /// All functions reachable from the given roots, with one example
    /// caller chain entry (`reached[f] = caller`) for diagnostics.
    pub fn reachable(
        &self,
        files: &[FileModel],
        roots: &[FnRef],
    ) -> BTreeMap<FnRef, Option<FnRef>> {
        self.reachable_pruned(files, roots, &BTreeSet::new())
    }

    /// Like [`CallGraph::reachable`], but the walk stops at (and excludes)
    /// the `pruned` functions: they count as outside the traversed region,
    /// and nothing is reached *through* them. Used for the event-path /
    /// steady-state distinction — a fault handler called from `step_slot`
    /// is reachable, but its allocations are not steady-state allocations.
    pub fn reachable_pruned(
        &self,
        files: &[FileModel],
        roots: &[FnRef],
        pruned: &BTreeSet<FnRef>,
    ) -> BTreeMap<FnRef, Option<FnRef>> {
        let mut seen: BTreeMap<FnRef, Option<FnRef>> = BTreeMap::new();
        let mut queue: VecDeque<FnRef> = VecDeque::new();
        for &r in roots {
            if pruned.contains(&r) {
                continue;
            }
            seen.entry(r).or_insert(None);
            queue.push_back(r);
        }
        while let Some((fi, gi)) = queue.pop_front() {
            let f = &files[fi];
            let g = &f.fns[gi];
            let body = &f.clean[g.body.0..=g.body.1];
            for name in calls_in(body) {
                for target in self.resolve(files, &f.crate_name, &name) {
                    if pruned.contains(&target) {
                        continue;
                    }
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(target) {
                        e.insert(Some((fi, gi)));
                        queue.push_back(target);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(crate_name: &str, src: &str) -> FileModel {
        FileModel::parse(PathBuf::from("m.rs"), crate_name, src.to_string())
    }

    #[test]
    fn extracts_calls() {
        let calls = calls_in("{ alpha(); x.beta(1); if gamma() { } vec.push(2) }");
        assert!(calls.contains("alpha"));
        assert!(calls.contains("beta"));
        assert!(calls.contains("gamma"));
        assert!(calls.contains("push"));
        assert!(!calls.contains("if"));
    }

    #[test]
    fn walks_transitively_within_crate() {
        let files = vec![file(
            "a",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn unrelated() {}",
        )];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        let names: Vec<&str> = reach
            .keys()
            .map(|&(fi, gi)| files[fi].fns[gi].name.as_str())
            .collect();
        assert_eq!(names, ["root", "mid", "leaf"]);
    }

    #[test]
    fn ubiquitous_names_are_not_resolved() {
        // A workspace fn named `new` must not become a call-graph edge:
        // `.new()`-style matches are noise that merges everything.
        let files = vec![file(
            "a",
            "fn root() { let q = Queue::new(); q.push(1); }\nfn new() { evil(); }\nfn push() {}\nfn evil() {}",
        )];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        assert_eq!(reach.len(), 1, "only the root itself is reachable");
    }

    #[test]
    fn pruned_functions_stop_the_walk() {
        let files = vec![file(
            "a",
            "fn root() { rare(); steady(); }\nfn rare() { deep(); }\nfn deep() {}\nfn steady() {}",
        )];
        let cg = CallGraph::build(&files);
        let pruned: BTreeSet<FnRef> = std::iter::once((0usize, 1usize)).collect();
        let reach = cg.reachable_pruned(&files, &[(0, 0)], &pruned);
        let names: Vec<&str> = reach
            .keys()
            .map(|&(fi, gi)| files[fi].fns[gi].name.as_str())
            .collect();
        assert_eq!(
            names,
            ["root", "steady"],
            "rare() and everything behind it pruned"
        );
    }

    #[test]
    fn ambiguous_cross_crate_names_do_not_merge() {
        let files = vec![
            file("a", "fn root() { shared(); }"),
            file("b", "fn shared() { evil(); }\nfn evil() {}"),
            file("c", "fn shared() {}"),
        ];
        let cg = CallGraph::build(&files);
        let reach = cg.reachable(&files, &[(0, 0)]);
        assert_eq!(reach.len(), 1, "shared() is ambiguous across b and c");
    }
}
