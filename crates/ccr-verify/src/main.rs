//! CLI entry point:
//!
//! ```text
//! cargo run -p ccr-verify                         # human-readable, exit 1 on findings
//! cargo run -p ccr-verify -- --emit json          # canonical JSON report on stdout
//! cargo run -p ccr-verify -- --baseline <file>    # also fail on any ID diff vs baseline
//! cargo run -p ccr-verify -- --write-baseline <f> # write the current report as baseline
//! ```

use ccr_verify::rules::RuleConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut emit_json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--emit" => match args.next().as_deref() {
                Some("json") => emit_json = true,
                Some("text") => emit_json = false,
                other => {
                    eprintln!("--emit expects `json` or `text`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "ccr-verify: workspace static-analysis gate\n\
                     usage: cargo run -p ccr-verify [-- OPTIONS]\n\
                       --root <dir>            workspace to scan (default: auto-detect)\n\
                       --emit json|text        report format (default: text)\n\
                       --baseline <file>       fail when finding IDs differ from this file\n\
                       --write-baseline <file> write the current JSON report to this file"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|p| ccr_verify::find_workspace_root(&p))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|p| ccr_verify::find_workspace_root(&p))
        });
    let Some(root) = root else {
        eprintln!("ccr-verify: could not locate a workspace root");
        return ExitCode::FAILURE;
    };

    let report = ccr_verify::run(&root, &RuleConfig::workspace());
    let json = ccr_verify::report::to_json(&report);

    if let Some(path) = &write_baseline {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("ccr-verify: cannot write baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("ccr-verify: baseline written to {}", path.display());
    }

    if emit_json {
        print!("{json}");
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "ccr-verify: {} file(s), {} fn(s) indexed, {} allow-marker(s) honoured, {} finding(s)",
            report.files_scanned,
            report.fns_indexed,
            report.markers_honoured,
            report.findings.len()
        );
    }

    // With a baseline, the gate is the ID diff (baseline findings are
    // grandfathered, and stale baseline entries are equally an error);
    // without one, any finding fails.
    let failed = if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (new, fixed) = ccr_verify::report::diff_baseline(&report, &text);
                for id in &new {
                    eprintln!("ccr-verify: finding {id} is not in the baseline");
                }
                for id in &fixed {
                    eprintln!(
                        "ccr-verify: baseline finding {id} no longer occurs — \
                         refresh the baseline with --write-baseline"
                    );
                }
                !new.is_empty() || !fixed.is_empty()
            }
            Err(e) => {
                eprintln!("ccr-verify: cannot read baseline {}: {e}", path.display());
                true
            }
        }
    } else {
        !report.findings.is_empty()
    };

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
