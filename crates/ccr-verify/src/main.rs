//! CLI entry point: `cargo run -p ccr-verify [-- --root <dir>]`.

use ccr_verify::rules::RuleConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "ccr-verify: workspace static-analysis gate\n\
                     usage: cargo run -p ccr-verify [-- --root <workspace dir>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|p| ccr_verify::find_workspace_root(&p))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|p| ccr_verify::find_workspace_root(&p))
        });
    let Some(root) = root else {
        eprintln!("ccr-verify: could not locate a workspace root");
        return ExitCode::FAILURE;
    };

    let report = ccr_verify::run(&root, &RuleConfig::workspace());
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "ccr-verify: {} file(s), {} fn(s) indexed, {} allow-marker(s) honoured, {} finding(s)",
        report.files_scanned,
        report.fns_indexed,
        report.markers_honoured,
        report.findings.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
