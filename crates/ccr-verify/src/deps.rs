//! Offline dependency audit — the registry-less stand-in for `cargo-deny`.
//!
//! The workspace's supply-chain policy is simple and strict: **zero
//! mandatory external dependencies**. Every dependency edge must be a
//! `path` dependency onto another workspace member; the only names allowed
//! to appear beyond that are the feature-gated `serde` (optional, for the
//! opt-in `serde` feature) and `loom` (only in the out-of-workspace
//! `verify/loom` model-check crate). The audit checks:
//!
//! * every `[dependencies]`/`[dev-dependencies]` entry of every member is
//!   path-based or allow-listed;
//! * every member inherits or declares a license;
//! * `Cargo.lock` contains only workspace members (no surprise external
//!   packages, hence no duplicate-version or advisory surface at all).
//!
//! When a real `cargo-deny` binary is available (CI), `scripts/check.sh`
//! additionally runs it with `deny.toml`; this audit keeps the same
//! guarantees enforceable on a fully offline checkout.

use crate::rules::{Finding, RULE_DEPS};
use std::collections::BTreeSet;
use std::path::Path;

const ALLOWED_EXTERNAL: &[&str] = &["serde", "loom"];

/// Parse very simple TOML: returns `(section, key, value)` triples.
/// Handles exactly the subset Cargo.toml files in this workspace use
/// (no arrays-of-tables values spanning lines besides inline tables).
fn toml_entries(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // `[package]`, `[[package]]`, `[workspace.dependencies]` …
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .trim_matches('"')
                .to_string();
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"').to_string();
            let val = line[eq + 1..].trim().to_string();
            out.push((section.clone(), key, val));
        }
    }
    out
}

/// Audit one member manifest.
fn audit_manifest(path: &Path, findings: &mut Vec<Finding>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        findings.push(Finding {
            path: path.display().to_string(),
            line: 1,
            rule: RULE_DEPS,
            message: "manifest unreadable".into(),
            snippet: String::new(),
        });
        return;
    };
    let entries = toml_entries(&text);
    let mut has_license = false;
    for (section, key, val) in &entries {
        if section == "package" && (key == "license" || key == "license.workspace") {
            has_license = true;
        }
        if key == "license" && section == "package" {
            has_license = true;
        }
        let dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies";
        if !dep_section {
            continue;
        }
        // `ccr-sim.workspace = true` arrives as a dotted key.
        let base = key.split('.').next().unwrap_or(key.as_str());
        let ok = val.contains("path")
            || val.contains("workspace = true")
            || (key.ends_with(".workspace") && val == "true")
            || ALLOWED_EXTERNAL.contains(&base);
        if !ok {
            findings.push(Finding {
                path: path.display().to_string(),
                line: 1,
                rule: RULE_DEPS,
                message: format!(
                    "dependency `{key}` is not a path/workspace dependency and is not \
                     allow-listed ({ALLOWED_EXTERNAL:?}): the workspace builds with zero \
                     registry access"
                ),
                snippet: format!("{key} = {val}"),
            });
        }
        if ALLOWED_EXTERNAL.contains(&base)
            && !val.contains("optional = true")
            && !val.contains("path")
            && !val.contains("workspace = true")
        {
            findings.push(Finding {
                path: path.display().to_string(),
                line: 1,
                rule: RULE_DEPS,
                message: format!("external dependency `{key}` must stay `optional = true`"),
                snippet: format!("{key} = {val}"),
            });
        }
    }
    // `license` may be inherited as `license.workspace = true`, written as
    // a dotted key inside [package].
    if !has_license
        && !entries
            .iter()
            .any(|(s, k, _)| s == "package" && k.starts_with("license"))
    {
        findings.push(Finding {
            path: path.display().to_string(),
            line: 1,
            rule: RULE_DEPS,
            message: "package declares no license (add `license.workspace = true`)".into(),
            snippet: String::new(),
        });
    }
}

/// Audit `Cargo.lock`: only workspace members may appear, each exactly once.
fn audit_lock(root: &Path, members: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let lock_path = root.join("Cargo.lock");
    let Ok(text) = std::fs::read_to_string(&lock_path) else {
        return; // a missing lock is fine (fresh checkout)
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (section, key, val) in toml_entries(&text) {
        if section != "package" || key != "name" {
            continue;
        }
        let name = val.trim_matches('"').to_string();
        if !members.contains(&name) {
            findings.push(Finding {
                path: lock_path.display().to_string(),
                line: 1,
                rule: RULE_DEPS,
                message: format!(
                    "Cargo.lock contains non-workspace package `{name}`: external \
                     dependencies are forbidden"
                ),
                snippet: format!("name = \"{name}\""),
            });
        }
        if !seen.insert(name.clone()) {
            findings.push(Finding {
                path: lock_path.display().to_string(),
                line: 1,
                rule: RULE_DEPS,
                message: format!("duplicate versions of `{name}` in Cargo.lock"),
                snippet: format!("name = \"{name}\""),
            });
        }
    }
}

/// Run the whole dependency audit for a workspace rooted at `root`, given
/// the member manifests found by the scanner.
pub fn audit(root: &Path, manifests: &[std::path::PathBuf]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut members: BTreeSet<String> = BTreeSet::new();
    for m in manifests {
        if let Ok(text) = std::fs::read_to_string(m) {
            for (section, key, val) in toml_entries(&text) {
                if section == "package" && key == "name" {
                    members.insert(val.trim_matches('"').to_string());
                }
            }
        }
    }
    for m in manifests {
        audit_manifest(m, &mut findings);
    }
    audit_lock(root, &members, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_parses_sections_and_keys() {
        let e =
            toml_entries("[package]\nname = \"x\"\n[dependencies]\nfoo = { path = \"../foo\" }\n");
        assert!(e.contains(&("package".into(), "name".into(), "\"x\"".into())));
        assert_eq!(e[1].0, "dependencies");
    }

    #[test]
    fn external_dep_is_flagged() {
        let dir = std::env::temp_dir().join("ccr_verify_deps_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let manifest = dir.join("Cargo.toml");
        std::fs::write(
            &manifest,
            "[package]\nname = \"evil\"\nlicense = \"MIT\"\n[dependencies]\nrand = \"0.8\"\n",
        )
        .expect("write manifest");
        let findings = audit(&dir, &[manifest]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RULE_DEPS && f.message.contains("`rand`")),
            "{findings:?}"
        );
    }
}
