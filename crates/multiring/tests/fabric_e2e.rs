//! End-to-end fabric acceptance tests: bridge-crossing delivery within
//! decomposed deadlines, admission rejection of infeasible sets, and
//! bit-identical serial-vs-parallel stepping.

use ccr_multiring::prelude::*;

fn chain_fabric(rings: u16, nodes: u16, threads: usize, seed: u64) -> Fabric {
    let topo = FabricTopology::chain(rings, nodes);
    let cfg = FabricConfig::uniform(topo, 2048, seed)
        .unwrap()
        .threads(threads);
    Fabric::new(cfg).unwrap()
}

#[test]
fn two_ring_smoke_crosses_the_bridge_within_deadline() {
    let mut fabric = chain_fabric(2, 6, 1, 101);
    let slot = fabric.segment_envs()[0].slot;
    fabric
        .open_connection(
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                .period(slot.times(200)),
        )
        .unwrap();
    fabric.run_slots(5_000);
    let m = fabric.metrics();
    assert!(
        m.e2e_delivered.get() >= 20,
        "cross-ring traffic flows: {m:?}"
    );
    assert_eq!(
        m.e2e_missed.get(),
        0,
        "a lone light connection meets every decomposed deadline"
    );
    assert!(m.forwarded.get() >= m.e2e_delivered.get());
    assert_eq!(m.bridge_drops.get(), 0);
    // both segments saw traffic
    assert!(m.segment_latency.len() == 2);
    assert!(m.segment_latency[0].count() > 0 && m.segment_latency[1].count() > 0);
}

#[test]
fn three_ring_two_bridge_set_admits_and_meets_deadlines() {
    let mut fabric = chain_fabric(3, 8, 1, 202);
    let slot = fabric.segment_envs()[0].slot;
    // A cross-ring set spanning one and two bridges, plus a local stream.
    let set = [
        FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 3))
            .period(slot.times(400)), // crosses both bridges
        FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 4))
            .period(slot.times(300)), // crosses bridge 0
        FabricConnectionSpec::unicast(GlobalNodeId::new(1, 2), GlobalNodeId::new(2, 5))
            .period(slot.times(300)), // crosses bridge 1
        FabricConnectionSpec::unicast(GlobalNodeId::new(2, 1), GlobalNodeId::new(2, 6))
            .period(slot.times(250)), // stays on ring 2
    ];
    for spec in set {
        fabric.open_connection(spec).expect("feasible set admits");
    }
    assert_eq!(fabric.active_connections(), 4);
    fabric.run_slots(20_000);
    let m = fabric.metrics();
    assert!(m.e2e_delivered.get() >= 200, "all streams deliver: {m:?}");
    assert_eq!(m.e2e_missed.get(), 0, "decomposed deadlines all met: {m:?}");
    assert_eq!(m.bridge_drops.get(), 0);
    // three-segment routes populate three per-hop histograms
    assert_eq!(m.segment_latency.len(), 3);
    assert!(m.peak_bridge_occupancy >= 1, "bridges actually buffered");
}

#[test]
fn infeasible_set_rejected_at_admission() {
    let mut fabric = chain_fabric(2, 6, 1, 303);
    let slot = fabric.segment_envs()[0].slot;
    // Deadline below the segment floors: rejected before touching a ring.
    let too_tight = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
        .period(slot.times(100))
        .e2e_deadline(slot.times(2));
    assert!(matches!(
        fabric.open_connection(too_tight),
        Err(FabricAdmissionError::DeadlineTooTight { .. })
    ));
    // Utilisation overload: greedily admit until a segment bounces, and
    // verify the rejection is all-or-nothing (no residue on either ring).
    let mut admitted = 0u32;
    let err = loop {
        let spec = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
            .period(slot.times(12));
        match fabric.open_connection(spec) {
            Ok(_) => admitted += 1,
            Err(e) => break e,
        }
        assert!(admitted < 1_000, "admission never saturated");
    };
    assert!(
        matches!(
            err,
            FabricAdmissionError::SegmentRejected { .. }
                | FabricAdmissionError::BridgeOverload { .. }
        ),
        "unexpected rejection: {err:?}"
    );
    assert!(admitted >= 1, "some connections fit before saturation");
    assert_eq!(fabric.active_connections() as u32, admitted);
}

#[test]
fn parallel_stepping_is_bit_identical_to_serial() {
    let run = |threads: usize| {
        let mut fabric = chain_fabric(3, 8, threads, 404);
        let slot = fabric.segment_envs()[0].slot;
        let set = [
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 3))
                .period(slot.times(150)),
            FabricConnectionSpec::unicast(GlobalNodeId::new(1, 3), GlobalNodeId::new(0, 2))
                .period(slot.times(170)),
            FabricConnectionSpec::unicast(GlobalNodeId::new(2, 4), GlobalNodeId::new(1, 1))
                .period(slot.times(190)),
        ];
        for spec in set {
            fabric.open_connection(spec).unwrap();
        }
        fabric.run_slots(8_000);
        let per_ring: Vec<_> = (0..3).map(|r| fabric.ring_metrics(RingId(r))).collect();
        (fabric.metrics().clone(), per_ring)
    };
    let (serial, serial_rings) = run(1);
    assert!(serial.e2e_delivered.get() > 0, "scenario produces traffic");
    for threads in [2usize, 4, 8] {
        let (parallel, parallel_rings) = run(threads);
        assert_eq!(
            serial, parallel,
            "fabric metrics diverge at {threads} threads"
        );
        assert_eq!(
            serial_rings, parallel_rings,
            "per-ring metrics diverge at {threads} threads"
        );
    }
}

#[test]
fn faulty_rings_keep_fabric_deterministic() {
    // Token-loss fault injection exercises each ring's RNG; determinism
    // must still hold because every ring owns an independent seeded RNG.
    let run = |threads: usize| {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 505)
            .unwrap()
            .threads(threads);
        for rc in &mut cfg.ring_configs {
            rc.faults.token_loss_prob = 0.02;
            rc.faults.recovery_timeout_slots = 3;
        }
        let mut fabric = Fabric::new(cfg).unwrap();
        let slot = fabric.segment_envs()[0].slot;
        fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(slot.times(100)),
            )
            .unwrap();
        fabric.run_slots(6_000);
        fabric.metrics().clone()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    assert!(serial.e2e_delivered.get() > 0);
}
