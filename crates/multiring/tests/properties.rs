//! Property and regression tests for the fabric layer.
//!
//! * `decompose_deadline` must split an end-to-end deadline so the per-hop
//!   budgets sum back *exactly*, to the picosecond, for arbitrary hop
//!   counts, weights and deadlines — the e2e guarantee composes from the
//!   per-segment guarantees only if nothing is lost to rounding.
//! * The restart-node election composed with a fault-cascaded bridge kill
//!   must stay bit-identical across ring-phase thread counts.

use ccr_edf::fault::FaultKind;
use ccr_multiring::bridge::decompose_deadline;
use ccr_multiring::prelude::*;
use ccr_phys::NodeId;
use ccr_sim::rng::DetRng;
use ccr_sim::TimeDelta;

#[test]
fn deadline_decomposition_sums_exactly_for_random_inputs() {
    let mut rng = DetRng::new(0xDEC0);
    for case in 0..2_000 {
        let hops = rng.gen_range(1..=12u32) as usize;
        let mut weights: Vec<u64> = (0..hops)
            .map(|_| match rng.gen_range(0..4u32) {
                0 => 0, // zero-weight hops are legal as long as one is not
                1 => rng.gen_range(1..=8u64),
                2 => rng.gen_range(1..=u32::MAX as u64),
                _ => rng.gen_range(1..=u64::MAX / 16),
            })
            .collect();
        if weights.iter().all(|&w| w == 0) {
            weights[0] = 1;
        }
        // Deadlines from a single picosecond up to centuries.
        let e2e_ps = match rng.gen_range(0..4u32) {
            0 => rng.gen_range(0..=hops as u64),
            1 => rng.gen_range(1..=1_000_000u64),
            2 => rng.gen_range(1..=u64::MAX / 2),
            _ => u64::MAX - rng.gen_range(0..=1_000u64),
        };
        let e2e = TimeDelta::from_ps(e2e_ps);

        let budgets = decompose_deadline(e2e, &weights)
            .unwrap_or_else(|| panic!("case {case}: decomposition must exist"));
        assert_eq!(budgets.len(), hops, "case {case}: one budget per hop");
        let sum: u128 = budgets.iter().map(|b| b.as_ps() as u128).sum();
        assert_eq!(
            sum, e2e_ps as u128,
            "case {case}: budgets must sum exactly to the e2e deadline \
             (weights {weights:?}, e2e {e2e_ps} ps)"
        );
        // Each budget is its floor share plus at most one remainder ps.
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        for (hop, (&w, b)) in weights.iter().zip(&budgets).enumerate() {
            let floor = ((e2e_ps as u128 * w as u128) / total) as u64;
            assert!(
                b.as_ps() == floor || b.as_ps() == floor + 1,
                "case {case} hop {hop}: budget {} strays from floor share {floor}",
                b.as_ps()
            );
        }
    }
}

#[test]
fn degenerate_decompositions_are_rejected() {
    assert!(decompose_deadline(TimeDelta::from_us(1), &[]).is_none());
    assert!(decompose_deadline(TimeDelta::from_us(1), &[0, 0, 0]).is_none());
}

/// Triangle fabric where ring 0's node 0 is both the designated restart
/// node and a bridge endpoint: failing it cascades into a bridge kill, and
/// the follow-up token loss forces the restart-successor election. The
/// whole composition must replay bit-identically for any ring-phase thread
/// count.
fn election_with_bridge_kill(threads: usize) -> (FabricMetrics, Vec<ccr_edf::metrics::Metrics>) {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(6);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
    b.allow_cycles_with(CycleBound::unbounded());
    let topo = b.build().unwrap();

    let mut cfg = FabricConfig::uniform(topo, 2_048, 0xE1EC).unwrap();
    for rc in &mut cfg.ring_configs {
        rc.faults.recovery_timeout_slots = 6;
    }
    let cfg = cfg.threads(threads).fault_script(
        FabricFaultScript::new()
            // Kills the designated restart node; its bridge dies with it.
            .ring_at(100, RingId(0), FaultKind::FailNode(NodeId(0)))
            // Clock loss with node 0 dead: the election must pick the
            // nearest live successor.
            .ring_at(150, RingId(0), FaultKind::LoseToken),
    );
    let mut fabric = Fabric::new(cfg).unwrap();
    fabric
        .open_connection(
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                .period(TimeDelta::from_ms(5)),
        )
        .unwrap();
    fabric.run_slots(20_000);
    fabric.flush_health_series();
    let rings = (0..3).map(|r| fabric.ring_metrics(RingId(r))).collect();
    (fabric.metrics().clone(), rings)
}

#[test]
fn restart_election_with_bridge_kill_is_thread_count_invariant() {
    let (serial, serial_rings) = election_with_bridge_kill(1);

    // The story actually happened: the node death took its bridge down,
    // the ring lost and recovered its clock, and the crossing connection
    // failed over to the detour through ring 2.
    assert_eq!(serial.bridges_killed.get(), 1, "cascaded bridge kill");
    assert!(serial.e2e_rerouted.get() >= 1, "detour reroute happened");
    assert!(
        serial.degraded_slots.get() > 0,
        "recovery dead time counted"
    );
    assert!(serial.e2e_delivered.get() > 0, "traffic resumed");
    assert_eq!(serial_rings[0].nodes_failed.get(), 1);
    assert!(serial_rings[0].tokens_lost.get() >= 1);
    assert!(serial_rings[0].recovery_slots.get() > 0);
    // The per-ring availability series localises the damage: both bridge-0
    // endpoint rings (0: node death + clock loss, 1: peer station bypass)
    // spent recovery slots degraded, while untouched ring 2 stayed at 1.0.
    assert!(serial.ring_availability_total(0) < 1.0);
    assert!(serial.ring_availability_total(1) < 1.0);
    assert_eq!(serial.ring_availability_total(2), 1.0);
    assert!(!serial.ring_availability.is_empty());

    for threads in [2usize, 4] {
        let (parallel, parallel_rings) = election_with_bridge_kill(threads);
        assert_eq!(
            serial, parallel,
            "fabric metrics diverge at {threads} threads"
        );
        assert_eq!(
            serial_rings, parallel_rings,
            "per-ring metrics diverge at {threads} threads"
        );
    }
}

/// Kill → repair → reclaim on a cyclic fabric: bridge 0 dies at slot 200
/// (the crossing connection detours through ring 2), comes back at slot
/// 6_000 (the connection is reclaimed onto the direct route), and the
/// whole story must replay bit-identically for any ring-phase thread
/// count.
fn kill_repair_reclaim(threads: usize) -> (FabricMetrics, Vec<ccr_edf::metrics::Metrics>) {
    let mut b = FabricTopology::builder();
    for _ in 0..3 {
        b.ring(6);
    }
    b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
    b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
    b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
    b.allow_cycles_with(CycleBound::unbounded());
    let topo = b.build().unwrap();

    let mut cfg = FabricConfig::uniform(topo, 2_048, 0x4EA1).unwrap();
    for rc in &mut cfg.ring_configs {
        rc.faults.recovery_timeout_slots = 6;
    }
    let cfg = cfg.threads(threads).fault_script(
        FabricFaultScript::new()
            .kill_bridge_at(200, 0)
            .repair_bridge_at(6_000, 0),
    );
    let mut fabric = Fabric::new(cfg).unwrap();
    fabric
        .open_connection(
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                .period(TimeDelta::from_ms(5)),
        )
        .unwrap();
    fabric.run_slots(20_000);
    fabric.flush_health_series();
    let rings = (0..3).map(|r| fabric.ring_metrics(RingId(r))).collect();
    (fabric.metrics().clone(), rings)
}

#[test]
fn kill_repair_reclaim_is_thread_count_invariant() {
    let (serial, serial_rings) = kill_repair_reclaim(1);

    assert_eq!(serial.bridges_killed.get(), 1);
    assert_eq!(serial.bridges_repaired.get(), 1, "repair landed");
    assert!(serial.e2e_rerouted.get() >= 1, "detour on the kill");
    assert!(
        serial.e2e_reclaimed.get() >= 1,
        "direct route reclaimed after the repair"
    );
    assert!(serial.e2e_delivered.get() > 0, "traffic kept flowing");
    // The repaired ports rejoined their rings.
    assert!(serial_rings[0].nodes_repaired.get() >= 1);
    assert!(serial_rings[1].nodes_repaired.get() >= 1);

    for threads in [2usize, 4] {
        let (parallel, parallel_rings) = kill_repair_reclaim(threads);
        assert_eq!(
            serial, parallel,
            "fabric metrics diverge at {threads} threads"
        );
        assert_eq!(
            serial_rings, parallel_rings,
            "per-ring metrics diverge at {threads} threads"
        );
    }
}
