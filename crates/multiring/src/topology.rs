//! Fabric topology: rings, bridge nodes, and the validated static routing
//! table.
//!
//! A *fabric* interconnects several CCR-EDF rings through **bridge nodes**
//! — a bridge is one physical station with a port on each of two rings. The
//! topology is static: routes (sequences of ring segments) are computed
//! once at build time by breadth-first search over the *ring graph* (rings
//! are vertices, bridges are edges) with a deterministic tie-break, so the
//! same fabric always routes the same way.
//!
//! Cyclic inter-ring dependencies — a cycle in the ring graph — are the
//! hard case of Amari & Mifdaoui ("Enhancing Performance Bounds of
//! Multiple-Ring Networks with Cyclic Dependencies based on Network
//! Calculus"): per-segment bounds no longer compose by simple summation.
//! The builder therefore **rejects** cyclic fabrics by default; callers
//! opt in with [`FabricTopologyBuilder::allow_cycles_with`], choosing how
//! the cycle is to be bounded: [`CycleBound::Calculus`] routes every
//! admission through the `ccr-calculus` min-plus fixed-point solver
//! (certified finite e2e bounds, the default), while
//! [`CycleBound::unbounded()`] is the explicit simulation-only escape
//! hatch. The decision is preserved as [`FabricTopology::is_cyclic`] /
//! [`FabricTopology::cycle_bound`] so admission and reporting layers can
//! surface it.

use ccr_phys::NodeId;
use std::collections::HashMap;

/// Identity of one ring in the fabric.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingId(pub u16);

impl std::fmt::Display for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A node addressed fabric-wide: ring plus position on that ring.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalNodeId {
    /// The ring the node sits on.
    pub ring: RingId,
    /// The node's position on that ring.
    pub node: NodeId,
}

impl GlobalNodeId {
    /// Shorthand constructor.
    pub fn new(ring: u16, node: u16) -> Self {
        GlobalNodeId {
            ring: RingId(ring),
            node: NodeId(node),
        }
    }
}

impl std::fmt::Display for GlobalNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ring, self.node)
    }
}

/// A bridge: one station present on two (distinct) rings.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bridge {
    /// First port.
    pub a: GlobalNodeId,
    /// Second port.
    pub b: GlobalNodeId,
}

impl Bridge {
    /// The bridge's port on `ring`, if it has one.
    pub fn port_on(&self, ring: RingId) -> Option<NodeId> {
        if self.a.ring == ring {
            Some(self.a.node)
        } else if self.b.ring == ring {
            Some(self.b.node)
        } else {
            None
        }
    }

    /// The ring on the far side of the bridge from `ring`.
    pub fn other_ring(&self, ring: RingId) -> Option<RingId> {
        if self.a.ring == ring {
            Some(self.b.ring)
        } else if self.b.ring == ring {
            Some(self.a.ring)
        } else {
            None
        }
    }
}

/// An inter-ring route: the rings visited and the bridges crossed between
/// them (`rings.len() == bridges.len() + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Rings visited, source ring first.
    pub rings: Vec<RingId>,
    /// Indices into [`FabricTopology::bridges`], one per crossing.
    pub bridges: Vec<usize>,
}

/// One ring traversal of an end-to-end path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The ring this segment runs on.
    pub ring: RingId,
    /// Entry node (the original source, or the ingress bridge port).
    pub from: NodeId,
    /// Exit node (the egress bridge port, or the final destination).
    pub to: NodeId,
    /// The bridge crossed *after* this segment (`None` on the last one).
    pub bridge: Option<usize>,
}

/// Why a topology failed to validate, or a path could not be formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A bridge references a ring that does not exist.
    UnknownRing(RingId),
    /// A bridge port lies outside its ring.
    PortOutOfRange(GlobalNodeId),
    /// A bridge joins a ring to itself.
    SelfBridge(RingId),
    /// The ring graph contains a cycle and cycles were not allowed.
    CyclicFabric {
        /// The bridge whose addition closed the cycle.
        closing_bridge: usize,
    },
    /// No bridge path connects the two rings.
    NoRoute(RingId, RingId),
    /// A path segment would start and end on the same node (the source or
    /// destination coincides with a bridge port in a way that leaves a
    /// zero-length ring traversal).
    DegenerateSegment {
        /// The ring of the degenerate segment.
        ring: RingId,
        /// The coinciding node.
        node: NodeId,
    },
    /// Source and destination are the same node.
    SelfConnection(GlobalNodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownRing(r) => write!(f, "bridge references unknown ring {r}"),
            TopologyError::PortOutOfRange(g) => write!(f, "bridge port {g} outside its ring"),
            TopologyError::SelfBridge(r) => write!(f, "bridge joins ring {r} to itself"),
            TopologyError::CyclicFabric { closing_bridge } => write!(
                f,
                "bridge #{closing_bridge} closes a ring-graph cycle (cyclic inter-ring \
                 dependencies need an explicit bound: allow_cycles_with(CycleBound::…))"
            ),
            TopologyError::NoRoute(a, b) => write!(f, "no bridge path from {a} to {b}"),
            TopologyError::DegenerateSegment { ring, node } => write!(
                f,
                "degenerate segment on {ring}: entry and exit are both {node}"
            ),
            TopologyError::SelfConnection(g) => write!(f, "connection from {g} to itself"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// How the end-to-end guarantees of a **cyclic** ring graph are bounded.
///
/// Acyclic fabrics compose per-ring budgets by summation; a cycle breaks
/// that argument, so the builder demands an explicit policy before it will
/// accept one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleBound {
    /// Certify every admission with the min-plus network-calculus
    /// fixed-point solver (`ccr-calculus`): connections are only admitted
    /// when the whole set converges to finite end-to-end bounds within
    /// every deadline. The default, and the only analytically sound choice.
    #[default]
    Calculus,
    /// **Escape hatch — no analytic end-to-end bound.** Admission falls
    /// back to the per-ring utilisation tests alone, whose composition
    /// argument does *not* cover cyclic dependencies: admitted traffic can
    /// miss e2e deadlines under adversarial phasing. Only for experiments
    /// that measure the unbounded behaviour on purpose.
    Unbounded,
}

impl CycleBound {
    /// The explicit escape hatch (see [`CycleBound::Unbounded`]): accept
    /// cycles with **no** end-to-end guarantee. Prefer the default
    /// [`CycleBound::Calculus`] everywhere traffic matters.
    pub fn unbounded() -> Self {
        CycleBound::Unbounded
    }
}

/// Builder for [`FabricTopology`].
#[derive(Debug, Default)]
pub struct FabricTopologyBuilder {
    ring_sizes: Vec<u16>,
    bridges: Vec<Bridge>,
    cycle_bound: Option<CycleBound>,
}

impl FabricTopologyBuilder {
    /// Add one ring of `n_nodes` nodes; returns its id.
    pub fn ring(&mut self, n_nodes: u16) -> RingId {
        self.ring_sizes.push(n_nodes);
        RingId(self.ring_sizes.len() as u16 - 1)
    }

    /// Add a bridge between two ports.
    pub fn bridge(&mut self, a: GlobalNodeId, b: GlobalNodeId) -> &mut Self {
        self.bridges.push(Bridge { a, b });
        self
    }

    /// Accept ring-graph cycles under an explicit bounding policy.
    ///
    /// With [`CycleBound::Calculus`] (the default policy value) the fabric
    /// engine routes every admission on the cyclic fabric through the
    /// min-plus fixed-point solver and only admits sets with certified
    /// finite end-to-end bounds. [`CycleBound::unbounded()`] restores the
    /// historical flag behaviour — cycles accepted with no analytic bound.
    pub fn allow_cycles_with(&mut self, bound: CycleBound) -> &mut Self {
        self.cycle_bound = Some(bound);
        self
    }

    /// Accept ring-graph cycles (flagged, not analytically bounded).
    #[deprecated(
        since = "0.1.0",
        note = "a bare flag admits cycles with no end-to-end bound; use \
                `allow_cycles_with(CycleBound::Calculus)` for certified \
                admission, or `allow_cycles_with(CycleBound::unbounded())` \
                to keep the old behaviour on purpose"
    )]
    pub fn allow_cycles(&mut self, allow: bool) -> &mut Self {
        self.cycle_bound = allow.then_some(CycleBound::Unbounded);
        self
    }

    /// Validate and freeze the topology, computing the routing table.
    pub fn build(&self) -> Result<FabricTopology, TopologyError> {
        let n_rings = self.ring_sizes.len() as u16;
        // Validate bridges.
        for br in &self.bridges {
            for port in [br.a, br.b] {
                if port.ring.0 >= n_rings {
                    return Err(TopologyError::UnknownRing(port.ring));
                }
                if port.node.0 >= self.ring_sizes[port.ring.0 as usize] {
                    return Err(TopologyError::PortOutOfRange(port));
                }
            }
            if br.a.ring == br.b.ring {
                return Err(TopologyError::SelfBridge(br.a.ring));
            }
        }
        // Cycle detection by union-find over the ring graph: an edge whose
        // endpoints are already connected closes a cycle (this also catches
        // two parallel bridges between the same ring pair).
        let mut parent: Vec<usize> = (0..n_rings as usize).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut cyclic = false;
        for (i, br) in self.bridges.iter().enumerate() {
            let (ra, rb) = (
                find(&mut parent, br.a.ring.0 as usize),
                find(&mut parent, br.b.ring.0 as usize),
            );
            if ra == rb {
                cyclic = true;
                if self.cycle_bound.is_none() {
                    return Err(TopologyError::CyclicFabric { closing_bridge: i });
                }
            } else {
                parent[ra] = rb;
            }
        }
        // All-pairs shortest routes over the ring graph, BFS from every
        // ring. Neighbours are scanned in bridge-index order, so the
        // tie-break (fewest crossings, then lowest bridge indices) is
        // deterministic.
        let mut routes = HashMap::new();
        for src in 0..n_rings {
            let mut prev: Vec<Option<(u16, usize)>> = vec![None; n_rings as usize];
            let mut seen = vec![false; n_rings as usize];
            let mut queue = std::collections::VecDeque::new();
            seen[src as usize] = true;
            queue.push_back(src);
            while let Some(r) = queue.pop_front() {
                for (bi, br) in self.bridges.iter().enumerate() {
                    let Some(next) = br.other_ring(RingId(r)) else {
                        continue;
                    };
                    if !seen[next.0 as usize] {
                        seen[next.0 as usize] = true;
                        prev[next.0 as usize] = Some((r, bi));
                        queue.push_back(next.0);
                    }
                }
            }
            for dst in 0..n_rings {
                if dst == src || !seen[dst as usize] {
                    continue;
                }
                let mut rings = vec![RingId(dst)];
                let mut bridges = Vec::new();
                let mut cur = dst;
                while let Some((p, bi)) = prev[cur as usize] {
                    bridges.push(bi);
                    rings.push(RingId(p));
                    cur = p;
                }
                rings.reverse();
                bridges.reverse();
                routes.insert((RingId(src), RingId(dst)), Route { rings, bridges });
            }
        }
        Ok(FabricTopology {
            ring_sizes: self.ring_sizes.clone(),
            bridges: self.bridges.clone(),
            routes,
            cyclic,
            cycle_bound: if cyclic { self.cycle_bound } else { None },
        })
    }
}

/// The validated, frozen fabric topology with its static routing table.
#[derive(Debug, Clone)]
pub struct FabricTopology {
    ring_sizes: Vec<u16>,
    bridges: Vec<Bridge>,
    routes: HashMap<(RingId, RingId), Route>,
    cyclic: bool,
    cycle_bound: Option<CycleBound>,
}

impl FabricTopology {
    /// Start building a topology.
    pub fn builder() -> FabricTopologyBuilder {
        FabricTopologyBuilder::default()
    }

    /// A chain of `n_rings` rings of `nodes_per_ring` nodes each, bridged
    /// ring *i* node `n−1` ↔ ring *i+1* node `0` — the canonical acyclic
    /// fabric used by experiments and benchmarks.
    pub fn chain(n_rings: u16, nodes_per_ring: u16) -> FabricTopology {
        let mut b = Self::builder();
        for _ in 0..n_rings {
            b.ring(nodes_per_ring);
        }
        for i in 0..n_rings.saturating_sub(1) {
            b.bridge(
                GlobalNodeId::new(i, nodes_per_ring - 1),
                GlobalNodeId::new(i + 1, 0),
            );
        }
        b.build().expect("chain fabric is always valid")
    }

    /// Number of rings.
    pub fn n_rings(&self) -> u16 {
        self.ring_sizes.len() as u16
    }

    /// Node count of ring `r`.
    pub fn ring_size(&self, r: RingId) -> u16 {
        self.ring_sizes[r.0 as usize]
    }

    /// The bridges, in declaration order.
    pub fn bridges(&self) -> &[Bridge] {
        &self.bridges
    }

    /// Number of directed bridge queues in the engine's layout: two per
    /// bridge — queue `2b` carries a→b traffic, `2b+1` carries b→a.
    pub fn n_queues(&self) -> usize {
        self.bridges.len() * 2
    }

    /// The ring index each directed bridge queue drains into, in the
    /// engine's `2b`/`2b+1` layout (queue `2b` egresses on bridge `b`'s
    /// `b`-side ring, queue `2b+1` on its `a`-side ring). This is the
    /// `queue_egress` table [`crate::calculus::CalculusAdmission::new`]
    /// expects, derivable from the topology alone — which is what lets a
    /// synthesizer certify candidates without building fabrics.
    pub fn queue_egress(&self) -> Vec<usize> {
        (0..self.n_queues())
            .map(|q| {
                let br = &self.bridges[q / 2];
                if q % 2 == 0 {
                    br.b.ring.0 as usize
                } else {
                    br.a.ring.0 as usize
                }
            })
            .collect()
    }

    /// The directed bridge-queue index crossed when leaving `from_ring`
    /// over bridge `bridge` (an index into [`bridges`](Self::bridges)).
    pub fn queue_index(&self, bridge: usize, from_ring: RingId) -> usize {
        if self.bridges[bridge].a.ring == from_ring {
            2 * bridge
        } else {
            2 * bridge + 1
        }
    }

    /// True when the ring graph contains a cycle (only possible when the
    /// builder was told to allow them).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// The bounding policy this cyclic fabric was built with; `None` for
    /// acyclic fabrics (the summation argument covers those).
    pub fn cycle_bound(&self) -> Option<CycleBound> {
        self.cycle_bound
    }

    /// The precomputed route between two distinct rings, if connected.
    pub fn route(&self, from: RingId, to: RingId) -> Option<&Route> {
        self.routes.get(&(from, to))
    }

    /// Shortest route from `from` to `to` that crosses no bridge flagged in
    /// `dead` (indexed by bridge index; missing entries count as alive).
    /// Same BFS and tie-break as the static table, computed on demand —
    /// this is how the fabric re-routes around a failed bridge. Returns
    /// `None` when the surviving bridges no longer connect the rings.
    pub fn route_avoiding(&self, from: RingId, to: RingId, dead: &[bool]) -> Option<Route> {
        if from == to {
            return None;
        }
        let n = self.ring_sizes.len();
        let mut prev: Vec<Option<(u16, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from.0 as usize] = true;
        queue.push_back(from.0);
        while let Some(r) = queue.pop_front() {
            for (bi, br) in self.bridges.iter().enumerate() {
                if dead.get(bi).copied().unwrap_or(false) {
                    continue;
                }
                let Some(next) = br.other_ring(RingId(r)) else {
                    continue;
                };
                if !seen[next.0 as usize] {
                    seen[next.0 as usize] = true;
                    prev[next.0 as usize] = Some((r, bi));
                    queue.push_back(next.0);
                }
            }
        }
        if !seen[to.0 as usize] {
            return None;
        }
        let mut rings = vec![to];
        let mut bridges = Vec::new();
        let mut cur = to.0;
        while let Some((p, bi)) = prev[cur as usize] {
            bridges.push(bi);
            rings.push(RingId(p));
            cur = p;
        }
        rings.reverse();
        bridges.reverse();
        Some(Route { rings, bridges })
    }

    /// Expand an end-to-end path into its ring segments.
    pub fn segments(
        &self,
        src: GlobalNodeId,
        dst: GlobalNodeId,
    ) -> Result<Vec<Segment>, TopologyError> {
        if src == dst {
            return Err(TopologyError::SelfConnection(src));
        }
        if src.ring == dst.ring {
            return Ok(vec![Segment {
                ring: src.ring,
                from: src.node,
                to: dst.node,
                bridge: None,
            }]);
        }
        let route = self
            .route(src.ring, dst.ring)
            .ok_or(TopologyError::NoRoute(src.ring, dst.ring))?
            .clone();
        self.expand_route(&route, src, dst)
    }

    /// Like [`segments`](Self::segments), but routed around the bridges
    /// flagged in `dead`. Same-ring paths never cross a bridge and are
    /// unaffected.
    pub fn segments_avoiding(
        &self,
        src: GlobalNodeId,
        dst: GlobalNodeId,
        dead: &[bool],
    ) -> Result<Vec<Segment>, TopologyError> {
        if src == dst {
            return Err(TopologyError::SelfConnection(src));
        }
        if src.ring == dst.ring {
            return Ok(vec![Segment {
                ring: src.ring,
                from: src.node,
                to: dst.node,
                bridge: None,
            }]);
        }
        let route = self
            .route_avoiding(src.ring, dst.ring, dead)
            .ok_or(TopologyError::NoRoute(src.ring, dst.ring))?;
        self.expand_route(&route, src, dst)
    }

    fn expand_route(
        &self,
        route: &Route,
        src: GlobalNodeId,
        dst: GlobalNodeId,
    ) -> Result<Vec<Segment>, TopologyError> {
        let mut segs = Vec::with_capacity(route.rings.len());
        let mut entry = src.node;
        for (i, &ring) in route.rings.iter().enumerate() {
            let (exit, bridge) = if i < route.bridges.len() {
                let bi = route.bridges[i];
                let port = self.bridges[bi].port_on(ring).expect("route port");
                (port, Some(bi))
            } else {
                (dst.node, None)
            };
            if entry == exit {
                return Err(TopologyError::DegenerateSegment { ring, node: entry });
            }
            segs.push(Segment {
                ring,
                from: entry,
                to: exit,
                bridge,
            });
            if let Some(bi) = bridge {
                let next_ring = route.rings[i + 1];
                entry = self.bridges[bi].port_on(next_ring).expect("route port");
            }
        }
        Ok(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_routes_end_to_end() {
        let t = FabricTopology::chain(3, 4);
        assert_eq!(t.n_rings(), 3);
        assert_eq!(t.bridges().len(), 2);
        assert!(!t.is_cyclic());
        let r = t.route(RingId(0), RingId(2)).unwrap();
        assert_eq!(r.rings, vec![RingId(0), RingId(1), RingId(2)]);
        assert_eq!(r.bridges, vec![0, 1]);
        // reverse direction too
        let r = t.route(RingId(2), RingId(0)).unwrap();
        assert_eq!(r.rings, vec![RingId(2), RingId(1), RingId(0)]);
    }

    #[test]
    fn segments_expand_with_bridge_ports() {
        let t = FabricTopology::chain(3, 4);
        let segs = t
            .segments(GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 2))
            .unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                ring: RingId(0),
                from: NodeId(1),
                to: NodeId(3),
                bridge: Some(0),
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                ring: RingId(1),
                from: NodeId(0),
                to: NodeId(3),
                bridge: Some(1),
            }
        );
        assert_eq!(
            segs[2],
            Segment {
                ring: RingId(2),
                from: NodeId(0),
                to: NodeId(2),
                bridge: None,
            }
        );
    }

    #[test]
    fn same_ring_is_one_segment() {
        let t = FabricTopology::chain(2, 4);
        let segs = t
            .segments(GlobalNodeId::new(1, 0), GlobalNodeId::new(1, 3))
            .unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].bridge, None);
    }

    #[test]
    fn cycle_rejected_by_default_flagged_when_allowed() {
        let mut b = FabricTopology::builder();
        let r0 = b.ring(4);
        let r1 = b.ring(4);
        let r2 = b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
        b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1)); // closes the cycle
        let err = b.build().unwrap_err();
        assert_eq!(err, TopologyError::CyclicFabric { closing_bridge: 2 });
        b.allow_cycles_with(CycleBound::Calculus);
        let t = b.build().unwrap();
        assert!(t.is_cyclic());
        assert_eq!(t.cycle_bound(), Some(CycleBound::Calculus));
        // routes still defined (shortest path, one crossing each)
        assert_eq!(t.route(r0, r1).unwrap().bridges.len(), 1);
        assert_eq!(t.route(r0, r2).unwrap().bridges.len(), 1);
        let _ = (r0, r1, r2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_allow_cycles_flag_maps_to_unbounded() {
        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 2)); // parallel pair = cycle
        b.allow_cycles(true);
        let t = b.build().unwrap();
        assert!(t.is_cyclic());
        assert_eq!(t.cycle_bound(), Some(CycleBound::Unbounded));
        // Turning the flag back off restores the rejection.
        b.allow_cycles(false);
        assert!(matches!(
            b.build(),
            Err(TopologyError::CyclicFabric { closing_bridge: 1 })
        ));
        // Acyclic fabrics never carry a policy.
        assert_eq!(FabricTopology::chain(3, 4).cycle_bound(), None);
    }

    #[test]
    fn parallel_bridges_count_as_cycle() {
        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 2));
        assert!(matches!(
            b.build(),
            Err(TopologyError::CyclicFabric { closing_bridge: 1 })
        ));
    }

    #[test]
    fn disconnected_rings_have_no_route() {
        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        let t = b.build().unwrap();
        assert!(t.route(RingId(0), RingId(1)).is_none());
        assert_eq!(
            t.segments(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 1)),
            Err(TopologyError::NoRoute(RingId(0), RingId(1)))
        );
    }

    #[test]
    fn validation_errors() {
        let mut b = FabricTopology::builder();
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::UnknownRing(RingId(1))
        );

        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 9), GlobalNodeId::new(1, 0));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::PortOutOfRange(GlobalNodeId::new(0, 9))
        );

        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(0, 2));
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfBridge(RingId(0)));
    }

    #[test]
    fn avoiding_a_dead_bridge_takes_the_long_way_round() {
        // Triangle fabric: 0—1 (bridge 0), 1—2 (bridge 1), 2—0 (bridge 2).
        let mut b = FabricTopology::builder();
        b.ring(4);
        b.ring(4);
        b.ring(4);
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
        b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
        b.allow_cycles_with(CycleBound::unbounded());
        let t = b.build().unwrap();
        // Healthy: one crossing via bridge 0.
        let direct = t.route(RingId(0), RingId(1)).unwrap();
        assert_eq!(direct.bridges, vec![0]);
        // Bridge 0 dead: detour through ring 2 over bridges 2 then 1.
        let detour = t
            .route_avoiding(RingId(0), RingId(1), &[true, false, false])
            .unwrap();
        assert_eq!(detour.rings, vec![RingId(0), RingId(2), RingId(1)]);
        assert_eq!(detour.bridges, vec![2, 1]);
        let segs = t
            .segments_avoiding(
                GlobalNodeId::new(0, 2),
                GlobalNodeId::new(1, 3),
                &[true, false, false],
            )
            .unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].bridge, Some(2));
        assert_eq!(segs[1].bridge, Some(1));
        // Two dead bridges disconnect the pair entirely.
        assert!(t
            .route_avoiding(RingId(0), RingId(1), &[true, true, false])
            .is_none());
        assert_eq!(
            t.segments_avoiding(
                GlobalNodeId::new(0, 2),
                GlobalNodeId::new(1, 3),
                &[true, true, false],
            ),
            Err(TopologyError::NoRoute(RingId(0), RingId(1)))
        );
        // No dead set ⇒ identical to the static table.
        assert_eq!(
            t.route_avoiding(RingId(0), RingId(1), &[]).as_ref(),
            Some(direct)
        );
        // Same-ring paths never cross a bridge and are unaffected.
        let same = t
            .segments_avoiding(
                GlobalNodeId::new(1, 0),
                GlobalNodeId::new(1, 2),
                &[true, true, true],
            )
            .unwrap();
        assert_eq!(same.len(), 1);
        assert_eq!(same[0].bridge, None);
    }

    #[test]
    fn degenerate_segment_detected() {
        let t = FabricTopology::chain(2, 4);
        // source IS the bridge port on ring 0 → zero-length first segment
        let err = t
            .segments(GlobalNodeId::new(0, 3), GlobalNodeId::new(1, 2))
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::DegenerateSegment {
                ring: RingId(0),
                node: NodeId(3)
            }
        );
        // self connection
        assert!(matches!(
            t.segments(GlobalNodeId::new(0, 1), GlobalNodeId::new(0, 1)),
            Err(TopologyError::SelfConnection(_))
        ));
    }
}
