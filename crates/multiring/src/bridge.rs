//! Bridge forwarding: bounded, EDF-ordered per-egress-ring queues and the
//! per-hop deadline decomposition rule.
//!
//! A bridge station removes a message from its ingress ring exactly like a
//! normal receiver, then re-queues it for its egress ring. The queue is
//! **EDF-ordered** — the pending forward with the earliest absolute
//! deadline is injected first, with a fabric-wide arrival sequence number
//! as a deterministic tie-break — and **bounded**: a full buffer applies an
//! explicit [`DropPolicy`] rather than growing without limit, so bridge
//! memory is a first-class admission resource (checked by
//! [`crate::admission`]).
//!
//! Deadline decomposition follows the proportional rule: an end-to-end
//! deadline `D` is split over the route's segments in proportion to each
//! segment ring's slot time (a proxy for the time the message actually
//! needs on that ring), with the integer remainder pushed onto the
//! earliest segments so the budgets always sum to exactly `D`.

use ccr_edf::message::Message;
use ccr_sim::{SimTime, TimeDelta};

/// What to do when a forward arrives at a full bridge buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Evict the queued message with the *latest* absolute deadline if it is
    /// later than the arrival's (EDF-consistent: the most-likely-to-miss
    /// message pays). Falls back to dropping the arrival when the arrival
    /// itself has the latest deadline.
    #[default]
    DropLatestDeadline,
    /// Always drop the arriving message (tail drop).
    DropArriving,
}

/// Static per-bridge-direction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Maximum messages buffered per direction.
    pub capacity: usize,
    /// Maximum messages injected into the egress ring per fabric slot.
    pub forward_per_slot: u32,
    /// Overflow behaviour.
    pub drop: DropPolicy,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            capacity: 64,
            forward_per_slot: 1,
            drop: DropPolicy::DropLatestDeadline,
        }
    }
}

/// A message awaiting injection into its next ring.
#[derive(Debug, Clone)]
pub struct PendingForward {
    /// The message, already rewritten for the egress segment (source,
    /// destination, deadline).
    pub msg: Message,
    /// When the bridge received it from the ingress ring.
    pub enqueued: SimTime,
    /// Fabric-wide arrival sequence number — the deterministic EDF
    /// tie-break for equal deadlines.
    pub seq: u64,
}

impl PendingForward {
    fn key(&self) -> (SimTime, u64) {
        (self.msg.deadline, self.seq)
    }
}

/// One bounded EDF-ordered forwarding queue (one direction of one bridge).
#[derive(Debug, Default)]
pub struct BridgeQueue {
    items: Vec<PendingForward>,
    /// Messages dropped by the overflow policy since construction.
    pub drops: u64,
    /// High-water mark of the buffer occupancy.
    pub peak_occupancy: usize,
}

impl BridgeQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer a forward. Returns the message dropped by the overflow policy,
    /// if the buffer was full (either the offered one or an evicted one).
    pub fn push(&mut self, fwd: PendingForward, cfg: &BridgeConfig) -> Option<PendingForward> {
        let dropped = if self.items.len() >= cfg.capacity {
            match cfg.drop {
                DropPolicy::DropArriving => {
                    self.drops += 1;
                    return Some(fwd);
                }
                DropPolicy::DropLatestDeadline => {
                    // index of the latest-deadline resident (ties: newest seq
                    // loses — it had the least head start).
                    let worst = self
                        .items
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, p)| p.key())
                        .map(|(i, _)| i)
                        .expect("capacity > 0 implies non-empty at overflow");
                    if self.items[worst].key() > fwd.key() {
                        self.drops += 1;
                        Some(self.items.swap_remove(worst))
                    } else {
                        self.drops += 1;
                        return Some(fwd);
                    }
                }
            }
        } else {
            None
        };
        self.items.push(fwd);
        self.peak_occupancy = self.peak_occupancy.max(self.items.len());
        dropped
    }

    /// Remove and return the earliest-deadline forward (ties broken by
    /// arrival sequence), or `None` when empty.
    pub fn pop_earliest(&mut self) -> Option<PendingForward> {
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.key())
            .map(|(i, _)| i)?;
        Some(self.items.swap_remove(best))
    }

    /// Peek the earliest deadline without removing.
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.items.iter().map(|p| p.msg.deadline).min()
    }
}

/// Split an end-to-end relative deadline over `weights.len()` segments,
/// proportionally to `weights`, such that the budgets sum to exactly
/// `e2e`. The integer remainder of the division lands on the earliest
/// segments (one extra picosecond each), which keeps the rule exact and
/// deterministic.
///
/// Returns `None` when there are no segments or every weight is zero.
pub fn decompose_deadline(e2e: TimeDelta, weights: &[u64]) -> Option<Vec<TimeDelta>> {
    if weights.is_empty() {
        return None;
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return None;
    }
    let d = e2e.as_ps() as u128;
    let mut budgets: Vec<u64> = weights
        .iter()
        .map(|&w| ((d * w as u128) / total) as u64)
        .collect();
    let assigned: u128 = budgets.iter().map(|&b| b as u128).sum();
    let mut remainder = (d - assigned) as u64;
    for b in budgets.iter_mut() {
        if remainder == 0 {
            break;
        }
        *b += 1;
        remainder -= 1;
    }
    Some(budgets.into_iter().map(TimeDelta::from_ps).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_edf::connection::ConnectionId;
    use ccr_edf::message::Destination;
    use ccr_phys::NodeId;

    fn fwd(deadline_us: u64, seq: u64) -> PendingForward {
        PendingForward {
            msg: Message::real_time(
                NodeId(0),
                Destination::Unicast(NodeId(1)),
                1,
                SimTime::ZERO,
                SimTime::from_us(deadline_us),
                ConnectionId(seq),
            ),
            enqueued: SimTime::ZERO,
            seq,
        }
    }

    #[test]
    fn pops_in_edf_order_with_seq_tiebreak() {
        let cfg = BridgeConfig::default();
        let mut q = BridgeQueue::new();
        assert!(q.push(fwd(30, 0), &cfg).is_none());
        assert!(q.push(fwd(10, 1), &cfg).is_none());
        assert!(q.push(fwd(10, 2), &cfg).is_none());
        assert!(q.push(fwd(20, 3), &cfg).is_none());
        assert_eq!(q.earliest_deadline(), Some(SimTime::from_us(10)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_earliest().map(|p| p.seq)).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn overflow_evicts_latest_deadline() {
        let cfg = BridgeConfig {
            capacity: 2,
            ..Default::default()
        };
        let mut q = BridgeQueue::new();
        q.push(fwd(10, 0), &cfg);
        q.push(fwd(50, 1), &cfg);
        // earlier than the worst resident → resident 1 (d=50) is evicted
        let dropped = q.push(fwd(20, 2), &cfg).unwrap();
        assert_eq!(dropped.seq, 1);
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 2);
        // later than everything → the arrival itself is dropped
        let dropped = q.push(fwd(99, 3), &cfg).unwrap();
        assert_eq!(dropped.seq, 3);
        assert_eq!(q.drops, 2);
        assert_eq!(q.peak_occupancy, 2);
    }

    #[test]
    fn overflow_tail_drop() {
        let cfg = BridgeConfig {
            capacity: 1,
            drop: DropPolicy::DropArriving,
            ..Default::default()
        };
        let mut q = BridgeQueue::new();
        q.push(fwd(50, 0), &cfg);
        // earlier deadline still dropped under tail drop
        let dropped = q.push(fwd(10, 1), &cfg).unwrap();
        assert_eq!(dropped.seq, 1);
        assert_eq!(q.pop_earliest().unwrap().seq, 0);
    }

    #[test]
    fn decomposition_sums_exactly() {
        let d = TimeDelta::from_ps(1_000_003);
        let parts = decompose_deadline(d, &[3, 3, 1]).unwrap();
        let sum: u64 = parts.iter().map(|p| p.as_ps()).sum();
        assert_eq!(sum, d.as_ps(), "budgets must sum to the e2e deadline");
        // proportionality: the weight-3 segments get ~3× the weight-1 one
        assert!(parts[0] >= parts[2]);
        let ratio = parts[0].as_ps() as f64 / parts[2].as_ps() as f64;
        assert!((ratio - 3.0).abs() < 1e-3, "ratio {ratio}");
    }

    #[test]
    fn decomposition_equal_weights_near_even() {
        let d = TimeDelta::from_us(100);
        let parts = decompose_deadline(d, &[1, 1, 1]).unwrap();
        let sum: u64 = parts.iter().map(|p| p.as_ps()).sum();
        assert_eq!(sum, d.as_ps());
        let max = parts.iter().max().unwrap().as_ps();
        let min = parts.iter().min().unwrap().as_ps();
        assert!(max - min <= 1, "remainder spread is at most 1 ps per part");
    }

    #[test]
    fn decomposition_degenerate_inputs() {
        assert!(decompose_deadline(TimeDelta::from_us(1), &[]).is_none());
        assert!(decompose_deadline(TimeDelta::from_us(1), &[0, 0]).is_none());
        let single = decompose_deadline(TimeDelta::from_us(7), &[5]).unwrap();
        assert_eq!(single, vec![TimeDelta::from_us(7)]);
    }
}
