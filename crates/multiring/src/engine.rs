//! The fabric engine: lockstep per-ring stepping with deterministic
//! inter-ring bridge exchange.
//!
//! One *fabric slot* advances every ring by exactly one MAC slot. The step
//! has three phases:
//!
//! 1. **Ring phase** (parallel) — every ring executes
//!    [`ccr_edf::network::RingNetwork::step_slot`] independently. Rings
//!    share no state within a slot (bridge traffic only moves *between*
//!    slots), so the phase fans out over a persistent [`RingPool`]: worker
//!    threads spawned once per fabric, each owning a fixed round-robin
//!    subset of the rings. (A first implementation re-used the sweeps'
//!    [`ccr_sim::parallel::parallel_map_chunked`], but spawning scoped
//!    threads every slot costs tens of microseconds while a fabric slot's
//!    ring work is itself microsecond-scale — the per-slot spawn made the
//!    parallel path ~100× *slower* than serial; see DESIGN.md.) Each ring
//!    is stepped by exactly one worker and the deliveries are re-ordered
//!    by ring index before the exchange phase, so the phase is
//!    deterministic for any thread count — the differential tests assert
//!    the resulting metrics are bit-identical (`==`) between serial and
//!    parallel runs.
//! 2. **Exchange phase** (serial) — deliveries are scanned in ring-index
//!    then delivery order. A delivery at a bridge port whose connection has
//!    further segments is re-queued on the bridge's egress
//!    [`crate::bridge::BridgeQueue`]; a delivery at its final destination
//!    closes the end-to-end record.
//! 3. **Injection phase** (serial) — each queue, in index order, pops up to
//!    [`crate::bridge::BridgeConfig::forward_per_slot`] earliest-deadline
//!    forwards and submits them into the egress ring.
//!
//! ## Clocks
//!
//! Rings are synchronised by fabric slot *count*, not by simulated time:
//! each ring's clock advances by its own slot-plus-handover-gap sequence,
//! so ring-local clocks drift apart by sub-slot amounts per slot. The
//! engine therefore never compares instants from different rings. All
//! end-to-end quantities are sums of single-ring differences: a segment's
//! latency runs from the message's entry timestamp (release, or bridge
//! hand-off, both on the segment's own clock) to its delivery, and the
//! end-to-end latency is the sum of segment latencies (bridge queueing is
//! included in the next segment's span). The e2e deadline check compares
//! that relative sum against the connection's relative e2e deadline.

use crate::admission::{
    plan_connection, ConnectionPlan, FabricAdmissionError, FabricConnectionId,
    FabricConnectionSpec, SegmentEnv,
};
use crate::bridge::{BridgeConfig, BridgeQueue, PendingForward};
use crate::metrics::FabricMetrics;
use crate::topology::{FabricTopology, RingId};
use ccr_edf::config::{ConfigError, NetworkConfig};
use ccr_edf::connection::ConnectionId;
use ccr_edf::message::{Destination, Message};
use ccr_edf::metrics::{Delivery, Metrics};
use ccr_edf::network::RingNetwork;
use ccr_sim::{SimTime, TimeDelta};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Why a fabric could not be constructed.
#[derive(Debug)]
pub enum FabricBuildError {
    /// `ring_configs.len()` does not match the topology's ring count.
    RingCountMismatch {
        /// Rings in the topology.
        expected: u16,
        /// Configurations supplied.
        got: usize,
    },
    /// A ring's configured node count differs from the topology.
    RingSizeMismatch {
        /// The offending ring.
        ring: RingId,
        /// Node count per the topology.
        expected: u16,
        /// Node count per the configuration.
        got: u16,
    },
    /// A ring's slot time differs from ring 0's. Lockstep stepping keeps
    /// cross-ring skew sub-slot only when nominal slot times agree.
    UnequalSlotTimes {
        /// The offending ring.
        ring: RingId,
    },
    /// A per-ring configuration failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for FabricBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricBuildError::RingCountMismatch { expected, got } => {
                write!(
                    f,
                    "topology has {expected} rings but {got} configs supplied"
                )
            }
            FabricBuildError::RingSizeMismatch {
                ring,
                expected,
                got,
            } => write!(
                f,
                "ring {ring}: topology says {expected} nodes, config says {got}"
            ),
            FabricBuildError::UnequalSlotTimes { ring } => {
                write!(
                    f,
                    "ring {ring}: slot time differs from ring 0 (lockstep requires equal slots)"
                )
            }
            FabricBuildError::Config(e) => write!(f, "ring config invalid: {e}"),
        }
    }
}

impl std::error::Error for FabricBuildError {}

impl From<ConfigError> for FabricBuildError {
    fn from(e: ConfigError) -> Self {
        FabricBuildError::Config(e)
    }
}

/// Complete configuration of a fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The validated topology.
    pub topology: FabricTopology,
    /// One ring configuration per topology ring, in ring-id order.
    pub ring_configs: Vec<NetworkConfig>,
    /// Bridge buffer policy (shared by every bridge direction).
    pub bridge: BridgeConfig,
    /// Worker threads for the ring phase (1 = serial). More threads than
    /// rings are never spawned.
    pub threads: usize,
}

impl FabricConfig {
    /// Uniform fabric: every ring gets the same slot size and a seed
    /// derived from `seed` and its ring id.
    pub fn uniform(
        topology: FabricTopology,
        slot_bytes: u32,
        seed: u64,
    ) -> Result<Self, FabricBuildError> {
        let mut ring_configs = Vec::with_capacity(topology.n_rings() as usize);
        for r in 0..topology.n_rings() {
            let cfg = NetworkConfig::builder(topology.ring_size(RingId(r)))
                .slot_bytes(slot_bytes)
                .seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
                .build_auto_slot()?;
            ring_configs.push(cfg);
        }
        Ok(FabricConfig {
            topology,
            ring_configs,
            bridge: BridgeConfig::default(),
            threads: 1,
        })
    }

    /// Set the ring-phase thread count.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Set the bridge buffer policy.
    pub fn bridge(mut self, b: BridgeConfig) -> Self {
        self.bridge = b;
        self
    }
}

/// An admitted end-to-end connection.
#[derive(Debug)]
struct ActiveConnection {
    plan: ConnectionPlan,
    /// Per-segment ring-level connection ids (opened on segment 0,
    /// reserved on the rest).
    ring_conns: Vec<ConnectionId>,
    /// Bridge-queue index crossed *after* each non-final segment.
    queue_after: Vec<usize>,
}

/// Bookkeeping for a forward sitting in (or just popped from) a queue.
#[derive(Debug, Clone, Copy)]
struct ForwardMeta {
    fid: FabricConnectionId,
    /// Segment the message is about to traverse.
    seg_idx: usize,
    /// End-to-end latency accumulated over the previous segments.
    accumulated: TimeDelta,
}

/// A message in flight on segment `seg_idx` of a connection, awaiting its
/// delivery record. FIFO per (connection, segment): successive messages of
/// one connection carry strictly increasing deadlines, so EDF preserves
/// their order on every ring and queue.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Segment-entry timestamp on the segment ring's clock (the bridge
    /// hand-off instant, so the segment span includes queueing delay).
    entered: SimTime,
    accumulated: TimeDelta,
}

/// A persistent worker pool for the ring phase.
///
/// Scoped fork-join (spawn N threads, step, join) costs tens of
/// microseconds per slot — more than the ring work it distributes. The
/// pool amortises that: workers are spawned once per fabric and park on a
/// channel between slots. Worker `w` of `t` owns rings `{i : i mod t = w}`
/// — a static assignment, so every ring is stepped by exactly one worker
/// and no two workers contend on a ring lock. Results carry their ring
/// index and are re-ordered by the caller, which makes the phase
/// deterministic regardless of scheduling.
struct RingPool {
    /// One command channel per worker; a `()` means "step your rings".
    /// Dropping the senders shuts the workers down.
    cmd_txs: Vec<mpsc::Sender<()>>,
    /// Shared result channel: `(ring index, that slot's deliveries)`.
    result_rx: mpsc::Receiver<(usize, Vec<Delivery>)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RingPool {
    fn spawn(rings: &Arc<Vec<Mutex<RingNetwork>>>, threads: usize) -> Self {
        let (result_tx, result_rx) = mpsc::channel();
        let mut cmd_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (cmd_tx, cmd_rx) = mpsc::channel::<()>();
            let rings = Arc::clone(rings);
            let result_tx = result_tx.clone();
            let mine: Vec<usize> = (w..rings.len()).step_by(threads).collect();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ring-pool-{w}"))
                    .spawn(move || {
                        while cmd_rx.recv().is_ok() {
                            for &i in &mine {
                                let deliveries = {
                                    let mut ring = rings[i].lock().expect("ring lock");
                                    ring.step_slot().deliveries.clone()
                                };
                                if result_tx.send((i, deliveries)).is_err() {
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn ring worker"),
            );
            cmd_txs.push(cmd_tx);
        }
        RingPool {
            cmd_txs,
            result_rx,
            handles,
        }
    }

    /// Step every ring once, returning deliveries in ring-index order.
    fn step_all(&self, n_rings: usize, out: &mut Vec<Vec<Delivery>>) {
        out.clear();
        out.resize(n_rings, Vec::new());
        for tx in &self.cmd_txs {
            tx.send(()).expect("ring worker alive");
        }
        for _ in 0..n_rings {
            let (i, deliveries) = self
                .result_rx
                .recv_timeout(std::time::Duration::from_secs(120))
                .expect("ring worker finished its slot");
            out[i] = deliveries;
        }
    }
}

impl Drop for RingPool {
    fn drop(&mut self) {
        self.cmd_txs.clear(); // hang up: workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A multi-ring CCR-EDF fabric.
pub struct Fabric {
    topo: FabricTopology,
    rings: Arc<Vec<Mutex<RingNetwork>>>,
    envs: Vec<SegmentEnv>,
    bridge_cfg: BridgeConfig,
    /// Two queues per bridge: `2·b` carries a→b traffic, `2·b + 1` b→a.
    queues: Vec<BridgeQueue>,
    /// Egress ring index of each queue.
    queue_egress: Vec<usize>,
    /// Connections currently reserving a buffer slot in each queue.
    queue_resident: Vec<usize>,
    connections: HashMap<FabricConnectionId, ActiveConnection>,
    by_ring_conn: HashMap<(u16, ConnectionId), (FabricConnectionId, usize)>,
    inflight: HashMap<(FabricConnectionId, usize), VecDeque<Inflight>>,
    fwd_meta: HashMap<u64, ForwardMeta>,
    metrics: FabricMetrics,
    next_fid: u64,
    fwd_seq: u64,
    /// Ring-phase workers; `None` steps the rings serially in-place.
    pool: Option<RingPool>,
    // scratch reused across slots
    delivery_buf: Vec<Vec<Delivery>>,
}

impl Fabric {
    /// Build a fabric from a validated configuration.
    pub fn new(cfg: FabricConfig) -> Result<Self, FabricBuildError> {
        let n_rings = cfg.topology.n_rings();
        if cfg.ring_configs.len() != n_rings as usize {
            return Err(FabricBuildError::RingCountMismatch {
                expected: n_rings,
                got: cfg.ring_configs.len(),
            });
        }
        for (r, rc) in cfg.ring_configs.iter().enumerate() {
            rc.validate()?;
            let expected = cfg.topology.ring_size(RingId(r as u16));
            if rc.n_nodes != expected {
                return Err(FabricBuildError::RingSizeMismatch {
                    ring: RingId(r as u16),
                    expected,
                    got: rc.n_nodes,
                });
            }
            if rc.slot_time() != cfg.ring_configs[0].slot_time() {
                return Err(FabricBuildError::UnequalSlotTimes {
                    ring: RingId(r as u16),
                });
            }
        }
        let rings: Arc<Vec<Mutex<RingNetwork>>> = Arc::new(
            cfg.ring_configs
                .iter()
                .map(|rc| Mutex::new(RingNetwork::new_ccr_edf(rc.clone())))
                .collect(),
        );
        let envs: Vec<SegmentEnv> = rings
            .iter()
            .map(|r| {
                let r = r.lock().expect("ring lock");
                let a = r.analytic();
                SegmentEnv {
                    slot: a.slot(),
                    worst_latency: a.worst_latency(),
                }
            })
            .collect();
        let n_queues = cfg.topology.bridges().len() * 2;
        let queue_egress: Vec<usize> = (0..n_queues)
            .map(|q| {
                let br = &cfg.topology.bridges()[q / 2];
                // queue 2b carries a→b (egress ring = b's), 2b+1 carries b→a
                if q % 2 == 0 {
                    br.b.ring.0 as usize
                } else {
                    br.a.ring.0 as usize
                }
            })
            .collect();
        let threads = cfg.threads.clamp(1, rings.len());
        let pool = (threads > 1).then(|| RingPool::spawn(&rings, threads));
        Ok(Fabric {
            topo: cfg.topology,
            rings,
            envs,
            bridge_cfg: cfg.bridge,
            queues: (0..n_queues).map(|_| BridgeQueue::new()).collect(),
            queue_egress,
            queue_resident: vec![0; n_queues],
            connections: HashMap::new(),
            by_ring_conn: HashMap::new(),
            inflight: HashMap::new(),
            fwd_meta: HashMap::new(),
            metrics: FabricMetrics::new(),
            next_fid: 1,
            fwd_seq: 0,
            pool,
            delivery_buf: Vec::new(),
        })
    }

    /// The fabric topology.
    pub fn topology(&self) -> &FabricTopology {
        &self.topo
    }

    /// End-to-end metrics.
    pub fn metrics(&self) -> &FabricMetrics {
        &self.metrics
    }

    /// Snapshot of ring `r`'s metrics (cloned out of the ring lock).
    pub fn ring_metrics(&self, r: RingId) -> Metrics {
        self.rings[r.0 as usize]
            .lock()
            .expect("ring lock")
            .metrics()
            .clone()
    }

    /// Per-ring timing environments (indexed by ring id).
    pub fn segment_envs(&self) -> &[SegmentEnv] {
        &self.envs
    }

    /// Inspect ring `r` under its lock (e.g. to read
    /// [`RingNetwork::last_outcome`] for slot tracing between fabric
    /// steps).
    pub fn with_ring<T>(&self, r: RingId, f: impl FnOnce(&RingNetwork) -> T) -> T {
        f(&self.rings[r.0 as usize].lock().expect("ring lock"))
    }

    /// Number of admitted end-to-end connections.
    pub fn active_connections(&self) -> usize {
        self.connections.len()
    }

    /// Total occupancy of all bridge buffers right now.
    pub fn bridge_occupancy(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// The bridge-queue index crossed when leaving `segment` over bridge
    /// `bridge` (an index into the topology's bridge list).
    fn queue_index(&self, bridge: usize, from_ring: RingId) -> usize {
        let br = &self.topo.bridges()[bridge];
        if br.a.ring == from_ring {
            2 * bridge
        } else {
            2 * bridge + 1
        }
    }

    /// Admit an end-to-end connection: plan the per-segment decomposition,
    /// check bridge-buffer headroom, then admit every segment on its ring —
    /// opening the source segment (periodic releases) and reserving
    /// capacity on the downstream ones. All-or-nothing: a rejection at any
    /// hop rolls the earlier hops back.
    pub fn open_connection(
        &mut self,
        spec: FabricConnectionSpec,
    ) -> Result<FabricConnectionId, FabricAdmissionError> {
        let plan = plan_connection(&self.topo, &spec, &self.envs)?;
        // Bridge-buffer feasibility: each resident connection reserves one
        // buffer slot per crossing (one message per period in flight at a
        // bridge is the steady state under met deadlines).
        let crossings: Vec<usize> = plan
            .segments
            .iter()
            .filter_map(|s| {
                s.segment
                    .bridge
                    .map(|b| self.queue_index(b, s.segment.ring))
            })
            .collect();
        for &q in &crossings {
            if self.queue_resident[q] >= self.bridge_cfg.capacity {
                return Err(FabricAdmissionError::BridgeOverload { bridge: q / 2 });
            }
        }
        // Per-ring admission with rollback.
        let mut ring_conns: Vec<ConnectionId> = Vec::with_capacity(plan.segments.len());
        for (i, seg) in plan.segments.iter().enumerate() {
            let ring_idx = seg.segment.ring.0 as usize;
            let mut ring = self.rings[ring_idx].lock().expect("ring lock");
            let res = if i == 0 {
                ring.open_connection(seg.spec.clone())
            } else {
                ring.reserve_connection(seg.spec.clone())
            };
            drop(ring);
            match res {
                Ok(id) => ring_conns.push(id),
                Err(error) => {
                    for (j, id) in ring_conns.into_iter().enumerate() {
                        let rj = plan.segments[j].segment.ring.0 as usize;
                        self.rings[rj]
                            .lock()
                            .expect("ring lock")
                            .close_connection(id);
                    }
                    return Err(FabricAdmissionError::SegmentRejected { segment: i, error });
                }
            }
        }
        let fid = FabricConnectionId(self.next_fid);
        self.next_fid += 1;
        for (i, (&rc, seg)) in ring_conns.iter().zip(plan.segments.iter()).enumerate() {
            self.by_ring_conn.insert((seg.segment.ring.0, rc), (fid, i));
        }
        for &q in &crossings {
            self.queue_resident[q] += 1;
        }
        self.connections.insert(
            fid,
            ActiveConnection {
                plan,
                ring_conns,
                queue_after: crossings,
            },
        );
        Ok(fid)
    }

    /// Tear down an end-to-end connection, releasing every ring's capacity
    /// and the bridge-buffer reservations. Returns `false` for unknown ids.
    pub fn close_connection(&mut self, fid: FabricConnectionId) -> bool {
        let Some(active) = self.connections.remove(&fid) else {
            return false;
        };
        for (i, (&rc, seg)) in active
            .ring_conns
            .iter()
            .zip(active.plan.segments.iter())
            .enumerate()
        {
            let ring_idx = seg.segment.ring.0 as usize;
            self.rings[ring_idx]
                .lock()
                .expect("ring lock")
                .close_connection(rc);
            self.by_ring_conn.remove(&(seg.segment.ring.0, rc));
            self.inflight.remove(&(fid, i));
        }
        for &q in &active.queue_after {
            self.queue_resident[q] -= 1;
        }
        true
    }

    /// Execute one fabric slot (every ring advances one MAC slot).
    pub fn step_slot(&mut self) {
        // Phase 1 — ring stepping. With a pool, each ring is stepped by its
        // owning worker and deliveries are re-ordered by ring index; the
        // serial path steps rings in index order directly.
        let n = self.rings.len();
        let mut delivered = std::mem::take(&mut self.delivery_buf);
        match &self.pool {
            Some(pool) => pool.step_all(n, &mut delivered),
            None => {
                delivered.clear();
                for i in 0..n {
                    let mut ring = self.rings[i].lock().expect("ring lock");
                    delivered.push(ring.step_slot().deliveries.clone());
                }
            }
        }

        // Phase 2 — serial exchange: ring-index order, then delivery order.
        for (ring_idx, deliveries) in delivered.iter().enumerate() {
            for d in deliveries {
                self.handle_delivery(ring_idx as u16, d);
            }
        }
        self.delivery_buf = delivered;

        // Phase 3 — serial injection, queue-index order.
        for qi in 0..self.queues.len() {
            for _ in 0..self.bridge_cfg.forward_per_slot {
                let Some(pf) = self.queues[qi].pop_earliest() else {
                    break;
                };
                let meta = self
                    .fwd_meta
                    .remove(&pf.seq)
                    .expect("every queued forward has metadata");
                let ring_idx = self.queue_egress[qi];
                let mut ring = self.rings[ring_idx].lock().expect("ring lock");
                let now = ring.now();
                let wait = now.saturating_since(pf.enqueued);
                ring.submit_message(now, pf.msg);
                drop(ring);
                self.metrics.record_forward(wait);
                self.inflight
                    .entry((meta.fid, meta.seg_idx))
                    .or_default()
                    .push_back(Inflight {
                        entered: pf.enqueued,
                        accumulated: meta.accumulated,
                    });
            }
        }

        let peak = self
            .queues
            .iter()
            .map(|q| q.peak_occupancy as u64)
            .max()
            .unwrap_or(0);
        self.metrics.peak_bridge_occupancy = self.metrics.peak_bridge_occupancy.max(peak);
        self.metrics.slots.incr();
    }

    /// Run `k` fabric slots.
    pub fn run_slots(&mut self, k: u64) {
        for _ in 0..k {
            self.step_slot();
        }
    }

    fn handle_delivery(&mut self, ring: u16, d: &Delivery) {
        let Some(conn) = d.msg.connection else {
            return;
        };
        let Some(&(fid, seg_idx)) = self.by_ring_conn.get(&(ring, conn)) else {
            return;
        };
        // Pull out everything needed from the plan before mutating metrics.
        let (n_segs, e2e_deadline, next) = {
            let active = &self.connections[&fid];
            let n = active.plan.segments.len();
            let next = if seg_idx + 1 < n {
                let ns = &active.plan.segments[seg_idx + 1];
                let cross = active.plan.segments[seg_idx]
                    .segment
                    .bridge
                    .expect("non-final segment ends at a bridge");
                Some((
                    self.queue_index(cross, active.plan.segments[seg_idx].segment.ring),
                    ns.segment.ring.0 as usize,
                    ns.segment.from,
                    ns.segment.to,
                    ns.spec.effective_deadline(),
                    active.ring_conns[seg_idx + 1],
                ))
            } else {
                None
            };
            (n, active.plan.spec.e2e_deadline, next)
        };
        let (entered, accumulated) = if seg_idx == 0 {
            (d.msg.released, TimeDelta::ZERO)
        } else {
            // FIFO matching — see `Inflight`.
            let Some(rec) = self
                .inflight
                .get_mut(&(fid, seg_idx))
                .and_then(|q| q.pop_front())
            else {
                return; // stray delivery of a since-closed connection
            };
            (rec.entered, rec.accumulated)
        };
        let seg_latency = d.completed.saturating_since(entered);
        let total = accumulated + seg_latency;
        self.metrics.record_segment(seg_idx, seg_latency);
        match next {
            None => {
                debug_assert_eq!(seg_idx + 1, n_segs);
                self.metrics.record_e2e(total, total <= e2e_deadline);
            }
            Some((qi, egress_ring, from, to, rel_deadline, egress_conn)) => {
                // Hand off to the bridge: timestamp and sub-deadline on the
                // egress ring's clock.
                let now = self.rings[egress_ring].lock().expect("ring lock").now();
                let size = d.msg.size_slots;
                let msg = Message::real_time(
                    from,
                    Destination::Unicast(to),
                    size,
                    now,
                    now + rel_deadline,
                    egress_conn,
                );
                let seq = self.fwd_seq;
                self.fwd_seq += 1;
                self.fwd_meta.insert(
                    seq,
                    ForwardMeta {
                        fid,
                        seg_idx: seg_idx + 1,
                        accumulated: total,
                    },
                );
                let dropped = self.queues[qi].push(
                    PendingForward {
                        msg,
                        enqueued: now,
                        seq,
                    },
                    &self.bridge_cfg,
                );
                if let Some(dp) = dropped {
                    self.fwd_meta.remove(&dp.seq);
                    self.metrics.bridge_drops.incr();
                }
            }
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("rings", &self.rings.len())
            .field("bridges", &self.topo.bridges().len())
            .field("connections", &self.connections.len())
            .field("slots", &self.metrics.slots.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GlobalNodeId;

    #[test]
    fn uniform_config_builds() {
        let topo = FabricTopology::chain(3, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        assert_eq!(cfg.ring_configs.len(), 3);
        let fabric = Fabric::new(cfg).unwrap();
        assert_eq!(fabric.topology().n_rings(), 3);
        assert_eq!(fabric.queues.len(), 4); // 2 bridges × 2 directions
    }

    #[test]
    fn mismatched_ring_configs_rejected() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.ring_configs.pop();
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::RingCountMismatch {
                expected: 2,
                got: 1
            })
        ));

        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.ring_configs[1] = NetworkConfig::builder(9)
            .slot_bytes(2048)
            .build_auto_slot()
            .unwrap();
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::RingSizeMismatch { .. })
        ));
    }

    #[test]
    fn bridge_buffer_reservation_bounds_admission() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.bridge.capacity = 2;
        let mut fabric = Fabric::new(cfg).unwrap();
        let spec = |src: u16, dst: u16| {
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, src), GlobalNodeId::new(1, dst))
                .period(TimeDelta::from_ms(2))
        };
        fabric.open_connection(spec(0, 2)).unwrap();
        fabric.open_connection(spec(1, 3)).unwrap();
        let err = fabric.open_connection(spec(2, 4)).unwrap_err();
        assert_eq!(err, FabricAdmissionError::BridgeOverload { bridge: 0 });
        // closing releases the reservation
        let ids: Vec<FabricConnectionId> = fabric.connections.keys().copied().collect();
        fabric.close_connection(ids[0]);
        assert!(fabric.open_connection(spec(2, 4)).is_ok());
    }

    #[test]
    fn rollback_on_segment_rejection() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        // Saturate ring 1 locally (utilisation-wise) so the second segment
        // of a cross-ring connection is refused: open 0.05-utilisation
        // connections until one bounces, leaving headroom < 0.05.
        let slot = fabric.segment_envs()[1].slot;
        let period = slot.times(20);
        {
            let mut r1 = fabric.rings[1].lock().unwrap();
            while r1
                .open_connection(
                    ccr_edf::connection::ConnectionSpec::unicast(
                        ccr_phys::NodeId(2),
                        ccr_phys::NodeId(4),
                    )
                    .period(period)
                    .size_slots(1),
                )
                .is_ok()
            {}
        }
        let before: usize = {
            let r0 = fabric.rings[0].lock().unwrap();
            r0.admission().admitted_count()
        };
        let err = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 2))
                    .period(period),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                FabricAdmissionError::SegmentRejected { segment: 1, .. }
            ),
            "unexpected: {err:?}"
        );
        let after: usize = {
            let r0 = fabric.rings[0].lock().unwrap();
            r0.admission().admitted_count()
        };
        assert_eq!(before, after, "ring 0's admission rolled back");
        assert_eq!(fabric.active_connections(), 0);
    }
}
