//! The fabric engine: lockstep per-ring stepping with deterministic
//! inter-ring bridge exchange.
//!
//! One *fabric slot* advances every ring by exactly one MAC slot. The step
//! has three phases:
//!
//! 1. **Ring phase** (parallel) — every ring executes
//!    [`ccr_edf::network::RingNetwork::step_slot`] independently. Rings
//!    share no state within a slot (bridge traffic only moves *between*
//!    slots), so the phase fans out over a persistent [`RingPool`]: worker
//!    threads spawned once per fabric, each owning a fixed round-robin
//!    subset of the rings. (A first implementation re-used the sweeps'
//!    [`ccr_sim::parallel::parallel_map_chunked`], but spawning scoped
//!    threads every slot costs tens of microseconds while a fabric slot's
//!    ring work is itself microsecond-scale — the per-slot spawn made the
//!    parallel path ~100× *slower* than serial; see DESIGN.md.) Each ring
//!    is stepped by exactly one worker and the deliveries are re-ordered
//!    by ring index before the exchange phase, so the phase is
//!    deterministic for any thread count — the differential tests assert
//!    the resulting metrics are bit-identical (`==`) between serial and
//!    parallel runs.
//! 2. **Exchange phase** (serial) — deliveries are scanned in ring-index
//!    then delivery order. A delivery at a bridge port whose connection has
//!    further segments is re-queued on the bridge's egress
//!    [`crate::bridge::BridgeQueue`]; a delivery at its final destination
//!    closes the end-to-end record.
//! 3. **Injection phase** (serial) — each queue, in index order, pops up to
//!    [`crate::bridge::BridgeConfig::forward_per_slot`] earliest-deadline
//!    forwards and submits them into the egress ring.
//!
//! ## Clocks
//!
//! Rings are synchronised by fabric slot *count*, not by simulated time:
//! each ring's clock advances by its own slot-plus-handover-gap sequence,
//! so ring-local clocks drift apart by sub-slot amounts per slot. The
//! engine therefore never compares instants from different rings. All
//! end-to-end quantities are sums of single-ring differences: a segment's
//! latency runs from the message's entry timestamp (release, or bridge
//! hand-off, both on the segment's own clock) to its delivery, and the
//! end-to-end latency is the sum of segment latencies (bridge queueing is
//! included in the next segment's span). The e2e deadline check compares
//! that relative sum against the connection's relative e2e deadline.

use crate::admission::{
    plan_connection, plan_connection_avoiding, ConnectionPlan, FabricAdmissionError,
    FabricConnectionId, FabricConnectionSpec, SegmentEnv,
};
use crate::bridge::{BridgeConfig, BridgeQueue, PendingForward};
use crate::calculus::CalculusAdmission;
use crate::fault::{BridgeEventKind, FabricFaultScript};
use crate::metrics::FabricMetrics;
use crate::topology::{CycleBound, FabricTopology, GlobalNodeId, RingId};
use ccr_edf::config::{ConfigError, NetworkConfig};
use ccr_edf::connection::ConnectionId;
use ccr_edf::message::{Destination, Message};
use ccr_edf::metrics::{Delivery, Metrics};
use ccr_edf::network::RingNetwork;
use ccr_edf::NodeId;
use ccr_sim::{SimTime, TimeDelta};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Why a fabric could not be constructed.
#[derive(Debug)]
pub enum FabricBuildError {
    /// `ring_configs.len()` does not match the topology's ring count.
    RingCountMismatch {
        /// Rings in the topology.
        expected: u16,
        /// Configurations supplied.
        got: usize,
    },
    /// A ring's configured node count differs from the topology.
    RingSizeMismatch {
        /// The offending ring.
        ring: RingId,
        /// Node count per the topology.
        expected: u16,
        /// Node count per the configuration.
        got: u16,
    },
    /// A ring's slot time differs from ring 0's. Lockstep stepping keeps
    /// cross-ring skew sub-slot only when nominal slot times agree.
    UnequalSlotTimes {
        /// The offending ring.
        ring: RingId,
    },
    /// A per-ring configuration failed validation.
    Config(ConfigError),
    /// The fault script targets a bridge index outside the topology.
    UnknownBridge {
        /// The offending bridge index.
        bridge: usize,
    },
    /// The network-calculus certifier was requested but a ring's timing
    /// environment is degenerate (zero slot-plus-handover time).
    DegenerateTiming,
}

impl std::fmt::Display for FabricBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricBuildError::RingCountMismatch { expected, got } => {
                write!(
                    f,
                    "topology has {expected} rings but {got} configs supplied"
                )
            }
            FabricBuildError::RingSizeMismatch {
                ring,
                expected,
                got,
            } => write!(
                f,
                "ring {ring}: topology says {expected} nodes, config says {got}"
            ),
            FabricBuildError::UnequalSlotTimes { ring } => {
                write!(
                    f,
                    "ring {ring}: slot time differs from ring 0 (lockstep requires equal slots)"
                )
            }
            FabricBuildError::Config(e) => write!(f, "ring config invalid: {e}"),
            FabricBuildError::UnknownBridge { bridge } => {
                write!(f, "fault script targets unknown bridge #{bridge}")
            }
            FabricBuildError::DegenerateTiming => {
                write!(
                    f,
                    "calculus certifier requested but a ring has a degenerate slot time"
                )
            }
        }
    }
}

impl std::error::Error for FabricBuildError {}

impl From<ConfigError> for FabricBuildError {
    fn from(e: ConfigError) -> Self {
        FabricBuildError::Config(e)
    }
}

/// Complete configuration of a fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The validated topology.
    pub topology: FabricTopology,
    /// One ring configuration per topology ring, in ring-id order.
    pub ring_configs: Vec<NetworkConfig>,
    /// Bridge buffer policy (shared by every bridge direction).
    pub bridge: BridgeConfig,
    /// Worker threads for the ring phase (1 = serial). More threads than
    /// rings are never spawned.
    pub threads: usize,
    /// Scripted fabric-level fault injection. Ring-local events are
    /// distributed into the per-ring fault scripts at build time (lockstep
    /// keeps ring slot counters equal to the fabric's); bridge kills and
    /// repairs are applied by the engine itself. Empty by default.
    pub fault_script: FabricFaultScript,
    /// Force the network-calculus certifier on even for acyclic fabrics
    /// (it is always on when the topology was built with
    /// [`CycleBound::Calculus`]). Every admission then carries a certified
    /// end-to-end delay bound, readable via [`Fabric::e2e_bound`].
    pub calculus: bool,
    /// Force every calculus certification to run as a full re-solve
    /// instead of a warm-started dirty-set solve. Slow — this is the
    /// bit-exact reference mode the incremental differential suite
    /// compares against, not a production knob.
    pub calculus_force_full: bool,
}

impl FabricConfig {
    /// Uniform fabric: every ring gets the same slot size and a seed
    /// derived from `seed` and its ring id.
    pub fn uniform(
        topology: FabricTopology,
        slot_bytes: u32,
        seed: u64,
    ) -> Result<Self, FabricBuildError> {
        let mut ring_configs = Vec::with_capacity(topology.n_rings() as usize);
        for r in 0..topology.n_rings() {
            let cfg = NetworkConfig::builder(topology.ring_size(RingId(r)))
                .slot_bytes(slot_bytes)
                .seed(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
                .build_auto_slot()?;
            ring_configs.push(cfg);
        }
        Ok(FabricConfig {
            topology,
            ring_configs,
            bridge: BridgeConfig::default(),
            threads: 1,
            fault_script: FabricFaultScript::default(),
            calculus: false,
            calculus_force_full: false,
        })
    }

    /// Set the ring-phase thread count.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Set the bridge buffer policy.
    pub fn bridge(mut self, b: BridgeConfig) -> Self {
        self.bridge = b;
        self
    }

    /// Install a fabric fault script.
    pub fn fault_script(mut self, s: FabricFaultScript) -> Self {
        self.fault_script = s;
        self
    }

    /// Turn the network-calculus certifier on for every admission (it is
    /// on regardless when the topology allows cycles with
    /// [`CycleBound::Calculus`]).
    pub fn calculus(mut self, on: bool) -> Self {
        self.calculus = on;
        self
    }

    /// Run every calculus certification as a full re-solve (differential
    /// reference mode; see [`FabricConfig::calculus_force_full`]).
    pub fn calculus_force_full(mut self, on: bool) -> Self {
        self.calculus_force_full = on;
        self
    }
}

/// How a connection's traffic enters the fabric and which guarantees it
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnClass {
    /// Ring-generated periodic traffic with full guarantees
    /// ([`Fabric::open_connection`]).
    Periodic,
    /// Externally injected guaranteed traffic
    /// ([`Fabric::open_external_connections`]): every segment reserved,
    /// messages enter via [`Fabric::inject`], same admission gate as
    /// periodic traffic.
    External,
    /// Externally injected best-effort traffic
    /// ([`Fabric::open_best_effort`]): placed on a route but never
    /// admitted or certified — it rides ring slots the guaranteed set
    /// leaves idle and a separate leftover-budget bridge queue, so it can
    /// never displace a guaranteed message anywhere in the fabric.
    BestEffort,
}

impl ConnClass {
    /// Classes whose traffic enters via [`Fabric::inject`] and leaves via
    /// [`Fabric::drain_egress`].
    fn is_injected(self) -> bool {
        matches!(self, ConnClass::External | ConnClass::BestEffort)
    }
}

/// An admitted end-to-end connection.
#[derive(Debug)]
struct ActiveConnection {
    plan: ConnectionPlan,
    /// Per-segment ring-level connection ids (opened on segment 0,
    /// reserved on the rest).
    ring_conns: Vec<ConnectionId>,
    /// Bridge-queue index crossed *after* each non-final segment.
    queue_after: Vec<usize>,
    /// How traffic enters and which guarantees it carries.
    class: ConnClass,
    /// Final deliveries so far — the egress sequence number source.
    delivered: u64,
}

/// A final delivery of an externally injected (gateway) connection,
/// surfaced through [`Fabric::drain_egress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgressDelivery {
    /// The owning end-to-end connection.
    pub fid: FabricConnectionId,
    /// Per-connection delivery sequence number, starting at 0. Successive
    /// messages of one connection keep FIFO order end to end (see
    /// `Inflight`), so this matches the injection order exactly.
    pub seq: u64,
    /// End-to-end latency accumulated across every segment and queue.
    pub latency: TimeDelta,
    /// Did the delivery meet the connection's e2e deadline?
    pub met_deadline: bool,
    /// Remaining deadline budget (zero when missed). All deliveries
    /// drained together completed in the same fabric slot, so ascending
    /// slack is exactly earliest-absolute-deadline-first.
    pub slack: TimeDelta,
}

/// Why the fault machinery revoked a connection instead of rerouting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeReason {
    /// The source or destination node is dead — no admission can help.
    EndpointDead,
    /// No bridge path avoiding the dead hardware exists.
    NoRoute,
    /// A route exists but the admission gate (EDF utilisation, bridge
    /// headroom, or the calculus fixed point) refused it.
    AdmissionRefused,
}

impl std::fmt::Display for RevokeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RevokeReason::EndpointDead => write!(f, "endpoint dead"),
            RevokeReason::NoRoute => write!(f, "no surviving route"),
            RevokeReason::AdmissionRefused => write!(f, "re-admission refused"),
        }
    }
}

/// A fault- or repair-driven change to an admitted connection's identity,
/// surfaced through [`Fabric::drain_connection_events`] so external
/// holders of a [`FabricConnectionId`] (the gateway) can follow it.
///
/// Rerouting and reclamation *re-admit* the connection's spec, which
/// assigns a fresh id — the old one stops resolving. Every such identity
/// change is recorded here in the order it happened; the buffer is
/// bounded by the number of fault events, not by slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionEvent {
    /// Closed and re-admitted over an alternate (or restored) route. The
    /// connection survives under `new`; messages in flight at the switch
    /// were dropped.
    Rerouted {
        /// The id that stopped resolving.
        old: FabricConnectionId,
        /// The id now carrying the spec.
        new: FabricConnectionId,
    },
    /// Revoked: the spec is queued for reclaim but carries no traffic.
    Revoked {
        /// The id that stopped resolving.
        old: FabricConnectionId,
        /// Why no reroute was possible.
        reason: RevokeReason,
    },
    /// A previously revoked spec was re-admitted (bridge repair or freed
    /// capacity). `old` is the id reported by the matching
    /// [`ConnectionEvent::Revoked`].
    Reclaimed {
        /// The id the spec was revoked under.
        old: FabricConnectionId,
        /// The id now carrying the spec.
        new: FabricConnectionId,
    },
}

/// Why [`Fabric::inject`] refused an externally produced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// No such connection: never opened, closed, or revoked by a fault.
    UnknownConnection,
    /// The connection was opened with periodic releases
    /// ([`Fabric::open_connection`]) — its traffic is generated by the
    /// ring, not injected.
    NotExternal,
    /// The source node is currently dead; the message has no way in.
    SourceDown,
}

impl std::fmt::Display for InjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectError::UnknownConnection => write!(f, "unknown or revoked connection"),
            InjectError::NotExternal => write!(f, "connection is not externally injected"),
            InjectError::SourceDown => write!(f, "source node is down"),
        }
    }
}

/// Bookkeeping for a forward sitting in (or just popped from) a queue.
#[derive(Debug, Clone, Copy)]
struct ForwardMeta {
    fid: FabricConnectionId,
    /// Segment the message is about to traverse.
    seg_idx: usize,
    /// End-to-end latency accumulated over the previous segments.
    accumulated: TimeDelta,
}

/// A message in flight on segment `seg_idx` of a connection, awaiting its
/// delivery record. FIFO per (connection, segment): successive messages of
/// one connection carry strictly increasing deadlines, so EDF preserves
/// their order on every ring and queue.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Segment-entry timestamp on the segment ring's clock (the bridge
    /// hand-off instant, so the segment span includes queueing delay).
    entered: SimTime,
    accumulated: TimeDelta,
}

/// A persistent worker pool for the ring phase.
///
/// Scoped fork-join (spawn N threads, step, join) costs tens of
/// microseconds per slot — more than the ring work it distributes. The
/// pool amortises that: workers are spawned once per fabric and park on a
/// channel between slots. Worker `w` of `t` owns rings `{i : i mod t = w}`
/// — a static assignment, so every ring is stepped by exactly one worker
/// and no two workers contend on a ring lock. Results carry their ring
/// index and are re-ordered by the caller, which makes the phase
/// deterministic regardless of scheduling.
struct RingPool {
    /// One command channel per worker; a `()` means "step your rings".
    /// Dropping the senders shuts the workers down.
    cmd_txs: Vec<mpsc::Sender<()>>,
    /// Shared result channel: `(ring index, that slot's deliveries)`.
    result_rx: mpsc::Receiver<(usize, Vec<Delivery>)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RingPool {
    fn spawn(rings: &Arc<Vec<Mutex<RingNetwork>>>, threads: usize) -> Self {
        let (result_tx, result_rx) = mpsc::channel();
        let mut cmd_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (cmd_tx, cmd_rx) = mpsc::channel::<()>();
            let rings = Arc::clone(rings);
            let result_tx = result_tx.clone();
            let mine: Vec<usize> = (w..rings.len()).step_by(threads).collect();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ring-pool-{w}"))
                    .spawn(move || {
                        while cmd_rx.recv().is_ok() {
                            for &i in &mine {
                                let deliveries = {
                                    let mut ring = rings[i].lock().expect("ring lock");
                                    ring.step_slot().deliveries.clone()
                                };
                                if result_tx.send((i, deliveries)).is_err() {
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn ring worker"),
            );
            cmd_txs.push(cmd_tx);
        }
        RingPool {
            cmd_txs,
            result_rx,
            handles,
        }
    }

    /// Step every ring once, returning deliveries in ring-index order.
    fn step_all(&self, n_rings: usize, out: &mut Vec<Vec<Delivery>>) {
        out.clear();
        // ccr-verify: allow(alloc-in-hot-path) -- empty-Vec placeholders; the workers swap in their reused per-ring buffers
        out.resize(n_rings, Vec::new());
        for tx in &self.cmd_txs {
            tx.send(()).expect("ring worker alive");
        }
        for _ in 0..n_rings {
            let (i, deliveries) = self
                .result_rx
                // ccr-verify: allow(blocking-in-hot-path) -- pool barrier: the fabric slot is complete only when every ring worker reports; the 120 s watchdog bounds a crashed worker
                .recv_timeout(std::time::Duration::from_secs(120))
                .expect("ring worker finished its slot");
            out[i] = deliveries;
        }
    }
}

impl Drop for RingPool {
    fn drop(&mut self) {
        self.cmd_txs.clear(); // hang up: workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A multi-ring CCR-EDF fabric.
pub struct Fabric {
    topo: FabricTopology,
    rings: Arc<Vec<Mutex<RingNetwork>>>,
    envs: Vec<SegmentEnv>,
    bridge_cfg: BridgeConfig,
    /// Two queues per bridge: `2·b` carries a→b traffic, `2·b + 1` b→a.
    queues: Vec<BridgeQueue>,
    /// Best-effort twins of `queues`, same layout: served strictly from
    /// the forward budget the guaranteed queue leaves unused each slot,
    /// so best-effort forwards can never evict or delay a guaranteed one.
    be_queues: Vec<BridgeQueue>,
    /// Egress ring index of each queue.
    queue_egress: Vec<usize>,
    /// Connections currently reserving a buffer slot in each queue.
    queue_resident: Vec<usize>,
    connections: HashMap<FabricConnectionId, ActiveConnection>,
    by_ring_conn: HashMap<(u16, ConnectionId), (FabricConnectionId, usize)>,
    inflight: HashMap<(FabricConnectionId, usize), VecDeque<Inflight>>,
    fwd_meta: HashMap<u64, ForwardMeta>,
    metrics: FabricMetrics,
    next_fid: u64,
    fwd_seq: u64,
    /// Ring-phase workers; `None` steps the rings serially in-place.
    pool: Option<RingPool>,
    // scratch reused across slots
    delivery_buf: Vec<Vec<Delivery>>,
    /// Per-ring recovering flags filled by the health scan each slot.
    health_scratch: Vec<bool>,
    /// End-to-end certifier: present when the topology allows cycles with
    /// [`CycleBound::Calculus`] or [`FabricConfig::calculus`] opted in.
    calculus: Option<CalculusAdmission>,
    /// Largest observed e2e latency per connection (final deliveries).
    observed_e2e: HashMap<FabricConnectionId, TimeDelta>,
    /// Final deliveries of external connections since the last
    /// [`Fabric::drain_egress`], in deterministic delivery order.
    egress_buf: Vec<EgressDelivery>,
    // --- fault state ---------------------------------------------------
    /// Per-bridge death flags (indexed by bridge index).
    dead_bridges: Vec<bool>,
    /// Scripted `(slot, bridge, kill/repair)` events, sorted by slot.
    bridge_events: Vec<(u64, usize, BridgeEventKind)>,
    event_cursor: usize,
    /// Specs revoked by faults (with their connection class and the id
    /// they were revoked under), in revocation order — the reclaim queue
    /// a bridge repair retries deterministically.
    revoked_specs: Vec<(FabricConnectionSpec, ConnClass, FabricConnectionId)>,
    /// Connection identity changes since the last
    /// [`Fabric::drain_connection_events`], in event order.
    conn_events: Vec<ConnectionEvent>,
    /// True while at least one surviving connection sits on a detour the
    /// last reclaim pass could not move back (its preferred route was
    /// refused for capacity). Together with `revoked_specs`, this is what
    /// arms the freed-capacity reclaim a `close_connection` triggers.
    detour_pending: bool,
    /// True when any fault source exists (stochastic knobs, scripts, or a
    /// manual `fail_node`/`kill_bridge` call) — gates the per-slot health
    /// scan so fault-free fabrics pay nothing for it.
    track_faults: bool,
    /// Fabric-side mirror of each ring's per-node liveness, used to detect
    /// deaths that happen *inside* a ring (scripted `FailNode` events).
    ring_alive: Vec<Vec<bool>>,
}

impl Fabric {
    /// Build a fabric from a validated configuration.
    pub fn new(cfg: FabricConfig) -> Result<Self, FabricBuildError> {
        let n_rings = cfg.topology.n_rings();
        if cfg.ring_configs.len() != n_rings as usize {
            return Err(FabricBuildError::RingCountMismatch {
                expected: n_rings,
                got: cfg.ring_configs.len(),
            });
        }
        // Distribute the fabric script's ring-local events into the
        // per-ring scripts (lockstep ⇒ fabric slot index = ring slot
        // index), then validate the *merged* configs — a merged script
        // with clock faults still needs a usable recovery timeout.
        let mut ring_cfgs: Vec<NetworkConfig> = cfg.ring_configs.clone();
        for (r, rc) in ring_cfgs.iter_mut().enumerate() {
            let extra = cfg.fault_script.ring_script(RingId(r as u16));
            for e in extra.events() {
                rc.fault_script.push(e.slot, e.kind);
            }
        }
        for (r, rc) in ring_cfgs.iter().enumerate() {
            rc.validate()?;
            let expected = cfg.topology.ring_size(RingId(r as u16));
            if rc.n_nodes != expected {
                return Err(FabricBuildError::RingSizeMismatch {
                    ring: RingId(r as u16),
                    expected,
                    got: rc.n_nodes,
                });
            }
            if rc.slot_time() != ring_cfgs[0].slot_time() {
                return Err(FabricBuildError::UnequalSlotTimes {
                    ring: RingId(r as u16),
                });
            }
        }
        let bridge_events = cfg.fault_script.bridge_events();
        if let Some(&(_, b, _)) = bridge_events
            .iter()
            .find(|&&(_, b, _)| b >= cfg.topology.bridges().len())
        {
            return Err(FabricBuildError::UnknownBridge { bridge: b });
        }
        let track_faults = !bridge_events.is_empty()
            || ring_cfgs.iter().any(|rc| {
                rc.faults.token_loss_prob > 0.0
                    || rc.faults.control_error_prob > 0.0
                    || !rc.fault_script.is_empty()
            });
        let ring_alive: Vec<Vec<bool>> = ring_cfgs
            .iter()
            .map(|rc| vec![true; rc.n_nodes as usize])
            .collect();
        let rings: Arc<Vec<Mutex<RingNetwork>>> = Arc::new(
            ring_cfgs
                .iter()
                .map(|rc| Mutex::new(RingNetwork::new_ccr_edf(rc.clone())))
                .collect(),
        );
        let envs: Vec<SegmentEnv> = rings
            .iter()
            .map(|r| {
                let r = r.lock().expect("ring lock");
                let a = r.analytic();
                SegmentEnv {
                    slot: a.slot(),
                    worst_latency: a.worst_latency(),
                    max_handover: a.max_handover(),
                }
            })
            .collect();
        let n_queues = cfg.topology.n_queues();
        let queue_egress: Vec<usize> = cfg.topology.queue_egress();
        let threads = cfg.threads.clamp(1, rings.len());
        let pool = (threads > 1).then(|| RingPool::spawn(&rings, threads));
        let n_bridges = cfg.topology.bridges().len();
        let want_calculus =
            cfg.calculus || cfg.topology.cycle_bound() == Some(CycleBound::Calculus);
        let calculus = if want_calculus {
            // Never silently drop the certifier a cyclic topology relies
            // on: degenerate timing (impossible for validated configs) is
            // a build failure, not a disabled gate.
            let mut calc = CalculusAdmission::new(&envs, &cfg.bridge, &queue_egress)
                .ok_or(FabricBuildError::DegenerateTiming)?;
            calc.set_force_full(cfg.calculus_force_full);
            Some(calc)
        } else {
            None
        };
        Ok(Fabric {
            topo: cfg.topology,
            rings,
            envs,
            bridge_cfg: cfg.bridge,
            queues: (0..n_queues).map(|_| BridgeQueue::new()).collect(),
            be_queues: (0..n_queues).map(|_| BridgeQueue::new()).collect(),
            queue_egress,
            queue_resident: vec![0; n_queues],
            connections: HashMap::new(),
            by_ring_conn: HashMap::new(),
            inflight: HashMap::new(),
            fwd_meta: HashMap::new(),
            metrics: FabricMetrics::new(),
            next_fid: 1,
            fwd_seq: 0,
            pool,
            delivery_buf: Vec::new(),
            health_scratch: Vec::new(),
            calculus,
            observed_e2e: HashMap::new(),
            dead_bridges: vec![false; n_bridges],
            bridge_events,
            event_cursor: 0,
            revoked_specs: Vec::new(),
            conn_events: Vec::new(),
            egress_buf: Vec::new(),
            detour_pending: false,
            track_faults,
            ring_alive,
        })
    }

    /// The fabric topology.
    pub fn topology(&self) -> &FabricTopology {
        &self.topo
    }

    /// End-to-end metrics.
    pub fn metrics(&self) -> &FabricMetrics {
        &self.metrics
    }

    /// Emit the in-progress per-ring availability window as a final series
    /// point (end-of-run bookkeeping for fault-tracking runs; a no-op when
    /// nothing is accumulated). See [`FabricMetrics::ring_availability`].
    pub fn flush_health_series(&mut self) {
        let last = self.metrics.slots.get().saturating_sub(1);
        self.metrics.flush_ring_health(last);
    }

    /// Snapshot of ring `r`'s metrics (cloned out of the ring lock).
    pub fn ring_metrics(&self, r: RingId) -> Metrics {
        self.rings[r.0 as usize]
            .lock()
            .expect("ring lock")
            .metrics()
            .clone()
    }

    /// Per-ring timing environments (indexed by ring id).
    pub fn segment_envs(&self) -> &[SegmentEnv] {
        &self.envs
    }

    /// The fabric clock: start of the current slot on ring 0. Every ring
    /// runs in lockstep, so this is the canonical fabric time external
    /// producers (gateways) should stamp injections with.
    pub fn now(&self) -> SimTime {
        self.rings[0].lock().expect("ring lock").now()
    }

    /// Inspect ring `r` under its lock (e.g. to read
    /// [`RingNetwork::last_outcome`] for slot tracing between fabric
    /// steps).
    pub fn with_ring<T>(&self, r: RingId, f: impl FnOnce(&RingNetwork) -> T) -> T {
        f(&self.rings[r.0 as usize].lock().expect("ring lock"))
    }

    /// Number of admitted end-to-end connections.
    pub fn active_connections(&self) -> usize {
        self.connections.len()
    }

    /// Total occupancy of all bridge buffers right now.
    pub fn bridge_occupancy(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// The bridge-queue index crossed when leaving `segment` over bridge
    /// `bridge` (an index into the topology's bridge list).
    fn queue_index(&self, bridge: usize, from_ring: RingId) -> usize {
        self.topo.queue_index(bridge, from_ring)
    }

    /// Admit an end-to-end connection: plan the per-segment decomposition,
    /// check bridge-buffer headroom, then admit every segment on its ring —
    /// opening the source segment (periodic releases) and reserving
    /// capacity on the downstream ones. All-or-nothing: a rejection at any
    /// hop rolls the earlier hops back.
    pub fn open_connection(
        &mut self,
        spec: FabricConnectionSpec,
    ) -> Result<FabricConnectionId, FabricAdmissionError> {
        // With every bridge alive the avoid-set planner reproduces the
        // static routing table exactly; once bridges have died, all new
        // admissions route around them.
        let plan = if self.dead_bridges.iter().any(|&d| d) {
            plan_connection_avoiding(&self.topo, &spec, &self.envs, &self.dead_bridges)?
        } else {
            plan_connection(&self.topo, &spec, &self.envs)?
        };
        self.admit_plan(plan, ConnClass::Periodic)
    }

    /// Admit an end-to-end connection whose messages are produced
    /// *outside* the fabric — by a gateway pacing real datagrams in via
    /// [`Fabric::inject`]. Admission is identical to
    /// [`Fabric::open_connection`] (deadline decomposition, bridge
    /// headroom, calculus certification), but every segment is only
    /// *reserved*: the source ring schedules no periodic releases, so the
    /// connection carries exactly the traffic injected into it.
    pub fn open_external_connection(
        &mut self,
        spec: FabricConnectionSpec,
    ) -> Result<FabricConnectionId, FabricAdmissionError> {
        self.open_external_connections(std::slice::from_ref(&spec))
            .map(|fids| fids[0])
    }

    /// Batch form of [`Fabric::open_external_connection`] — all-or-nothing
    /// like [`Fabric::open_connections`], one calculus fixed point for the
    /// whole batch.
    pub fn open_external_connections(
        &mut self,
        specs: &[FabricConnectionSpec],
    ) -> Result<Vec<FabricConnectionId>, FabricAdmissionError> {
        let degraded = self.dead_bridges.iter().any(|&d| d);
        let mut plans = Vec::with_capacity(specs.len());
        for spec in specs {
            plans.push(if degraded {
                plan_connection_avoiding(&self.topo, spec, &self.envs, &self.dead_bridges)?
            } else {
                plan_connection(&self.topo, spec, &self.envs)?
            });
        }
        self.admit_plans(plans, ConnClass::External)
    }

    /// Open a best-effort connection: the route is planned and every
    /// segment is *reserved* (registered with ring admission for
    /// integrity, but holding **no** utilisation and **no** calculus
    /// certificate). Traffic enters via [`Fabric::inject`] exactly like
    /// an external connection, but rides strictly leftover capacity:
    /// ring slots the EDF scheduler leaves idle, and bridge forward
    /// budget the guaranteed queue leaves unused each slot. Best-effort
    /// load can therefore never displace or delay a certified flow.
    pub fn open_best_effort(
        &mut self,
        spec: FabricConnectionSpec,
    ) -> Result<FabricConnectionId, FabricAdmissionError> {
        let degraded = self.dead_bridges.iter().any(|&d| d);
        let plan = if degraded {
            plan_connection_avoiding(&self.topo, &spec, &self.envs, &self.dead_bridges)?
        } else {
            plan_connection(&self.topo, &spec, &self.envs)?
        };
        self.admit_plan(plan, ConnClass::BestEffort)
    }

    /// Admit a batch of end-to-end connections atomically: every spec is
    /// planned, then the whole batch is certified by **one** warm-started
    /// calculus pass and admitted segment by segment — either all of them
    /// open (ids returned in spec order) or the fabric is exactly as
    /// before the call. Batching amortises the certification fixed point,
    /// which is what makes bulk admission ~an order of magnitude cheaper
    /// than a loop of [`Fabric::open_connection`] calls at scale.
    pub fn open_connections(
        &mut self,
        specs: &[FabricConnectionSpec],
    ) -> Result<Vec<FabricConnectionId>, FabricAdmissionError> {
        let degraded = self.dead_bridges.iter().any(|&d| d);
        let mut plans = Vec::with_capacity(specs.len());
        for spec in specs {
            plans.push(if degraded {
                plan_connection_avoiding(&self.topo, spec, &self.envs, &self.dead_bridges)?
            } else {
                plan_connection(&self.topo, spec, &self.envs)?
            });
        }
        self.admit_plans(plans, ConnClass::Periodic)
    }

    /// Admit an already-planned connection (shared by [`open_connection`]
    /// and the degraded-mode re-admission path).
    ///
    /// [`open_connection`]: Fabric::open_connection
    fn admit_plan(
        &mut self,
        plan: ConnectionPlan,
        class: ConnClass,
    ) -> Result<FabricConnectionId, FabricAdmissionError> {
        self.admit_plans(vec![plan], class).map(|fids| fids[0])
    }

    /// Admit a batch of planned connections, all-or-nothing. External
    /// batches reserve every segment (no periodic releases anywhere);
    /// periodic ones open segment 0 for periodic generation. Best-effort
    /// batches bypass the guaranteed machinery entirely: no bridge-buffer
    /// reservation, no calculus certification — segments are registered
    /// with the rings only so routing stays consistent.
    fn admit_plans(
        &mut self,
        plans: Vec<ConnectionPlan>,
        class: ConnClass,
    ) -> Result<Vec<FabricConnectionId>, FabricAdmissionError> {
        // Bridge-buffer feasibility, cumulative across the batch: each
        // resident connection reserves one buffer slot per crossing (one
        // message per period in flight at a bridge is the steady state
        // under met deadlines).
        let crossings: Vec<Vec<usize>> = plans
            .iter()
            .map(|plan| plan.queue_crossings(&self.topo))
            .collect();
        if class != ConnClass::BestEffort {
            let mut extra = vec![0usize; self.queue_resident.len()];
            for cr in &crossings {
                for &q in cr {
                    if self.queue_resident[q] + extra[q] >= self.bridge_cfg.capacity {
                        return Err(FabricAdmissionError::BridgeOverload { bridge: q / 2 });
                    }
                    extra[q] += 1;
                }
            }
        }
        // End-to-end certification (always on for cyclic fabrics): one
        // warm-started fixed-point pass certifies the whole batch against
        // the resident set, refusing it unless every flow — resident and
        // candidate — keeps a certified bound within its deadline. The
        // solver rolls itself back on refusal, so no ring was touched yet
        // and there is nothing to undo. Candidate ids are reserved here
        // (`next_fid` onwards) and only consumed once the rings accept.
        let fids: Vec<FabricConnectionId> = (0..plans.len() as u64)
            .map(|i| FabricConnectionId(self.next_fid + i))
            .collect();
        if class != ConnClass::BestEffort {
            if let Some(calc) = self.calculus.as_mut() {
                let batch: Vec<(FabricConnectionId, &ConnectionPlan, &[usize])> = fids
                    .iter()
                    .zip(plans.iter())
                    .zip(crossings.iter())
                    .map(|((&fid, plan), cr)| (fid, plan, cr.as_slice()))
                    .collect();
                let report = calc
                    .admit_batch(&batch)
                    .map_err(FabricAdmissionError::Calculus)?;
                if report.full {
                    self.metrics.calc_admit_full.incr();
                } else {
                    self.metrics.calc_admit_incremental.incr();
                }
            }
        }
        // Per-ring admission with whole-batch rollback (certification
        // included: a certified batch the rings refuse is released from
        // the solver in one pass).
        let mut admitted: Vec<Vec<ConnectionId>> = Vec::with_capacity(plans.len());
        for plan in plans.iter() {
            let mut ring_conns: Vec<ConnectionId> = Vec::with_capacity(plan.segments.len());
            let mut failed: Option<(usize, _)> = None;
            for (i, seg) in plan.segments.iter().enumerate() {
                let ring_idx = seg.segment.ring.0 as usize;
                let mut ring = self.rings[ring_idx].lock().expect("ring lock");
                let res = if class == ConnClass::BestEffort {
                    ring.reserve_best_effort(seg.spec.clone())
                } else if i == 0 && class == ConnClass::Periodic {
                    ring.open_connection(seg.spec.clone())
                } else {
                    ring.reserve_connection(seg.spec.clone())
                };
                drop(ring);
                match res {
                    Ok(id) => ring_conns.push(id),
                    Err(error) => {
                        failed = Some((i, error));
                        break;
                    }
                }
            }
            if let Some((segment, error)) = failed {
                for (j, id) in ring_conns.into_iter().enumerate() {
                    let rj = plan.segments[j].segment.ring.0 as usize;
                    self.rings[rj]
                        .lock()
                        .expect("ring lock")
                        .close_connection(id);
                }
                for (qi, conns) in admitted.into_iter().enumerate() {
                    for (j, id) in conns.into_iter().enumerate() {
                        let rj = plans[qi].segments[j].segment.ring.0 as usize;
                        self.rings[rj]
                            .lock()
                            .expect("ring lock")
                            .close_connection(id);
                    }
                }
                if class != ConnClass::BestEffort {
                    if let Some(calc) = self.calculus.as_mut() {
                        calc.remove_batch(&fids);
                    }
                }
                return Err(FabricAdmissionError::SegmentRejected { segment, error });
            }
            admitted.push(ring_conns);
        }
        // Bookkeeping — the batch is in.
        self.next_fid += plans.len() as u64;
        for ((fid, plan), (ring_conns, cr)) in fids
            .iter()
            .zip(plans)
            .zip(admitted.into_iter().zip(crossings))
        {
            for (i, (&rc, seg)) in ring_conns.iter().zip(plan.segments.iter()).enumerate() {
                self.by_ring_conn
                    .insert((seg.segment.ring.0, rc), (*fid, i));
            }
            if class != ConnClass::BestEffort {
                for &q in &cr {
                    self.queue_resident[q] += 1;
                }
            }
            self.connections.insert(
                *fid,
                ActiveConnection {
                    plan,
                    ring_conns,
                    queue_after: cr,
                    class,
                    delivered: 0,
                },
            );
        }
        Ok(fids)
    }

    /// Tear down an end-to-end connection, releasing every ring's capacity
    /// and the bridge-buffer reservations. Returns `false` for unknown ids.
    ///
    /// On fault-tracking fabrics, freed capacity is immediately offered to
    /// connections a fault left revoked or detoured: the same two-pass
    /// deterministic reclaim that runs after a bridge repair runs here,
    /// whenever there is anything to reclaim.
    pub fn close_connection(&mut self, fid: FabricConnectionId) -> bool {
        let closed = self.close_connection_impl(fid);
        if closed && self.track_faults && (!self.revoked_specs.is_empty() || self.detour_pending) {
            self.reclaim_connections();
        }
        closed
    }

    /// The teardown itself, with no reclaim trigger — what internal
    /// callers (reclaim, reconcile) use to avoid re-entering reclaim.
    fn close_connection_impl(&mut self, fid: FabricConnectionId) -> bool {
        let Some(active) = self.connections.remove(&fid) else {
            return false;
        };
        for (i, (&rc, seg)) in active
            .ring_conns
            .iter()
            .zip(active.plan.segments.iter())
            .enumerate()
        {
            let ring_idx = seg.segment.ring.0 as usize;
            self.rings[ring_idx]
                .lock()
                .expect("ring lock")
                .close_connection(rc);
            self.by_ring_conn.remove(&(seg.segment.ring.0, rc));
            self.inflight.remove(&(fid, i));
        }
        if active.class != ConnClass::BestEffort {
            for &q in &active.queue_after {
                self.queue_resident[q] -= 1;
            }
            if let Some(calc) = self.calculus.as_mut() {
                calc.remove(fid);
            }
        }
        self.observed_e2e.remove(&fid);
        true
    }

    /// The certified end-to-end delay bound of connection `fid`, when the
    /// network-calculus certifier is active (cyclic topologies built with
    /// [`CycleBound::Calculus`], or [`FabricConfig::calculus`] opt-in).
    /// Refreshed on every admission — it always reflects the current set.
    pub fn e2e_bound(&self, fid: FabricConnectionId) -> Option<TimeDelta> {
        self.calculus.as_ref().and_then(|c| c.bound(fid))
    }

    /// Largest end-to-end latency observed so far for connection `fid`
    /// (final deliveries only). `None` before its first delivery.
    pub fn observed_e2e_max(&self, fid: FabricConnectionId) -> Option<TimeDelta> {
        self.observed_e2e.get(&fid).copied()
    }

    /// Inject one externally produced message (e.g. a gateway datagram)
    /// into connection `fid`, released at the source ring's next slot
    /// boundary. The connection must have been opened with
    /// [`Fabric::open_external_connections`]; the message inherits the
    /// connection's size and decomposed per-segment deadlines, so it rides
    /// the same EDF machinery (and the same calculus certificate) as
    /// periodic traffic. Returns the release timestamp on the source
    /// ring's clock.
    ///
    /// The caller is responsible for pacing: injecting faster than the
    /// admitted period consumes more than the certified arrival curve and
    /// voids the bound (the gateway's token buckets enforce this).
    pub fn inject(&mut self, fid: FabricConnectionId) -> Result<SimTime, InjectError> {
        let Some(active) = self.connections.get(&fid) else {
            return Err(InjectError::UnknownConnection);
        };
        if !active.class.is_injected() {
            return Err(InjectError::NotExternal);
        }
        if !self.node_alive(active.plan.spec.src) {
            return Err(InjectError::SourceDown);
        }
        let class = active.class;
        let seg = &active.plan.segments[0];
        let ring_idx = seg.segment.ring.0 as usize;
        let (from, to) = (seg.segment.from, seg.segment.to);
        let rel_deadline = seg.spec.effective_deadline();
        let size = seg.spec.size_slots;
        let conn = active.ring_conns[0];
        // ccr-verify: allow(blocking-in-hot-path) -- the gateway pump and the slot engine share one thread; the per-ring mutex is uncontended at inject time
        let mut ring = self.rings[ring_idx].lock().expect("ring lock");
        let now = ring.now();
        let msg = if class == ConnClass::BestEffort {
            let mut m = Message::best_effort(
                from,
                Destination::Unicast(to),
                size,
                now,
                now.saturating_add(rel_deadline),
            );
            m.connection = Some(conn);
            m
        } else {
            Message::real_time(
                from,
                Destination::Unicast(to),
                size,
                now,
                now.saturating_add(rel_deadline),
                conn,
            )
        };
        ring.submit_message(now, msg);
        drop(ring);
        if class == ConnClass::BestEffort {
            self.metrics.be_injected.incr();
        } else {
            self.metrics.external_injected.incr();
        }
        Ok(now)
    }

    /// Drain final deliveries of externally injected connections
    /// accumulated since the last call, appending them to `out` in
    /// deterministic order (completion slot, then ring index, then
    /// delivery order). Within one fabric slot, sorting the drained batch
    /// by ascending [`EgressDelivery::slack`] yields EDF egress order.
    pub fn drain_egress(&mut self, out: &mut Vec<EgressDelivery>) {
        out.append(&mut self.egress_buf);
    }

    /// Are connection lifecycle events pending? Inlined so a per-slot
    /// caller pays one load on the (overwhelmingly common) idle path.
    #[inline]
    pub fn has_connection_events(&self) -> bool {
        !self.conn_events.is_empty()
    }

    /// Drain connection lifecycle events (reroutes, revocations,
    /// reclaims) accumulated by the fault/repair passes since the last
    /// call, appending them to `out` in emission order. An edge layer
    /// holding [`FabricConnectionId`]s MUST follow this stream: every
    /// reroute or reclaim assigns a fresh id, and injecting on the stale
    /// one fails with [`InjectError::UnknownConnection`] forever.
    pub fn drain_connection_events(&mut self, out: &mut Vec<ConnectionEvent>) {
        out.append(&mut self.conn_events);
    }

    /// Is `fid` a currently admitted connection? `false` for ids that
    /// were closed, rerouted (the new route has a new id), or revoked.
    pub fn connection_open(&self, fid: FabricConnectionId) -> bool {
        self.connections.contains_key(&fid)
    }

    /// Is the network-calculus certifier active on this fabric?
    pub fn calculus_enabled(&self) -> bool {
        self.calculus.is_some()
    }

    // --- fault injection & self-healing --------------------------------

    /// Is bridge `b` still forwarding?
    pub fn bridge_alive(&self, b: usize) -> bool {
        b < self.dead_bridges.len() && !self.dead_bridges[b]
    }

    /// Is the node at `g` still alive on its ring?
    pub fn node_alive(&self, g: GlobalNodeId) -> bool {
        self.ring_alive
            .get(g.ring.0 as usize)
            .and_then(|r| r.get(g.node.0 as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Kill a bridge station mid-run: both forwarding queues are flushed,
    /// its port nodes are failed on their rings, and every end-to-end
    /// connection routed across it is re-admitted over an alternate bridge
    /// path when one exists — revoked otherwise. Returns `false` for an
    /// unknown or already-dead bridge.
    pub fn kill_bridge(&mut self, bridge: usize) -> bool {
        self.track_faults = true;
        let killed = self.kill_bridge_impl(bridge);
        if killed {
            self.reconcile_connections();
        }
        killed
    }

    /// Fail one fabric node: it is optically bypassed on its ring, any
    /// bridge it serves as a port for dies with it, and the affected
    /// end-to-end connections are rerouted or revoked. Returns `false` for
    /// unknown or already-dead nodes.
    pub fn fail_node(&mut self, g: GlobalNodeId) -> bool {
        if !self.node_alive(g) {
            return false;
        }
        self.track_faults = true;
        self.node_down(g);
        self.reconcile_connections();
        true
    }

    fn kill_bridge_impl(&mut self, bridge: usize) -> bool {
        if bridge >= self.dead_bridges.len() || self.dead_bridges[bridge] {
            return false;
        }
        self.dead_bridges[bridge] = true;
        self.metrics.bridges_killed.incr();
        // Flush both direction queues — those messages have no path now.
        for qi in [2 * bridge, 2 * bridge + 1] {
            while let Some(pf) = self.queues[qi].pop_earliest() {
                self.fwd_meta.remove(&pf.seq);
                self.metrics.fault_dropped_forwards.incr();
            }
            while let Some(pf) = self.be_queues[qi].pop_earliest() {
                self.fwd_meta.remove(&pf.seq);
                self.metrics.fault_dropped_forwards.incr();
            }
        }
        // The bridge is one physical station with a port on each ring:
        // both ports die with it (which may cascade into further bridges
        // sharing those nodes).
        let br = self.topo.bridges()[bridge];
        self.node_down(br.a);
        self.node_down(br.b);
        true
    }

    /// Mark `g` dead fabric-side, bypass it on its ring, and cascade into
    /// any bridge it was a port of. Idempotent.
    // ccr-verify: event_path -- runs once per node death, not per slot
    fn node_down(&mut self, g: GlobalNodeId) {
        let (r, n) = (g.ring.0 as usize, g.node.0 as usize);
        if !self.ring_alive[r][n] {
            return;
        }
        self.ring_alive[r][n] = false;
        self.rings[r].lock().expect("ring lock").fail_node(g.node);
        let cascade: Vec<usize> = self
            .topo
            .bridges()
            .iter()
            .enumerate()
            .filter(|&(bi, br)| !self.dead_bridges[bi] && (br.a == g || br.b == g))
            .map(|(bi, _)| bi)
            .collect();
        for bi in cascade {
            self.kill_bridge_impl(bi);
        }
    }

    /// Degraded-mode re-validation of the admitted end-to-end set: any
    /// connection that crosses a dead bridge, or whose ring sub-connection
    /// was shed by a ring's own degraded-mode admission, is torn down and
    /// re-admitted over an alternate route when its endpoints are alive
    /// and a route exists — revoked otherwise. Deterministic: broken
    /// connections are processed in id order.
    // ccr-verify: event_path -- re-admission runs once per bridge/node fault, not per slot
    fn reconcile_connections(&mut self) {
        let mut broken: Vec<FabricConnectionId> = self
            .connections
            .iter()
            .filter(|(_, a)| {
                a.plan.bridges().any(|b| self.dead_bridges[b])
                    || a.ring_conns
                        .iter()
                        .zip(a.plan.segments.iter())
                        .any(|(&rc, seg)| {
                            !self.rings[seg.segment.ring.0 as usize]
                                .lock()
                                .expect("ring lock")
                                .admission()
                                .is_admitted(rc)
                        })
            })
            .map(|(&fid, _)| fid)
            .collect();
        broken.sort_unstable();
        for fid in broken {
            let (spec, class) = {
                let active = &self.connections[&fid];
                (active.plan.spec.clone(), active.class)
            };
            self.close_connection_impl(fid);
            let endpoints_alive = self.node_alive(spec.src) && self.node_alive(spec.dst);
            let rerouted = if endpoints_alive {
                plan_connection_avoiding(&self.topo, &spec, &self.envs, &self.dead_bridges)
                    .map_err(|_| RevokeReason::NoRoute)
                    .and_then(|plan| {
                        self.admit_plan(plan, class)
                            .map_err(|_| RevokeReason::AdmissionRefused)
                    })
            } else {
                Err(RevokeReason::EndpointDead)
            };
            match rerouted {
                Ok(new) => {
                    self.metrics.e2e_rerouted.incr();
                    self.conn_events
                        .push(ConnectionEvent::Rerouted { old: fid, new });
                }
                Err(reason) => {
                    self.metrics.e2e_revoked.incr();
                    self.conn_events
                        .push(ConnectionEvent::Revoked { old: fid, reason });
                    self.revoked_specs.push((spec, class, fid));
                }
            }
        }
    }

    /// Repair a previously killed bridge: its dead flag clears, its port
    /// nodes come back on their rings (unless another dead bridge still
    /// holds a port down), the health scan sees the rings whole again, and
    /// the fabric deterministically reclaims connections lost or detoured
    /// while it was down. Returns `false` for unknown or live bridges.
    pub fn repair_bridge(&mut self, bridge: usize) -> bool {
        self.track_faults = true;
        let repaired = self.repair_bridge_impl(bridge);
        if repaired {
            self.reclaim_connections();
        }
        repaired
    }

    fn repair_bridge_impl(&mut self, bridge: usize) -> bool {
        if bridge >= self.dead_bridges.len() || !self.dead_bridges[bridge] {
            return false;
        }
        self.dead_bridges[bridge] = false;
        self.metrics.bridges_repaired.incr();
        let br = self.topo.bridges()[bridge];
        self.node_up(br.a);
        self.node_up(br.b);
        true
    }

    /// Bring `g` back fabric-side and on its ring — unless another dead
    /// bridge still claims it as a port. Idempotent.
    fn node_up(&mut self, g: GlobalNodeId) {
        let (r, n) = (g.ring.0 as usize, g.node.0 as usize);
        if self.ring_alive[r][n] {
            return;
        }
        let held_down = self
            .topo
            .bridges()
            .iter()
            .enumerate()
            .any(|(bi, br)| self.dead_bridges[bi] && (br.a == g || br.b == g));
        if held_down {
            return;
        }
        // ccr-verify: allow(blocking-in-hot-path) -- serial phase: ring workers are parked between pool rounds; the per-ring mutex is uncontended by construction
        if self.rings[r].lock().expect("ring lock").repair_node(g.node) {
            self.ring_alive[r][n] = true;
        }
    }

    /// Post-repair reclamation, deterministic in two passes:
    ///
    /// 1. Specs revoked by earlier faults are retried in revocation order
    ///    (endpoints must be back; admission runs the full gate, calculus
    ///    included). Failures stay queued for the next repair.
    /// 2. Surviving connections whose current route differs from the
    ///    planner's preference (they were detoured around the dead bridge,
    ///    or re-planning now finds a shorter path) are moved back, in
    ///    connection-id order, falling back to their detour when the
    ///    preferred route is refused — and revoked only if even the detour
    ///    can no longer be re-admitted.
    // ccr-verify: event_path -- reclamation runs once per bridge repair, not per slot
    fn reclaim_connections(&mut self) {
        self.detour_pending = false;
        let stash = std::mem::take(&mut self.revoked_specs);
        for (spec, class, old_fid) in stash {
            let reclaimed = if self.node_alive(spec.src) && self.node_alive(spec.dst) {
                plan_connection_avoiding(&self.topo, &spec, &self.envs, &self.dead_bridges)
                    .ok()
                    .and_then(|plan| self.admit_plan(plan, class).ok())
            } else {
                None
            };
            match reclaimed {
                Some(new) => {
                    self.metrics.e2e_reclaimed.incr();
                    self.conn_events
                        .push(ConnectionEvent::Reclaimed { old: old_fid, new });
                }
                None => self.revoked_specs.push((spec, class, old_fid)),
            }
        }
        // ccr-verify: allow(nondeterminism) -- collected to a Vec and sorted by id on the next line
        let mut fids: Vec<FabricConnectionId> = self.connections.keys().copied().collect();
        fids.sort_unstable();
        for fid in fids {
            let (spec, current, old_plan, class) = {
                let active = &self.connections[&fid];
                (
                    active.plan.spec.clone(),
                    active.plan.bridges().collect::<Vec<usize>>(),
                    active.plan.clone(),
                    active.class,
                )
            };
            let Ok(preferred) =
                plan_connection_avoiding(&self.topo, &spec, &self.envs, &self.dead_bridges)
            else {
                continue;
            };
            if preferred.bridges().collect::<Vec<usize>>() == current {
                continue;
            }
            self.close_connection_impl(fid);
            if let Ok(new) = self.admit_plan(preferred, class) {
                self.metrics.e2e_reclaimed.incr();
                self.conn_events
                    .push(ConnectionEvent::Reclaimed { old: fid, new });
            } else if let Ok(new) = self.admit_plan(old_plan, class) {
                // Still detoured: remember so the next freed capacity
                // (any `close_connection`) re-runs this pass.
                self.detour_pending = true;
                self.conn_events
                    .push(ConnectionEvent::Rerouted { old: fid, new });
            } else {
                self.metrics.e2e_revoked.incr();
                self.conn_events.push(ConnectionEvent::Revoked {
                    old: fid,
                    reason: RevokeReason::AdmissionRefused,
                });
                self.revoked_specs.push((spec, class, fid));
            }
        }
    }

    /// Post-ring-phase health scan (fault runs only): count degraded
    /// slots and pick up node deaths that happened *inside* a ring this
    /// slot (scripted `FailNode` events), cascading them into bridge
    /// deaths and e2e re-admission.
    fn scan_ring_health(&mut self) {
        let mut degraded = false;
        // Empty Vec: only pushes (and so only allocates) on rare death
        // events; the every-slot bookkeeping reuses health_scratch.
        // ccr-verify: allow(alloc-in-hot-path) -- empty Vec, allocates only on a death event
        let mut deaths: Vec<GlobalNodeId> = Vec::new();
        self.health_scratch.clear();
        for r in 0..self.rings.len() {
            // ccr-verify: allow(blocking-in-hot-path) -- serial phase: ring workers are parked between pool rounds; the per-ring mutex is uncontended by construction
            let ring = self.rings[r].lock().expect("ring lock");
            let recovering = ring.last_outcome().recovering;
            self.health_scratch.push(recovering);
            if recovering {
                degraded = true;
            }
            let alive = &self.ring_alive[r];
            if (ring.live_nodes() as usize) < alive.iter().filter(|&&a| a).count() {
                for (n, &was_alive) in alive.iter().enumerate() {
                    if was_alive && !ring.node_alive(NodeId(n as u16)) {
                        deaths.push(GlobalNodeId::new(r as u16, n as u16));
                    }
                }
            }
        }
        if degraded {
            self.metrics.degraded_slots.incr();
        }
        self.metrics
            .record_ring_health(self.metrics.slots.get(), &self.health_scratch);
        if !deaths.is_empty() {
            for g in deaths {
                self.node_down(g);
            }
            self.reconcile_connections();
        }
    }

    /// Execute one fabric slot (every ring advances one MAC slot).
    pub fn step_slot(&mut self) {
        // Phase 0 — scripted bridge kills and repairs land at the slot
        // boundary, before any ring steps; serial, so the outcome is
        // identical for any ring-phase thread count.
        let slot = self.metrics.slots.get();
        while self.event_cursor < self.bridge_events.len()
            && self.bridge_events[self.event_cursor].0 <= slot
        {
            let (_, b, kind) = self.bridge_events[self.event_cursor];
            self.event_cursor += 1;
            match kind {
                BridgeEventKind::Kill => {
                    if self.kill_bridge_impl(b) {
                        self.reconcile_connections();
                    }
                }
                BridgeEventKind::Repair => {
                    if self.repair_bridge_impl(b) {
                        self.reclaim_connections();
                    }
                }
            }
        }
        // Phase 1 — ring stepping. With a pool, each ring is stepped by its
        // owning worker and deliveries are re-ordered by ring index; the
        // serial path steps rings in index order directly.
        let n = self.rings.len();
        let mut delivered = std::mem::take(&mut self.delivery_buf);
        match &self.pool {
            Some(pool) => pool.step_all(n, &mut delivered),
            None => {
                delivered.clear();
                for i in 0..n {
                    // ccr-verify: allow(blocking-in-hot-path) -- serial phase: ring workers are parked between pool rounds; the per-ring mutex is uncontended by construction
                    let mut ring = self.rings[i].lock().expect("ring lock");
                    // ccr-verify: allow(alloc-in-hot-path) -- serial fallback copies each ring's delivery list; the pooled path reuses buffers
                    delivered.push(ring.step_slot().deliveries.clone());
                }
            }
        }

        // Phase 1.5 — health scan, fault runs only (serial).
        if self.track_faults {
            self.scan_ring_health();
        }

        // Phase 2 — serial exchange: ring-index order, then delivery order.
        for (ring_idx, deliveries) in delivered.iter().enumerate() {
            for d in deliveries {
                self.handle_delivery(ring_idx as u16, d);
            }
        }
        self.delivery_buf = delivered;

        // Phase 3 — serial injection, queue-index order. The guaranteed
        // queue is drained first; best-effort forwards consume only
        // whatever is left of the per-slot budget, so they can never
        // delay a certified forward at the bridge.
        for qi in 0..self.queues.len() {
            let mut used = 0u32;
            while used < self.bridge_cfg.forward_per_slot {
                let Some(pf) = self.queues[qi].pop_earliest() else {
                    break;
                };
                used += 1;
                self.submit_forward(qi, pf);
            }
            while used < self.bridge_cfg.forward_per_slot {
                let Some(pf) = self.be_queues[qi].pop_earliest() else {
                    break;
                };
                used += 1;
                self.submit_forward(qi, pf);
            }
        }

        let peak = self
            .queues
            .iter()
            .map(|q| q.peak_occupancy as u64)
            .max()
            .unwrap_or(0);
        self.metrics.peak_bridge_occupancy = self.metrics.peak_bridge_occupancy.max(peak);
        self.metrics.slots.incr();
    }

    /// Run `k` fabric slots.
    pub fn run_slots(&mut self, k: u64) {
        for _ in 0..k {
            self.step_slot();
        }
    }

    /// Submit one popped forward into its egress ring — the phase-3
    /// tail shared by the guaranteed and best-effort queue drains.
    fn submit_forward(&mut self, qi: usize, pf: PendingForward) {
        let meta = self
            .fwd_meta
            .remove(&pf.seq)
            .expect("every queued forward has metadata");
        let ring_idx = self.queue_egress[qi];
        // ccr-verify: allow(blocking-in-hot-path) -- serial phase: ring workers are parked between pool rounds; the per-ring mutex is uncontended by construction
        let mut ring = self.rings[ring_idx].lock().expect("ring lock");
        let now = ring.now();
        let wait = now.saturating_since(pf.enqueued);
        ring.submit_message(now, pf.msg);
        drop(ring);
        self.metrics.record_forward(wait);
        self.inflight
            .entry((meta.fid, meta.seg_idx))
            .or_default()
            .push_back(Inflight {
                entered: pf.enqueued,
                accumulated: meta.accumulated,
            });
    }

    fn handle_delivery(&mut self, ring: u16, d: &Delivery) {
        let Some(conn) = d.msg.connection else {
            return;
        };
        let Some(&(fid, seg_idx)) = self.by_ring_conn.get(&(ring, conn)) else {
            return;
        };
        // Pull out everything needed from the plan before mutating metrics.
        let (n_segs, e2e_deadline, class, next) = {
            let active = &self.connections[&fid];
            let n = active.plan.segments.len();
            let next = if seg_idx + 1 < n {
                let ns = &active.plan.segments[seg_idx + 1];
                let cross = active.plan.segments[seg_idx]
                    .segment
                    .bridge
                    .expect("non-final segment ends at a bridge");
                Some((
                    self.queue_index(cross, active.plan.segments[seg_idx].segment.ring),
                    ns.segment.ring.0 as usize,
                    ns.segment.from,
                    ns.segment.to,
                    ns.spec.effective_deadline(),
                    active.ring_conns[seg_idx + 1],
                ))
            } else {
                None
            };
            (n, active.plan.spec.e2e_deadline, active.class, next)
        };
        let (entered, accumulated) = if seg_idx == 0 {
            (d.msg.released, TimeDelta::ZERO)
        } else {
            // FIFO matching — see `Inflight`.
            let Some(rec) = self
                .inflight
                .get_mut(&(fid, seg_idx))
                .and_then(|q| q.pop_front())
            else {
                return; // stray delivery of a since-closed connection
            };
            (rec.entered, rec.accumulated)
        };
        let seg_latency = d.completed.saturating_since(entered);
        let total = accumulated + seg_latency;
        self.metrics.record_segment(seg_idx, seg_latency);
        match next {
            None => {
                debug_assert_eq!(seg_idx + 1, n_segs);
                let met = total <= e2e_deadline;
                if class == ConnClass::BestEffort {
                    // Best-effort stays out of e2e_* so guaranteed
                    // hit/miss ratios and observed-vs-bound checks are
                    // never diluted by uncertified traffic.
                    self.metrics.record_be(total, met);
                } else {
                    self.metrics.record_e2e(total, met);
                    let worst = self.observed_e2e.entry(fid).or_insert(TimeDelta::ZERO);
                    *worst = (*worst).max(total);
                }
                if class.is_injected() {
                    let active = self
                        .connections
                        .get_mut(&fid)
                        .expect("active connection just read");
                    let seq = active.delivered;
                    active.delivered += 1;
                    if class == ConnClass::External {
                        self.metrics.external_delivered.incr();
                    }
                    self.egress_buf.push(EgressDelivery {
                        fid,
                        seq,
                        latency: total,
                        met_deadline: met,
                        slack: e2e_deadline.saturating_sub(total),
                    });
                }
            }
            Some((qi, egress_ring, from, to, rel_deadline, egress_conn)) => {
                // Hand off to the bridge: timestamp and sub-deadline on the
                // egress ring's clock.
                // ccr-verify: allow(blocking-in-hot-path) -- serial phase: ring workers are parked between pool rounds; the per-ring mutex is uncontended by construction
                let now = self.rings[egress_ring].lock().expect("ring lock").now();
                let size = d.msg.size_slots;
                let msg = if class == ConnClass::BestEffort {
                    let mut m = Message::best_effort(
                        from,
                        Destination::Unicast(to),
                        size,
                        now,
                        now.saturating_add(rel_deadline),
                    );
                    m.connection = Some(egress_conn);
                    m
                } else {
                    Message::real_time(
                        from,
                        Destination::Unicast(to),
                        size,
                        now,
                        now.saturating_add(rel_deadline),
                        egress_conn,
                    )
                };
                let seq = self.fwd_seq;
                self.fwd_seq += 1;
                self.fwd_meta.insert(
                    seq,
                    ForwardMeta {
                        fid,
                        seg_idx: seg_idx + 1,
                        accumulated: total,
                    },
                );
                let pending = PendingForward {
                    msg,
                    enqueued: now,
                    seq,
                };
                let dropped = if class == ConnClass::BestEffort {
                    self.be_queues[qi].push(pending, &self.bridge_cfg)
                } else {
                    self.queues[qi].push(pending, &self.bridge_cfg)
                };
                if let Some(dp) = dropped {
                    self.fwd_meta.remove(&dp.seq);
                    if class == ConnClass::BestEffort {
                        self.metrics.be_bridge_drops.incr();
                    } else {
                        self.metrics.bridge_drops.incr();
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("rings", &self.rings.len())
            .field("bridges", &self.topo.bridges().len())
            .field("connections", &self.connections.len())
            .field("slots", &self.metrics.slots.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GlobalNodeId;

    #[test]
    fn uniform_config_builds() {
        let topo = FabricTopology::chain(3, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        assert_eq!(cfg.ring_configs.len(), 3);
        let fabric = Fabric::new(cfg).unwrap();
        assert_eq!(fabric.topology().n_rings(), 3);
        assert_eq!(fabric.queues.len(), 4); // 2 bridges × 2 directions
    }

    #[test]
    fn mismatched_ring_configs_rejected() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.ring_configs.pop();
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::RingCountMismatch {
                expected: 2,
                got: 1
            })
        ));

        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.ring_configs[1] = NetworkConfig::builder(9)
            .slot_bytes(2048)
            .build_auto_slot()
            .unwrap();
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::RingSizeMismatch { .. })
        ));
    }

    #[test]
    fn bridge_buffer_reservation_bounds_admission() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        cfg.bridge.capacity = 2;
        let mut fabric = Fabric::new(cfg).unwrap();
        let spec = |src: u16, dst: u16| {
            FabricConnectionSpec::unicast(GlobalNodeId::new(0, src), GlobalNodeId::new(1, dst))
                .period(TimeDelta::from_ms(2))
        };
        fabric.open_connection(spec(0, 2)).unwrap();
        fabric.open_connection(spec(1, 3)).unwrap();
        let err = fabric.open_connection(spec(2, 4)).unwrap_err();
        assert_eq!(err, FabricAdmissionError::BridgeOverload { bridge: 0 });
        // closing releases the reservation
        let ids: Vec<FabricConnectionId> = fabric.connections.keys().copied().collect();
        fabric.close_connection(ids[0]);
        assert!(fabric.open_connection(spec(2, 4)).is_ok());
    }

    #[test]
    fn killing_a_chain_bridge_revokes_crossing_connections() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let crossing = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        let local = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(0, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        fabric.run_slots(50);
        assert!(fabric.kill_bridge(0));
        assert!(!fabric.bridge_alive(0));
        assert!(!fabric.kill_bridge(0), "second kill is a no-op");
        // A chain has no alternate path: the crossing connection is
        // revoked, the same-ring one rides out the fault.
        assert_eq!(fabric.metrics().bridges_killed.get(), 1);
        assert_eq!(fabric.metrics().e2e_revoked.get(), 1);
        assert_eq!(fabric.metrics().e2e_rerouted.get(), 0);
        assert!(!fabric.connections.contains_key(&crossing));
        assert!(fabric.connections.contains_key(&local));
        // The bridge station's port nodes died with it.
        assert!(!fabric.node_alive(GlobalNodeId::new(0, 5)));
        assert!(!fabric.node_alive(GlobalNodeId::new(1, 0)));
        // New admissions across the cut are refused as unroutable.
        let err = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 2))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            FabricAdmissionError::Topology(crate::topology::TopologyError::NoRoute(..))
        ));
        // The degraded fabric keeps running.
        let before = fabric.metrics().e2e_delivered.get();
        fabric.run_slots(4_000);
        assert!(fabric.metrics().e2e_delivered.get() > before);
    }

    #[test]
    fn cyclic_fabric_reroutes_around_a_dead_bridge() {
        // Triangle: 0—1 (bridge 0), 1—2 (bridge 1), 2—0 (bridge 2).
        let mut b = FabricTopology::builder();
        for _ in 0..3 {
            b.ring(6);
        }
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
        b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
        b.allow_cycles_with(CycleBound::unbounded());
        let topo = b.build().unwrap();
        let cfg = FabricConfig::uniform(topo, 2048, 11).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        fabric.run_slots(100);
        let delivered_before = fabric.metrics().e2e_delivered.get();
        assert!(delivered_before > 0, "traffic flows before the fault");
        assert!(fabric.kill_bridge(0));
        // The connection came back over the detour through ring 2.
        assert_eq!(fabric.metrics().e2e_rerouted.get(), 1);
        assert_eq!(fabric.metrics().e2e_revoked.get(), 0);
        assert!(!fabric.connections.contains_key(&fid), "old id is gone");
        assert_eq!(fabric.active_connections(), 1);
        let active = fabric.connections.values().next().unwrap();
        assert_eq!(active.plan.segments.len(), 3, "detour crosses two bridges");
        assert_eq!(
            active.plan.bridges().collect::<Vec<_>>(),
            vec![2, 1],
            "detour avoids the dead bridge"
        );
        // End-to-end traffic resumes on the alternate route.
        fabric.run_slots(600);
        assert!(fabric.metrics().e2e_delivered.get() > delivered_before);
    }

    /// Triangle of three rings: 0—1 (bridge 0), 1—2 (bridge 1), 2—0
    /// (bridge 2) — genuinely cyclic.
    fn triangle(ring_size: u16, bound: CycleBound) -> FabricTopology {
        let mut b = FabricTopology::builder();
        for _ in 0..3 {
            b.ring(ring_size);
        }
        b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
        b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
        b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
        b.allow_cycles_with(bound);
        b.build().unwrap()
    }

    #[test]
    fn cyclic_triangle_admits_with_certified_finite_bound() {
        // The seed behaviour: a cyclic triangle is rejected outright at
        // topology build unless the builder opts in. With the Calculus
        // bound the fabric now admits connections *with a certificate*.
        {
            let mut b = FabricTopology::builder();
            for _ in 0..3 {
                b.ring(8);
            }
            b.bridge(GlobalNodeId::new(0, 0), GlobalNodeId::new(1, 0));
            b.bridge(GlobalNodeId::new(1, 1), GlobalNodeId::new(2, 0));
            b.bridge(GlobalNodeId::new(2, 1), GlobalNodeId::new(0, 1));
            assert!(b.build().is_err(), "seed rejects the cyclic triangle");
        }
        let topo = triangle(8, CycleBound::Calculus);
        let cfg = FabricConfig::uniform(topo, 2048, 3).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        assert!(fabric.calculus_enabled());
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        let bound = fabric.e2e_bound(fid).expect("admission certified a bound");
        assert!(bound > TimeDelta::ZERO && bound <= TimeDelta::from_ms(5));
        // The certificate is honoured by the simulated fabric.
        fabric.run_slots(3_000);
        let observed = fabric.observed_e2e_max(fid).expect("traffic flowed");
        assert!(
            observed <= bound,
            "observed {observed} exceeds certified bound {bound}"
        );
    }

    #[test]
    fn calculus_verdicts_are_identical_across_thread_counts() {
        let mut bounds_by_threads = Vec::new();
        for threads in [1usize, 4] {
            let topo = triangle(8, CycleBound::Calculus);
            let cfg = FabricConfig::uniform(topo, 2048, 3)
                .unwrap()
                .threads(threads);
            let mut fabric = Fabric::new(cfg).unwrap();
            let mut run = Vec::new();
            for (src, dst) in [
                (GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3)),
                (GlobalNodeId::new(1, 4), GlobalNodeId::new(2, 3)),
                (GlobalNodeId::new(2, 4), GlobalNodeId::new(0, 3)),
            ] {
                let fid = fabric
                    .open_connection(
                        FabricConnectionSpec::unicast(src, dst).period(TimeDelta::from_ms(5)),
                    )
                    .unwrap();
                fabric.run_slots(50);
                run.push(fabric.e2e_bound(fid).unwrap());
            }
            bounds_by_threads.push(run);
        }
        assert_eq!(
            bounds_by_threads[0], bounds_by_threads[1],
            "certified bounds must be bit-identical for any thread count"
        );
    }

    #[test]
    fn repaired_bridge_reclaims_revoked_connections() {
        // Chain: killing the only bridge revokes the crossing connection;
        // repairing it brings the connection back deterministically.
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        fabric.run_slots(50);
        assert!(fabric.kill_bridge(0));
        assert_eq!(fabric.metrics().e2e_revoked.get(), 1);
        assert_eq!(fabric.active_connections(), 0);
        assert!(!fabric.repair_bridge(3), "unknown bridge");
        assert!(fabric.repair_bridge(0));
        assert!(!fabric.repair_bridge(0), "second repair is a no-op");
        assert!(fabric.bridge_alive(0));
        // Port nodes are back on their rings.
        assert!(fabric.node_alive(GlobalNodeId::new(0, 5)));
        assert!(fabric.node_alive(GlobalNodeId::new(1, 0)));
        assert_eq!(fabric.metrics().bridges_repaired.get(), 1);
        assert_eq!(fabric.metrics().e2e_reclaimed.get(), 1);
        assert_eq!(fabric.active_connections(), 1);
        assert!(
            !fabric.connections.contains_key(&fid),
            "fresh id on reclaim"
        );
        // Traffic flows end-to-end again.
        let before = fabric.metrics().e2e_delivered.get();
        fabric.run_slots(2_000);
        assert!(fabric.metrics().e2e_delivered.get() > before);
    }

    #[test]
    fn repaired_bridge_moves_detoured_connections_back() {
        // Cyclic triangle with the Unbounded escape hatch: kill bridge 0 so
        // the connection detours via ring 2, then repair it — the reclaim
        // pass moves the connection back onto its one-bridge route.
        let topo = triangle(6, CycleBound::unbounded());
        let cfg = FabricConfig::uniform(topo, 2048, 11).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        fabric.run_slots(50);
        assert!(fabric.kill_bridge(0));
        assert_eq!(fabric.metrics().e2e_rerouted.get(), 1);
        {
            let active = fabric.connections.values().next().unwrap();
            assert_eq!(active.plan.bridges().collect::<Vec<_>>(), vec![2, 1]);
        }
        assert!(fabric.repair_bridge(0));
        assert_eq!(fabric.metrics().e2e_reclaimed.get(), 1);
        let active = fabric.connections.values().next().unwrap();
        assert_eq!(
            active.plan.bridges().collect::<Vec<_>>(),
            vec![0],
            "back on the direct route"
        );
    }

    #[test]
    fn scripted_repair_fires_at_its_slot() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        for rc in &mut cfg.ring_configs {
            rc.faults.recovery_timeout_slots = 4;
        }
        let cfg = cfg.fault_script(
            FabricFaultScript::new()
                .kill_bridge_at(20, 0)
                .repair_bridge_at(60, 0),
        );
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        fabric.run_slots(30);
        assert!(!fabric.bridge_alive(0));
        assert!(!fabric.connections.contains_key(&fid));
        fabric.run_slots(40);
        assert!(fabric.bridge_alive(0), "repair landed");
        assert_eq!(fabric.metrics().bridges_repaired.get(), 1);
        assert_eq!(fabric.metrics().e2e_reclaimed.get(), 1);
        assert_eq!(fabric.active_connections(), 1);
        let before = fabric.metrics().e2e_delivered.get();
        fabric.run_slots(3_000);
        assert!(fabric.metrics().e2e_delivered.get() > before);
    }

    #[test]
    fn script_targeting_unknown_repair_bridge_rejected_at_build() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7)
            .unwrap()
            .fault_script(FabricFaultScript::new().repair_bridge_at(5, 9));
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::UnknownBridge { bridge: 9 })
        ));
    }

    #[test]
    fn scripted_node_death_inside_a_ring_is_picked_up_by_the_fabric() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        for rc in &mut cfg.ring_configs {
            rc.faults.recovery_timeout_slots = 4;
        }
        let cfg = cfg.fault_script(FabricFaultScript::new().ring_at(
            10,
            RingId(0),
            ccr_edf::fault::FaultKind::FailNode(ccr_phys::NodeId(1)),
        ));
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        fabric.run_slots(30);
        assert!(!fabric.node_alive(GlobalNodeId::new(0, 1)));
        assert!(!fabric.connections.contains_key(&fid));
        // The source died, so there is nothing to reroute.
        assert_eq!(fabric.metrics().e2e_revoked.get(), 1);
        assert_eq!(fabric.metrics().e2e_rerouted.get(), 0);
        // A non-port node death leaves the bridge standing.
        assert!(fabric.bridge_alive(0));
    }

    #[test]
    fn scripted_bridge_kill_fires_at_its_slot() {
        let topo = FabricTopology::chain(2, 6);
        let mut cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        for rc in &mut cfg.ring_configs {
            rc.faults.recovery_timeout_slots = 4;
        }
        let cfg = cfg.fault_script(FabricFaultScript::new().kill_bridge_at(20, 0));
        let mut fabric = Fabric::new(cfg).unwrap();
        fabric.run_slots(20);
        assert!(fabric.bridge_alive(0), "kill not due yet");
        fabric.step_slot();
        assert!(!fabric.bridge_alive(0), "kill landed at its slot");
        assert_eq!(fabric.metrics().bridges_killed.get(), 1);
    }

    #[test]
    fn script_targeting_unknown_bridge_rejected_at_build() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7)
            .unwrap()
            .fault_script(FabricFaultScript::new().kill_bridge_at(5, 9));
        assert!(matches!(
            Fabric::new(cfg),
            Err(FabricBuildError::UnknownBridge { bridge: 9 })
        ));
    }

    #[test]
    fn rollback_on_segment_rejection() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        // Saturate ring 1 locally (utilisation-wise) so the second segment
        // of a cross-ring connection is refused: open 0.05-utilisation
        // connections until one bounces, leaving headroom < 0.05.
        let slot = fabric.segment_envs()[1].slot;
        let period = slot.times(20);
        {
            let mut r1 = fabric.rings[1].lock().unwrap();
            while r1
                .open_connection(
                    ccr_edf::connection::ConnectionSpec::unicast(
                        ccr_phys::NodeId(2),
                        ccr_phys::NodeId(4),
                    )
                    .period(period)
                    .size_slots(1),
                )
                .is_ok()
            {}
        }
        let before: usize = {
            let r0 = fabric.rings[0].lock().unwrap();
            r0.admission().admitted_count()
        };
        let err = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 2))
                    .period(period),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                FabricAdmissionError::SegmentRejected { segment: 1, .. }
            ),
            "unexpected: {err:?}"
        );
        let after: usize = {
            let r0 = fabric.rings[0].lock().unwrap();
            r0.admission().admitted_count()
        };
        assert_eq!(before, after, "ring 0's admission rolled back");
        assert_eq!(fabric.active_connections(), 0);
    }

    #[test]
    fn external_connection_carries_only_injected_traffic() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_external_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        // Reserved everywhere: slots pass, nothing is generated.
        fabric.run_slots(500);
        assert_eq!(fabric.metrics().e2e_delivered.get(), 0);
        // Injected messages ride the reserved connection end to end, FIFO.
        for _ in 0..4 {
            fabric.inject(fid).unwrap();
            fabric.run_slots(200);
        }
        let mut out = Vec::new();
        fabric.drain_egress(&mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|d| d.fid == fid && d.met_deadline));
        assert_eq!(
            out.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(fabric.metrics().external_injected.get(), 4);
        assert_eq!(fabric.metrics().external_delivered.get(), 4);
        assert_eq!(fabric.metrics().e2e_delivered.get(), 4);
        // The drain is a move: a second call yields nothing new.
        fabric.drain_egress(&mut out);
        assert_eq!(out.len(), 4);
        // Misuse is typed, not silent.
        let periodic = fabric
            .open_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(0, 4))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        assert!(matches!(
            fabric.inject(periodic),
            Err(InjectError::NotExternal)
        ));
        fabric.close_connection(fid);
        assert!(matches!(
            fabric.inject(fid),
            Err(InjectError::UnknownConnection)
        ));
    }

    #[test]
    fn injected_traffic_respects_the_calculus_certificate() {
        let topo = triangle(8, CycleBound::Calculus);
        let cfg = FabricConfig::uniform(topo, 2048, 3).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_external_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        let bound = fabric.e2e_bound(fid).expect("certified");
        // Inject at the admitted period: every delivery stays within the
        // certified end-to-end bound.
        let period_slots = 5 * 1_000_000 / (fabric.segment_envs()[0].slot.as_ps() / 1_000_000);
        for _ in 0..6 {
            fabric.inject(fid).unwrap();
            fabric.run_slots(period_slots.max(1));
        }
        let observed = fabric.observed_e2e_max(fid).expect("traffic flowed");
        assert!(
            observed <= bound,
            "observed {observed} exceeds certified bound {bound}"
        );
    }

    #[test]
    fn best_effort_rides_leftover_capacity_end_to_end() {
        let topo = FabricTopology::chain(2, 6);
        let cfg = FabricConfig::uniform(topo, 2048, 7).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let fid = fabric
            .open_best_effort(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(2)),
            )
            .unwrap();
        // Placed, not certified: nothing periodic is generated and no
        // calculus bound exists for it.
        assert!(fabric.e2e_bound(fid).is_none());
        fabric.run_slots(200);
        assert_eq!(fabric.metrics().be_delivered.get(), 0);
        // Injected messages cross the bridge on leftover forward budget.
        for _ in 0..4 {
            fabric.inject(fid).unwrap();
            fabric.run_slots(200);
        }
        let mut out = Vec::new();
        fabric.drain_egress(&mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|d| d.fid == fid));
        assert_eq!(
            out.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(fabric.metrics().be_injected.get(), 4);
        assert_eq!(fabric.metrics().be_delivered.get(), 4);
        // The guaranteed ledgers never see best-effort traffic.
        assert_eq!(fabric.metrics().e2e_delivered.get(), 0);
        assert_eq!(fabric.metrics().external_delivered.get(), 0);
        assert!(fabric.observed_e2e_max(fid).is_none());
        // Teardown releases the route like any other class.
        assert!(fabric.close_connection(fid));
        assert!(matches!(
            fabric.inject(fid),
            Err(InjectError::UnknownConnection)
        ));
    }

    #[test]
    fn best_effort_floods_never_induce_a_guaranteed_miss() {
        let topo = triangle(8, CycleBound::Calculus);
        let cfg = FabricConfig::uniform(topo, 2048, 3).unwrap();
        let mut fabric = Fabric::new(cfg).unwrap();
        let rt = fabric
            .open_external_connection(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 2), GlobalNodeId::new(1, 3))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        let bound = fabric.e2e_bound(rt).expect("certified");
        // Same source ring, same bridge direction — maximal contention
        // for the guaranteed flow's slots and forward budget.
        let be = fabric
            .open_best_effort(
                FabricConnectionSpec::unicast(GlobalNodeId::new(0, 4), GlobalNodeId::new(1, 5))
                    .period(TimeDelta::from_ms(5)),
            )
            .unwrap();
        let period_slots =
            (5 * 1_000_000 / (fabric.segment_envs()[0].slot.as_ps() / 1_000_000)).max(1);
        // Flood best-effort every slot — far beyond any certified
        // envelope — while the guaranteed flow paces at its period.
        for _ in 0..6 {
            fabric.inject(rt).unwrap();
            for _ in 0..period_slots {
                fabric.inject(be).unwrap();
                fabric.run_slots(1);
            }
        }
        fabric.run_slots(2 * period_slots);
        let observed = fabric
            .observed_e2e_max(rt)
            .expect("guaranteed traffic flowed");
        assert!(
            observed <= bound,
            "best-effort flood pushed guaranteed flow to {observed}, past its certified {bound}"
        );
        assert_eq!(
            fabric.metrics().e2e_delivered.get(),
            fabric.metrics().e2e_met.get(),
            "a guaranteed delivery missed its deadline under best-effort load"
        );
        assert_eq!(fabric.metrics().bridge_drops.get(), 0);
        assert!(fabric.metrics().be_delivered.get() > 0);
    }
}
