//! End-to-end fabric metrics.
//!
//! Like [`ccr_edf::metrics::Metrics`], [`FabricMetrics`] is purely a
//! function of the simulated schedule — no wall-clock state — so two runs
//! of the same fabric scenario must compare equal with `==` regardless of
//! thread count. The determinism tests rely on this to prove parallel
//! per-ring stepping is bit-identical to serial stepping.

use ccr_sim::stats::{Counter, Histogram, Series};
use ccr_sim::TimeDelta;

/// Fabric slots per point of the per-ring availability series: each
/// completed window contributes one `(window-end slot, availability)`
/// sample to [`FabricMetrics::ring_availability`].
pub const RING_AVAILABILITY_WINDOW: u64 = 512;

/// Aggregated end-to-end metrics of one fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricMetrics {
    /// Fabric slots executed (every ring advances one slot per fabric slot).
    pub slots: Counter,
    /// Messages delivered at their *final* destination.
    pub e2e_delivered: Counter,
    /// Final deliveries that met the end-to-end deadline.
    pub e2e_met: Counter,
    /// Final deliveries that missed the end-to-end deadline.
    pub e2e_missed: Counter,
    /// Release-at-source → delivery-at-destination latency (ns).
    pub e2e_latency: Histogram,
    /// Messages handed across any bridge (one count per crossing).
    pub forwarded: Counter,
    /// Messages dropped at a full bridge buffer.
    pub bridge_drops: Counter,
    /// Time messages spent queued inside bridge buffers (ns).
    pub bridge_wait: Histogram,
    /// Per-hop latency by segment index along the route (ns): entry into
    /// the segment's ring → delivery at the segment exit. Grown on demand
    /// to the longest route observed.
    pub segment_latency: Vec<Histogram>,
    /// High-water mark across all bridge buffers.
    pub peak_bridge_occupancy: u64,
    /// Bridge stations taken down by fault injection.
    pub bridges_killed: Counter,
    /// Previously killed bridge stations brought back by repair events.
    pub bridges_repaired: Counter,
    /// Queued forwards lost when a dying bridge's buffers were flushed.
    pub fault_dropped_forwards: Counter,
    /// End-to-end connections re-admitted over an alternate bridge path
    /// after a fault invalidated their route.
    pub e2e_rerouted: Counter,
    /// End-to-end connections revoked by a fault with no surviving
    /// alternate route (or whose endpoint died).
    pub e2e_revoked: Counter,
    /// Connections brought back after a repair: revoked specs re-admitted,
    /// plus detoured connections moved back onto their preferred route.
    pub e2e_reclaimed: Counter,
    /// Messages injected by an external producer (gateway datagrams)
    /// through [`Fabric::inject`](crate::engine::Fabric::inject).
    pub external_injected: Counter,
    /// Final deliveries of externally injected connections (surfaced via
    /// [`Fabric::drain_egress`](crate::engine::Fabric::drain_egress)).
    pub external_delivered: Counter,
    /// Best-effort messages injected through
    /// [`Fabric::inject`](crate::engine::Fabric::inject).
    pub be_injected: Counter,
    /// Final deliveries of best-effort connections. Kept out of the
    /// `e2e_*` guaranteed-traffic counters so guaranteed miss ratios are
    /// never diluted by soft-deadline traffic.
    pub be_delivered: Counter,
    /// Best-effort final deliveries inside their (soft) deadline.
    pub be_met: Counter,
    /// Release-at-source → final-delivery latency of best-effort
    /// messages (ns).
    pub be_latency: Histogram,
    /// Best-effort forwards dropped at a full best-effort bridge queue.
    pub be_bridge_drops: Counter,
    /// Calculus certifications served by a warm-started dirty-set solve.
    pub calc_admit_incremental: Counter,
    /// Calculus certifications that ran as a full re-solve (first fill,
    /// forced reference mode, or recovery from a tainted warm start).
    pub calc_admit_full: Counter,
    /// Fabric slots during which at least one ring was in clock-loss
    /// recovery (dead time somewhere in the fabric).
    pub degraded_slots: Counter,
    /// Cumulative recovering (degraded) slots per ring, indexed by ring.
    /// Populated only on fault-tracking runs; grown on first record.
    pub ring_degraded_slots: Vec<Counter>,
    /// Windowed per-ring availability: series `r` holds one point
    /// `(window-end fabric slot, availability within the window)` per
    /// completed [`RING_AVAILABILITY_WINDOW`]-slot window of ring `r`.
    /// Call [`FabricMetrics::flush_ring_health`] at end of run to emit the
    /// final partial window.
    pub ring_availability: Vec<Series>,
    /// Degraded slots inside the currently accumulating window, per ring.
    window_degraded: Vec<u64>,
    /// Health-scanned slots accumulated in the current window.
    window_len: u64,
}

impl Default for FabricMetrics {
    fn default() -> Self {
        FabricMetrics {
            slots: Counter::default(),
            e2e_delivered: Counter::default(),
            e2e_met: Counter::default(),
            e2e_missed: Counter::default(),
            e2e_latency: Histogram::for_latency(),
            forwarded: Counter::default(),
            bridge_drops: Counter::default(),
            bridge_wait: Histogram::for_latency(),
            segment_latency: Vec::new(),
            peak_bridge_occupancy: 0,
            bridges_killed: Counter::default(),
            bridges_repaired: Counter::default(),
            fault_dropped_forwards: Counter::default(),
            e2e_rerouted: Counter::default(),
            e2e_revoked: Counter::default(),
            e2e_reclaimed: Counter::default(),
            external_injected: Counter::default(),
            external_delivered: Counter::default(),
            be_injected: Counter::default(),
            be_delivered: Counter::default(),
            be_met: Counter::default(),
            be_latency: Histogram::for_latency(),
            be_bridge_drops: Counter::default(),
            calc_admit_incremental: Counter::default(),
            calc_admit_full: Counter::default(),
            degraded_slots: Counter::default(),
            ring_degraded_slots: Vec::new(),
            ring_availability: Vec::new(),
            window_degraded: Vec::new(),
            window_len: 0,
        }
    }
}

impl FabricMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a final delivery with its end-to-end latency.
    pub fn record_e2e(&mut self, latency: TimeDelta, met_deadline: bool) {
        self.e2e_delivered.incr();
        if met_deadline {
            self.e2e_met.incr();
        } else {
            self.e2e_missed.incr();
        }
        self.e2e_latency.record(latency.as_ps() / 1_000);
    }

    /// Record one segment traversal at hop position `index`.
    pub fn record_segment(&mut self, index: usize, latency: TimeDelta) {
        if self.segment_latency.len() <= index {
            self.grow_segments(index);
        }
        self.segment_latency[index].record(latency.as_ps() / 1_000);
    }

    /// First-contact growth: one histogram per hop position, built the
    /// first time a delivery reaches that depth.
    // ccr-verify: event_path -- runs once per new hop depth (bounded by ring count), not per slot
    fn grow_segments(&mut self, index: usize) {
        while self.segment_latency.len() <= index {
            self.segment_latency.push(Histogram::for_latency());
        }
    }

    /// Record one bridge crossing with its queueing delay.
    pub fn record_forward(&mut self, wait: TimeDelta) {
        self.forwarded.incr();
        self.bridge_wait.record(wait.as_ps() / 1_000);
    }

    /// Record a final delivery of a best-effort connection.
    pub fn record_be(&mut self, latency: TimeDelta, met_deadline: bool) {
        self.be_delivered.incr();
        if met_deadline {
            self.be_met.incr();
        }
        self.be_latency.record(latency.as_ps() / 1_000);
    }

    /// Fraction of final deliveries that missed their e2e deadline.
    pub fn e2e_miss_ratio(&self) -> f64 {
        self.e2e_missed.fraction_of_counter(&self.e2e_delivered)
    }

    /// Fraction of fabric slots in which every ring had a live clock
    /// (1.0 on a fault-free run).
    pub fn availability(&self) -> f64 {
        let total = self.slots.get();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.degraded_slots.get() as f64 / total as f64
    }

    /// Record one health-scanned fabric slot: `recovering[r]` is true when
    /// ring `r` spent the slot in clock-loss recovery. `slot` is the fabric
    /// slot index just executed. Completed windows append one point per
    /// ring to [`FabricMetrics::ring_availability`].
    pub fn record_ring_health(&mut self, slot: u64, recovering: &[bool]) {
        self.grow_rings(recovering.len());
        for (r, &rec) in recovering.iter().enumerate() {
            if rec {
                self.ring_degraded_slots[r].incr();
                self.window_degraded[r] += 1;
            }
        }
        self.window_len += 1;
        if self.window_len >= RING_AVAILABILITY_WINDOW {
            self.emit_window(slot);
        }
    }

    /// Emit the in-progress partial window (if any) as a final series
    /// point. Call once at end of run; recording may continue afterwards.
    pub fn flush_ring_health(&mut self, slot: u64) {
        if self.window_len > 0 {
            self.emit_window(slot);
        }
    }

    /// Cumulative availability of ring `r` over all health-scanned slots
    /// (1.0 when the ring was never degraded or never scanned).
    pub fn ring_availability_total(&self, r: usize) -> f64 {
        let total = self.slots.get();
        let degraded = self.ring_degraded_slots.get(r).map_or(0, Counter::get);
        if total == 0 {
            return 1.0;
        }
        1.0 - degraded as f64 / total as f64
    }

    // ccr-verify: event_path -- first-contact growth: runs once per new ring, not per slot
    fn grow_rings(&mut self, n: usize) {
        while self.ring_degraded_slots.len() < n {
            let r = self.ring_degraded_slots.len();
            self.ring_degraded_slots.push(Counter::default());
            self.ring_availability.push(Series::new(format!("ring{r}")));
            self.window_degraded.push(0);
        }
    }

    fn emit_window(&mut self, slot: u64) {
        let len = self.window_len as f64;
        for (r, deg) in self.window_degraded.iter_mut().enumerate() {
            let avail = 1.0 - *deg as f64 / len;
            self.ring_availability[r].push(slot as f64, avail);
            *deg = 0;
        }
        self.window_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2e_accounting() {
        let mut m = FabricMetrics::new();
        m.record_e2e(TimeDelta::from_us(10), true);
        m.record_e2e(TimeDelta::from_us(20), true);
        m.record_e2e(TimeDelta::from_us(90), false);
        assert_eq!(m.e2e_delivered.get(), 3);
        assert_eq!(m.e2e_met.get(), 2);
        assert_eq!(m.e2e_missed.get(), 1);
        assert!((m.e2e_miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.e2e_latency.count(), 3);
    }

    #[test]
    fn segment_histograms_grow_on_demand() {
        let mut m = FabricMetrics::new();
        m.record_segment(2, TimeDelta::from_us(5));
        assert_eq!(m.segment_latency.len(), 3);
        assert_eq!(m.segment_latency[2].count(), 1);
        assert_eq!(m.segment_latency[0].count(), 0);
    }

    #[test]
    fn availability_tracks_degraded_slots() {
        let mut m = FabricMetrics::new();
        assert_eq!(m.availability(), 1.0, "no slots yet counts as available");
        for _ in 0..8 {
            m.slots.incr();
        }
        m.degraded_slots.incr();
        m.degraded_slots.incr();
        assert!((m.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ring_availability_series_windows() {
        let mut m = FabricMetrics::new();
        // Ring 1 degraded for the first quarter of a window, ring 0 clean.
        for slot in 0..RING_AVAILABILITY_WINDOW {
            m.slots.incr();
            let ring1_down = slot < RING_AVAILABILITY_WINDOW / 4;
            m.record_ring_health(slot, &[false, ring1_down]);
        }
        assert_eq!(m.ring_availability.len(), 2);
        assert_eq!(m.ring_availability[0].points(), &[(511.0, 1.0)]);
        assert_eq!(m.ring_availability[1].points(), &[(511.0, 0.75)]);
        assert_eq!(m.ring_degraded_slots[1].get(), RING_AVAILABILITY_WINDOW / 4);
        assert!((m.ring_availability_total(1) - 0.75).abs() < 1e-12);
        assert_eq!(m.ring_availability_total(0), 1.0);

        // A partial window only lands once flushed.
        m.slots.incr();
        m.record_ring_health(RING_AVAILABILITY_WINDOW, &[true, false]);
        assert_eq!(m.ring_availability[0].len(), 1);
        m.flush_ring_health(RING_AVAILABILITY_WINDOW);
        assert_eq!(m.ring_availability[0].len(), 2);
        assert_eq!(
            m.ring_availability[0].points()[1],
            (RING_AVAILABILITY_WINDOW as f64, 0.0)
        );
        // Flushing with nothing accumulated is a no-op.
        m.flush_ring_health(RING_AVAILABILITY_WINDOW);
        assert_eq!(m.ring_availability[0].len(), 2);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = FabricMetrics::new();
        let mut b = FabricMetrics::new();
        assert_eq!(a, b);
        a.record_e2e(TimeDelta::from_us(10), true);
        assert_ne!(a, b);
        b.record_e2e(TimeDelta::from_us(10), true);
        assert_eq!(a, b);
    }
}
