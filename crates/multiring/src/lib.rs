//! Multi-ring CCR-EDF fabric.
//!
//! The source paper analyses a *single* fibre-ribbon pipeline ring. This
//! crate scales the model out: several [`ccr_edf::network::RingNetwork`]
//! instances are composed into a **fabric** by *bridge* stations that sit
//! on two rings at once, forwarding traffic between them through bounded,
//! EDF-ordered queues. The pieces:
//!
//! - [`topology`] — rings, bridges, and the validated static routing table
//!   (shortest bridge path, deterministic tie-breaks). Cyclic fabrics are
//!   rejected unless the builder opts in via
//!   [`topology::FabricTopologyBuilder::allow_cycles_with`]; the default
//!   opt-in, [`topology::CycleBound::Calculus`], arms the engine's
//!   network-calculus certifier instead of trusting cycles blindly.
//! - [`calculus`] — the end-to-end certifier over [`ccr_calculus`]: rings
//!   become rate-latency servers, connections token buckets, and every
//!   admission re-solves the cyclic fixed point of Amari & Mifdaoui's
//!   multi-ring analysis, refusing candidates that would void any flow's
//!   certified delay bound.
//! - [`bridge`] — per-egress-ring EDF forwarding queues with explicit
//!   overflow policy, and the proportional per-hop deadline decomposition.
//! - [`admission`] — the pure end-to-end planner: floors from each ring's
//!   analytic worst-case latency, slack split proportionally to slot time,
//!   one per-ring sub-connection per segment.
//! - [`engine`] — the lockstep fabric stepper: parallel per-ring slot
//!   execution (deterministic for any thread count), serial bridge
//!   exchange between slots, end-to-end admission with rollback.
//! - [`fault`] — fabric-level fault scripting: ring-local fault events
//!   aimed at specific rings plus bridge kills, replayed bit-for-bit; the
//!   engine reroutes or revokes affected end-to-end connections.
//! - [`metrics`] — end-to-end latency/deadline accounting, per-segment
//!   breakdowns, bridge occupancy, and fault/recovery counters, comparable
//!   with `==` across runs.
//!
//! ```
//! use ccr_multiring::prelude::*;
//!
//! let topo = FabricTopology::chain(2, 6);
//! let cfg = FabricConfig::uniform(topo, 2048, 42).unwrap();
//! let mut fabric = Fabric::new(cfg).unwrap();
//! fabric
//!     .open_connection(
//!         FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 3))
//!             .period(ccr_sim::TimeDelta::from_ms(1)),
//!     )
//!     .unwrap();
//! fabric.run_slots(2_000);
//! assert!(fabric.metrics().e2e_delivered.get() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bridge;
pub mod calculus;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod topology;

pub use admission::{FabricAdmissionError, FabricConnectionId, FabricConnectionSpec};
pub use calculus::{CalculusAdmission, CalculusRejection, CalculusReport};
pub use engine::{
    ConnectionEvent, EgressDelivery, Fabric, FabricBuildError, FabricConfig, InjectError,
    RevokeReason,
};
pub use fault::{BridgeEventKind, FabricFaultEvent, FabricFaultKind, FabricFaultScript};
pub use metrics::FabricMetrics;
pub use topology::{Bridge, CycleBound, FabricTopology, GlobalNodeId, RingId, TopologyError};

/// Convenient glob import.
pub mod prelude {
    pub use crate::admission::{
        FabricAdmissionError, FabricConnectionId, FabricConnectionSpec, SegmentEnv,
    };
    pub use crate::bridge::{BridgeConfig, DropPolicy};
    pub use crate::calculus::{CalculusAdmission, CalculusRejection, CalculusReport};
    pub use crate::engine::{
        ConnectionEvent, EgressDelivery, Fabric, FabricBuildError, FabricConfig, InjectError,
        RevokeReason,
    };
    pub use crate::fault::{BridgeEventKind, FabricFaultEvent, FabricFaultKind, FabricFaultScript};
    pub use crate::metrics::{FabricMetrics, RING_AVAILABILITY_WINDOW};
    pub use crate::topology::{
        Bridge, CycleBound, FabricTopology, GlobalNodeId, RingId, TopologyError,
    };
}
