//! End-to-end EDF admission: decompose a fabric connection into per-ring
//! sub-connections and admit each against its ring's schedulability test.
//!
//! The planner here is **pure** — it turns a [`FabricConnectionSpec`] plus
//! the per-ring timing environment into one [`ccr_edf::ConnectionSpec`]
//! per route segment, or explains why no decomposition exists. The
//! stateful part (actually running each ring's utilisation/demand-bound
//! test, reserving bridge buffer space, rolling back on mid-route
//! rejection) lives in [`crate::engine::Fabric::open_connection`], which
//! drives this planner.
//!
//! ## Decomposition rule
//!
//! Each segment first receives its *floor*: the ring's analytic worst-case
//! latency for one slot ([`ccr_edf::analysis::AnalyticModel::worst_latency`])
//! plus `(e − 1)` further slot times for a multi-slot message. If the
//! floors already exceed the end-to-end deadline, no split can work and
//! the connection is rejected as [`FabricAdmissionError::DeadlineTooTight`]
//! *before* touching any ring. The remaining slack is then divided
//! proportionally to each ring's slot time (per
//! [`crate::bridge::decompose_deadline`], exact to the picosecond), so
//! slower rings get proportionally looser sub-deadlines. Every segment's
//! relative deadline is finally clamped to the period, as required by the
//! per-ring constrained-deadline model (`D ≤ P`).
//!
//! Admitting every sub-connection under its ring's test composes into the
//! end-to-end guarantee because the budgets sum to (at most) the e2e
//! deadline and a bridge hands a message to the next ring no later than
//! the end of its segment budget. This summation argument is only sound on
//! acyclic fabrics — cyclic ring graphs (see
//! [`crate::topology::FabricTopology::is_cyclic`]) need network-calculus
//! machinery beyond this model, which is why the topology builder rejects
//! them by default.

use crate::bridge::decompose_deadline;
use crate::topology::{FabricTopology, GlobalNodeId, Segment, TopologyError};
use ccr_edf::admission::AdmissionError;
use ccr_edf::connection::ConnectionSpec;
use ccr_sim::TimeDelta;

/// Identity of an admitted end-to-end fabric connection.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FabricConnectionId(pub u64);

/// The parameters of a requested end-to-end connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricConnectionSpec {
    /// Originating node.
    pub src: GlobalNodeId,
    /// Final destination node (unicast — the fabric routes point-to-point).
    pub dst: GlobalNodeId,
    /// Message period.
    pub period: TimeDelta,
    /// Message size in slots.
    pub size_slots: u32,
    /// End-to-end relative deadline (release at the source → delivery at
    /// the destination).
    pub e2e_deadline: TimeDelta,
    /// Release phase of the first message.
    pub phase: TimeDelta,
}

impl FabricConnectionSpec {
    /// Start a spec with deadline = period and 1-slot messages.
    pub fn unicast(src: GlobalNodeId, dst: GlobalNodeId) -> Self {
        FabricConnectionSpec {
            src,
            dst,
            period: TimeDelta::from_ms(1),
            size_slots: 1,
            e2e_deadline: TimeDelta::from_ms(1),
            phase: TimeDelta::ZERO,
        }
    }

    /// Set the period; also sets the e2e deadline when it still tracks the
    /// old period (the common `D = P` case).
    pub fn period(mut self, p: TimeDelta) -> Self {
        if self.e2e_deadline == self.period {
            self.e2e_deadline = p;
        }
        self.period = p;
        self
    }

    /// Set the message size in slots.
    pub fn size_slots(mut self, e: u32) -> Self {
        self.size_slots = e;
        self
    }

    /// Set the end-to-end deadline.
    pub fn e2e_deadline(mut self, d: TimeDelta) -> Self {
        self.e2e_deadline = d;
        self
    }

    /// Set the release phase.
    pub fn phase(mut self, ph: TimeDelta) -> Self {
        self.phase = ph;
        self
    }
}

/// Per-ring timing environment the planner needs.
#[derive(Debug, Clone, Copy)]
pub struct SegmentEnv {
    /// The ring's slot time.
    pub slot: TimeDelta,
    /// The ring's analytic worst-case latency for a single-slot message.
    pub worst_latency: TimeDelta,
    /// The ring's worst hand-over gap between consecutive slots
    /// ([`ccr_edf::analysis::AnalyticModel::max_handover`]): together with
    /// `slot` it fixes the guaranteed long-run service rate
    /// `1 / (slot + max_handover)` the network-calculus layer builds its
    /// per-ring service curves from.
    pub max_handover: TimeDelta,
}

impl SegmentEnv {
    /// Minimum budget a segment needs to carry an `e`-slot message.
    pub fn floor(&self, size_slots: u32) -> TimeDelta {
        self.worst_latency + self.slot.times(size_slots.saturating_sub(1) as u64)
    }
}

/// One planned hop of an end-to-end connection.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSegment {
    /// The route segment (ring, entry, exit, following bridge).
    pub segment: Segment,
    /// The per-ring sub-connection to admit on that ring.
    pub spec: ConnectionSpec,
    /// The segment's deadline budget (before the period clamp).
    pub budget: TimeDelta,
}

/// A complete admission plan for one fabric connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionPlan {
    /// The original request.
    pub spec: FabricConnectionSpec,
    /// One entry per route segment, source ring first.
    pub segments: Vec<PlannedSegment>,
}

impl ConnectionPlan {
    /// Bridges crossed by this plan (indices into the fabric's bridge
    /// list), in crossing order.
    pub fn bridges(&self) -> impl Iterator<Item = usize> + '_ {
        self.segments.iter().filter_map(|s| s.segment.bridge)
    }

    /// Directed bridge-queue indices this plan crosses, in route order —
    /// the `crossings` argument of
    /// [`crate::calculus::CalculusAdmission::admit_batch`], in the
    /// engine's queue layout (see [`FabricTopology::queue_index`]).
    pub fn queue_crossings(&self, topo: &FabricTopology) -> Vec<usize> {
        self.segments
            .iter()
            .filter_map(|s| {
                s.segment
                    .bridge
                    .map(|b| topo.queue_index(b, s.segment.ring))
            })
            .collect()
    }
}

/// Why an end-to-end connection was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricAdmissionError {
    /// The path could not be formed at all.
    Topology(TopologyError),
    /// Spec invalid on its face (zero period/size, deadline > period, …).
    InvalidSpec(String),
    /// The per-segment latency floors alone exceed the e2e deadline — no
    /// decomposition can meet it.
    DeadlineTooTight {
        /// Sum of the per-segment floors.
        needed: TimeDelta,
        /// The requested e2e deadline.
        available: TimeDelta,
    },
    /// Ring `segment` (index into the plan) refused its sub-connection.
    SegmentRejected {
        /// Index of the refusing segment in the plan.
        segment: usize,
        /// The ring-level admission error.
        error: AdmissionError,
    },
    /// The bridge buffer on hop `bridge` has no headroom for another
    /// resident connection.
    BridgeOverload {
        /// Index into the fabric's bridge list.
        bridge: usize,
    },
    /// The network-calculus certifier refused the set: with the candidate
    /// added, some flow no longer has a finite certified end-to-end bound
    /// within its deadline (see [`crate::calculus::CalculusAdmission`]).
    Calculus(crate::calculus::CalculusRejection),
}

impl std::fmt::Display for FabricAdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricAdmissionError::Topology(e) => write!(f, "routing failed: {e}"),
            FabricAdmissionError::InvalidSpec(s) => write!(f, "invalid spec: {s}"),
            FabricAdmissionError::DeadlineTooTight { needed, available } => write!(
                f,
                "e2e deadline too tight: segment floors need {needed}, only {available} available"
            ),
            FabricAdmissionError::SegmentRejected { segment, error } => {
                write!(f, "segment #{segment} rejected: {error}")
            }
            FabricAdmissionError::BridgeOverload { bridge } => {
                write!(f, "bridge #{bridge} buffer fully reserved")
            }
            FabricAdmissionError::Calculus(e) => {
                write!(f, "calculus certification refused: {e}")
            }
        }
    }
}

impl std::error::Error for FabricAdmissionError {}

impl From<TopologyError> for FabricAdmissionError {
    fn from(e: TopologyError) -> Self {
        FabricAdmissionError::Topology(e)
    }
}

/// Decompose `spec` into per-ring sub-connections.
///
/// `envs` must hold one [`SegmentEnv`] per ring of the fabric, indexed by
/// ring id. Pure: consults no network state beyond the timing constants.
pub fn plan_connection(
    topo: &FabricTopology,
    spec: &FabricConnectionSpec,
    envs: &[SegmentEnv],
) -> Result<ConnectionPlan, FabricAdmissionError> {
    validate_spec(spec)?;
    let segments = topo.segments(spec.src, spec.dst)?;
    plan_over_segments(spec, segments, envs)
}

/// Like [`plan_connection`], but routed around the bridges flagged in
/// `dead` — the degraded-mode planner the fabric uses to re-admit
/// connections after a bridge failure. Returns
/// [`FabricAdmissionError::Topology`] with
/// [`TopologyError::NoRoute`] when the surviving bridges offer no
/// alternate path.
pub fn plan_connection_avoiding(
    topo: &FabricTopology,
    spec: &FabricConnectionSpec,
    envs: &[SegmentEnv],
    dead: &[bool],
) -> Result<ConnectionPlan, FabricAdmissionError> {
    validate_spec(spec)?;
    let segments = topo.segments_avoiding(spec.src, spec.dst, dead)?;
    plan_over_segments(spec, segments, envs)
}

fn validate_spec(spec: &FabricConnectionSpec) -> Result<(), FabricAdmissionError> {
    if spec.size_slots == 0 {
        return Err(FabricAdmissionError::InvalidSpec(
            "zero-size messages".into(),
        ));
    }
    if spec.period.is_zero() {
        return Err(FabricAdmissionError::InvalidSpec("zero period".into()));
    }
    if spec.e2e_deadline.is_zero() {
        return Err(FabricAdmissionError::InvalidSpec(
            "zero e2e deadline".into(),
        ));
    }
    if spec.e2e_deadline > spec.period {
        return Err(FabricAdmissionError::InvalidSpec(format!(
            "e2e deadline {} exceeds period {} (the per-ring model requires D \u{2264} P)",
            spec.e2e_deadline, spec.period
        )));
    }
    Ok(())
}

fn plan_over_segments(
    spec: &FabricConnectionSpec,
    segments: Vec<Segment>,
    envs: &[SegmentEnv],
) -> Result<ConnectionPlan, FabricAdmissionError> {
    // Floors: what each segment needs no matter how generous the split.
    let floors: Vec<TimeDelta> = segments
        .iter()
        .map(|s| envs[s.ring.0 as usize].floor(spec.size_slots))
        .collect();
    let need: u64 = floors.iter().map(|f| f.as_ps()).sum();
    let have = spec.e2e_deadline.as_ps();
    if need > have {
        return Err(FabricAdmissionError::DeadlineTooTight {
            needed: TimeDelta::from_ps(need),
            available: spec.e2e_deadline,
        });
    }
    // Slack is divided proportionally to slot time; exact to the ps.
    let weights: Vec<u64> = segments
        .iter()
        .map(|s| envs[s.ring.0 as usize].slot.as_ps())
        .collect();
    let slack = decompose_deadline(TimeDelta::from_ps(have - need), &weights)
        .expect("segments exist with non-zero slot times");
    let planned = segments
        .iter()
        .zip(floors.iter().zip(slack.iter()))
        .enumerate()
        .map(|(i, (seg, (&floor, &extra)))| {
            let budget = floor + extra;
            let rel = budget.min(spec.period);
            let mut sub = ConnectionSpec::unicast(seg.from, seg.to)
                .period(spec.period)
                .size_slots(spec.size_slots)
                .deadline(rel);
            if i == 0 {
                sub = sub.phase(spec.phase);
            }
            PlannedSegment {
                segment: *seg,
                spec: sub,
                budget,
            }
        })
        .collect();
    Ok(ConnectionPlan {
        spec: spec.clone(),
        segments: planned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::RingId;
    use ccr_phys::NodeId;

    fn envs3() -> Vec<SegmentEnv> {
        // ring 1 is twice as slow as rings 0 and 2
        vec![
            SegmentEnv {
                slot: TimeDelta::from_us(2),
                worst_latency: TimeDelta::from_us(10),
                max_handover: TimeDelta::from_us(6),
            },
            SegmentEnv {
                slot: TimeDelta::from_us(4),
                worst_latency: TimeDelta::from_us(20),
                max_handover: TimeDelta::from_us(12),
            },
            SegmentEnv {
                slot: TimeDelta::from_us(2),
                worst_latency: TimeDelta::from_us(10),
                max_handover: TimeDelta::from_us(6),
            },
        ]
    }

    #[test]
    fn budgets_cover_floors_and_sum_to_e2e() {
        let topo = FabricTopology::chain(3, 4);
        let spec = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 2))
            .period(TimeDelta::from_us(500))
            .e2e_deadline(TimeDelta::from_us(100));
        let envs = envs3();
        let plan = plan_connection(&topo, &spec, &envs).unwrap();
        assert_eq!(plan.segments.len(), 3);
        let total: u64 = plan.segments.iter().map(|p| p.budget.as_ps()).sum();
        assert_eq!(total, spec.e2e_deadline.as_ps(), "budgets sum exactly");
        for (p, env) in plan.segments.iter().zip([&envs[0], &envs[1], &envs[2]]) {
            assert!(p.budget >= env.floor(1), "budget covers the floor");
            assert_eq!(p.spec.rel_deadline, Some(p.budget));
            assert_eq!(p.spec.period, spec.period);
        }
        // slower middle ring gets the larger share of the slack
        assert!(plan.segments[1].budget > plan.segments[0].budget);
        // sub-connection endpoints follow the bridge ports
        assert_eq!(plan.segments[0].spec.src, NodeId(1));
        assert_eq!(plan.segments[2].spec.src, NodeId(0));
        assert_eq!(plan.bridges().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn too_tight_deadline_rejected_before_any_ring() {
        let topo = FabricTopology::chain(3, 4);
        let spec = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 2))
            .period(TimeDelta::from_us(500))
            .e2e_deadline(TimeDelta::from_us(30)); // floors alone need 40 µs
        let err = plan_connection(&topo, &spec, &envs3()).unwrap_err();
        assert_eq!(
            err,
            FabricAdmissionError::DeadlineTooTight {
                needed: TimeDelta::from_us(40),
                available: TimeDelta::from_us(30),
            }
        );
    }

    #[test]
    fn multi_slot_messages_raise_the_floor() {
        let topo = FabricTopology::chain(2, 4);
        let envs = vec![envs3()[0], envs3()[2]];
        let one = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 2))
            .period(TimeDelta::from_us(500))
            .e2e_deadline(TimeDelta::from_us(22));
        assert!(plan_connection(&topo, &one, &envs).is_ok(), "1-slot fits");
        let big = one.clone().size_slots(4); // floor grows by 3 slots per segment
        assert!(matches!(
            plan_connection(&topo, &big, &envs),
            Err(FabricAdmissionError::DeadlineTooTight { .. })
        ));
    }

    #[test]
    fn invalid_specs_rejected() {
        let topo = FabricTopology::chain(2, 4);
        let envs = vec![envs3()[0], envs3()[2]];
        let base = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(1, 2))
            .period(TimeDelta::from_us(100));
        assert!(matches!(
            plan_connection(&topo, &base.clone().size_slots(0), &envs),
            Err(FabricAdmissionError::InvalidSpec(_))
        ));
        assert!(matches!(
            plan_connection(
                &topo,
                &base.clone().e2e_deadline(TimeDelta::from_us(200)),
                &envs
            ),
            Err(FabricAdmissionError::InvalidSpec(_))
        ));
        // routing failures surface as Topology errors
        let disc = FabricConnectionSpec::unicast(GlobalNodeId::new(0, 1), GlobalNodeId::new(0, 1));
        assert!(matches!(
            plan_connection(&topo, &disc, &envs),
            Err(FabricAdmissionError::Topology(
                TopologyError::SelfConnection(_)
            ))
        ));
        let _ = RingId(0);
    }

    #[test]
    fn same_ring_connection_gets_full_deadline() {
        let topo = FabricTopology::chain(2, 4);
        let envs = vec![envs3()[0], envs3()[2]];
        let spec = FabricConnectionSpec::unicast(GlobalNodeId::new(1, 0), GlobalNodeId::new(1, 3))
            .period(TimeDelta::from_us(100))
            .e2e_deadline(TimeDelta::from_us(60));
        let plan = plan_connection(&topo, &spec, &envs).unwrap();
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].budget, TimeDelta::from_us(60));
        assert_eq!(
            plan.segments[0].spec.rel_deadline,
            Some(TimeDelta::from_us(60))
        );
    }
}
