//! Fabric-level fault scripting.
//!
//! A [`FabricFaultScript`] extends the single-ring
//! [`ccr_edf::fault::FaultScript`] across the fabric: every ring-local
//! fault kind can be aimed at a specific ring, and a fabric-only kind —
//! [`FabricFaultKind::KillBridge`] — takes down a bridge station. Because
//! the engine steps every ring in lockstep (fabric slot *k* is ring slot
//! *k* on every ring), ring-local events distribute losslessly into the
//! per-ring scripts at build time; only bridge kills need a fabric-level
//! cursor, applied in the serial portion of the step so the outcome is
//! bit-identical for any ring-phase thread count.

use crate::topology::RingId;
use ccr_edf::fault::{FaultKind, FaultScript};

/// One discrete fabric-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFaultKind {
    /// A ring-local fault (token loss, node failure, control-channel bit
    /// error) on one specific ring.
    Ring {
        /// The ring the fault lands on.
        ring: RingId,
        /// What happens there.
        fault: FaultKind,
    },
    /// The bridge station dies: both of its forwarding queues are flushed
    /// (queued messages lost), its port nodes are failed on their rings,
    /// and every end-to-end connection routed across it is re-admitted
    /// over an alternate bridge path when one exists — revoked otherwise.
    KillBridge {
        /// Index into the topology's bridge list.
        bridge: usize,
    },
    /// The bridge station comes back: its dead flag clears, its port nodes
    /// are repaired on their rings (unless another dead bridge still shares
    /// the port), the health scan sees the rings whole again, and the
    /// engine deterministically reclaims connections that were revoked or
    /// detoured while it was down.
    RepairBridge {
        /// Index into the topology's bridge list.
        bridge: usize,
    },
}

/// What a scheduled bridge event does, as reported by
/// [`FabricFaultScript::bridge_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeEventKind {
    /// Take the bridge down.
    Kill,
    /// Bring the bridge back.
    Repair,
}

/// A fabric fault scheduled for a specific fabric slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricFaultEvent {
    /// Fabric slot index at which the fault fires.
    pub slot: u64,
    /// What happens.
    pub kind: FabricFaultKind,
}

/// A deterministic, slot-indexed schedule of fabric fault events.
///
/// Like the ring-level script, events are kept sorted by slot and the same
/// script always replays bit-for-bit: the differential tests assert that
/// one seed + one script yields `==` metrics for any thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FabricFaultScript {
    events: Vec<FabricFaultEvent>,
}

impl FabricFaultScript {
    /// An empty script (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: schedule a ring-local `fault` on `ring` at `slot`.
    pub fn ring_at(mut self, slot: u64, ring: RingId, fault: FaultKind) -> Self {
        self.push(slot, FabricFaultKind::Ring { ring, fault });
        self
    }

    /// Builder: schedule a bridge kill at `slot`.
    pub fn kill_bridge_at(mut self, slot: u64, bridge: usize) -> Self {
        self.push(slot, FabricFaultKind::KillBridge { bridge });
        self
    }

    /// Builder: schedule a bridge repair at `slot`.
    pub fn repair_bridge_at(mut self, slot: u64, bridge: usize) -> Self {
        self.push(slot, FabricFaultKind::RepairBridge { bridge });
        self
    }

    /// Schedule `kind` at `slot` (non-builder form). Keeps events sorted by
    /// slot; events sharing a slot fire in insertion order.
    pub fn push(&mut self, slot: u64, kind: FabricFaultKind) {
        let at = self.events.partition_point(|e| e.slot <= slot);
        self.events.insert(at, FabricFaultEvent { slot, kind });
    }

    /// The scheduled events, sorted by slot.
    pub fn events(&self) -> &[FabricFaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extract the ring-local sub-script for `ring` (fabric slot indices
    /// carry over unchanged — the lockstep engine keeps every ring's slot
    /// counter equal to the fabric's).
    pub fn ring_script(&self, ring: RingId) -> FaultScript {
        let mut s = FaultScript::new();
        for e in &self.events {
            if let FabricFaultKind::Ring { ring: r, fault } = e.kind {
                if r == ring {
                    s.push(e.slot, fault);
                }
            }
        }
        s
    }

    /// The scheduled bridge kills as `(slot, bridge index)`, sorted by
    /// slot.
    pub fn bridge_kills(&self) -> Vec<(u64, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FabricFaultKind::KillBridge { bridge } => Some((e.slot, bridge)),
                _ => None,
            })
            .collect()
    }

    /// Every scheduled bridge event (kills *and* repairs) as
    /// `(slot, bridge index, kind)`, sorted by slot with same-slot events in
    /// insertion order — the cursor the engine drains in its serial phase.
    pub fn bridge_events(&self) -> Vec<(u64, usize, BridgeEventKind)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FabricFaultKind::KillBridge { bridge } => {
                    Some((e.slot, bridge, BridgeEventKind::Kill))
                }
                FabricFaultKind::RepairBridge { bridge } => {
                    Some((e.slot, bridge, BridgeEventKind::Repair))
                }
                FabricFaultKind::Ring { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_phys::NodeId;

    #[test]
    fn script_sorts_and_splits_per_ring() {
        let s = FabricFaultScript::new()
            .ring_at(20, RingId(1), FaultKind::LoseToken)
            .kill_bridge_at(5, 0)
            .ring_at(10, RingId(0), FaultKind::FailNode(NodeId(2)))
            .ring_at(10, RingId(1), FaultKind::CorruptDistribution);
        let slots: Vec<u64> = s.events().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![5, 10, 10, 20]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());

        let r0 = s.ring_script(RingId(0));
        assert_eq!(r0.len(), 1);
        assert_eq!(r0.events()[0].kind, FaultKind::FailNode(NodeId(2)));
        let r1 = s.ring_script(RingId(1));
        assert_eq!(r1.len(), 2);
        assert_eq!(r1.events()[0].slot, 10);
        assert_eq!(s.ring_script(RingId(7)).len(), 0);

        assert_eq!(s.bridge_kills(), vec![(5, 0)]);
    }

    #[test]
    fn bridge_events_interleave_kills_and_repairs() {
        let s = FabricFaultScript::new()
            .kill_bridge_at(5, 0)
            .repair_bridge_at(50, 0)
            .kill_bridge_at(80, 1);
        assert_eq!(
            s.bridge_events(),
            vec![
                (5, 0, BridgeEventKind::Kill),
                (50, 0, BridgeEventKind::Repair),
                (80, 1, BridgeEventKind::Kill),
            ]
        );
        // The kill-only view ignores repairs.
        assert_eq!(s.bridge_kills(), vec![(5, 0), (80, 1)]);
    }

    #[test]
    fn empty_script_distributes_to_nothing() {
        let s = FabricFaultScript::new();
        assert!(s.is_empty());
        assert!(s.ring_script(RingId(0)).is_empty());
        assert!(s.bridge_kills().is_empty());
    }
}
