//! Network-calculus admission for the fabric: certified end-to-end delay
//! bounds, including on **cyclic** ring graphs the per-hop budget
//! decomposition cannot cover.
//!
//! [`crate::admission`]'s summation argument — per-segment budgets that
//! add up to the e2e deadline — is only sound on acyclic fabrics, which is
//! why [`crate::topology`] historically rejected cycles outright. This
//! module closes that gap with the min-plus machinery of
//! [`ccr_calculus`]. The server set the solver prices has two kinds of
//! node:
//!
//! * **rings** — rate-latency servers `β(t) = R·(t − T)⁺` with
//!   `R = 1/(slot + h_max)` slots per picosecond (the paper's guaranteed
//!   long-run slot rate, Eq. 4 environment) and `T = worst_latency`.
//!   Rings schedule their slots EDF (the paper's headline), so every ring
//!   hop carries the segment's relative deadline as its *class* and the
//!   solver prices it with per-deadline-class left-over service, never
//!   looser than blind multiplexing.
//! * **bridge queues** — one server per directed bridge queue, replacing
//!   the old constant residents-based crossing delay with a flow-aware
//!   aggregation curve. The engine's forwarding phase drains up to
//!   `forward_per_slot` queued messages per fabric slot unconditionally,
//!   and a message occupies at least one slot, so
//!   `β(t) = (forward_per_slot / per_slot) · (t − per_slot)⁺` (in the
//!   egress ring's slot time) is a guaranteed service floor. Queues drain
//!   FIFO, not EDF, so queue hops are priced blindly (infinite class).
//!
//! Each admitted connection contributes a token-bucket arrival
//! `α(t) = e + (e/P)·t` slots along its interleaved ring/queue path.
//!
//! Admission is **incremental**: the [`ccr_calculus::IncrementalSolver`]
//! keeps the converged fixed point and [`CalculusAdmission::admit_batch`]
//! warm-starts it, re-iterating only the dirty set of servers the batch
//! touches; one fixed-point pass is amortised over the whole batch, with
//! all-or-nothing rollback. Verdicts are bit-for-bit deterministic and
//! thread-count-invariant: flows enter in admission-id order and every
//! operator in the kernel is an exact closed form. The forced full-solve
//! reference ([`CalculusAdmission::set_force_full`]) runs the same
//! arithmetic with everything dirty, which is what the differential suite
//! leans on.

use crate::admission::{ConnectionPlan, FabricConnectionId, SegmentEnv};
use crate::bridge::BridgeConfig;
use ccr_calculus::{ArrivalCurve, FlowSpec, IncrementalSolver, ServiceCurve, SolveError};
use ccr_sim::TimeDelta;
use std::collections::BTreeMap;

/// Why the calculus certifier refused a candidate batch.
#[derive(Debug, Clone, PartialEq)]
pub enum CalculusRejection {
    /// Long-run rates alone overload ring `ring` — no bound exists. (Ring
    /// indices ≥ the ring count name bridge-queue servers.)
    Utilisation {
        /// Server index (rings first, then bridge queues).
        ring: usize,
        /// Aggregate demand (slots per picosecond).
        demand: f64,
        /// Guaranteed service rate (slots per picosecond).
        capacity: f64,
    },
    /// The cyclic fixed point diverged: output burstiness crossed the cap
    /// or was still moving after the iteration ceiling.
    Diverged {
        /// Fixed-point rounds executed before giving up.
        iterations: usize,
        /// Largest hop-arrival burst seen (slots).
        worst_burst: f64,
    },
    /// A flow's certified bound exceeds its e2e deadline. `flow` is
    /// `None` for a candidate of the rejected batch, `Some(fid)` when
    /// admitting the batch would break an *existing* flow's certificate.
    BoundExceeded {
        /// The flow whose certificate fails (`None` = a batch candidate).
        flow: Option<FabricConnectionId>,
        /// The certified end-to-end delay bound.
        bound: TimeDelta,
        /// That flow's end-to-end deadline.
        deadline: TimeDelta,
    },
    /// A candidate could not be translated into a flow model (degenerate
    /// period or size, or a crossing index outside the queue set).
    Malformed,
}

impl std::fmt::Display for CalculusRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalculusRejection::Utilisation {
                ring,
                demand,
                capacity,
            } => write!(
                f,
                "ring {ring} over-utilised: demand {demand:.3e} \u{2265} capacity {capacity:.3e} slots/ps"
            ),
            CalculusRejection::Diverged {
                iterations,
                worst_burst,
            } => write!(
                f,
                "fixed point diverged after {iterations} iteration(s) (worst burst {worst_burst:.3e} slots)"
            ),
            CalculusRejection::BoundExceeded {
                flow,
                bound,
                deadline,
            } => match flow {
                Some(fid) => write!(
                    f,
                    "existing connection {fid:?} would lose its certificate: bound {bound} > deadline {deadline}"
                ),
                None => write!(f, "candidate bound {bound} exceeds its deadline {deadline}"),
            },
            CalculusRejection::Malformed => write!(f, "candidate has a degenerate flow model"),
        }
    }
}

impl std::error::Error for CalculusRejection {}

/// How an accepted certification ran — surfaced so the engine can count
/// warm-started versus full re-solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalculusReport {
    /// Fixed-point sweeps the solver executed.
    pub iterations: usize,
    /// `true` when the pass ran as a full re-solve (first fill, forced
    /// reference mode, or recovery from a tainted warm start).
    pub full: bool,
    /// Flows whose bounds were re-derived by this pass (the dirty set).
    pub dirty_flows: usize,
}

/// Stateful end-to-end certifier holding the warm-started incremental
/// solver. See the module docs for the server model.
#[derive(Debug, Clone)]
pub struct CalculusAdmission {
    solver: IncrementalSolver,
    /// Ring count; bridge-queue server `q` lives at index `n_rings + q`.
    n_rings: usize,
    /// Queue count (servers `n_rings..n_rings + n_queues`).
    n_queues: usize,
    /// End-to-end deadline (picoseconds) per admitted flow.
    deadlines: BTreeMap<u64, f64>,
}

impl CalculusAdmission {
    /// Build the certifier from the per-ring timing environments and the
    /// bridge-queue topology (`queue_egress[q]` = the ring queue `q`
    /// drains into, as computed by the engine). Returns `None` when an
    /// environment is degenerate (zero `slot + h_max`), which validated
    /// ring configurations never produce.
    pub fn new(envs: &[SegmentEnv], bridge: &BridgeConfig, queue_egress: &[usize]) -> Option<Self> {
        let mut per_slot_ps = Vec::with_capacity(envs.len());
        let mut services = Vec::with_capacity(envs.len() + queue_egress.len());
        for env in envs {
            let per_slot = (env.slot + env.max_handover).as_ps() as f64;
            let latency = env.worst_latency.as_ps() as f64;
            if per_slot <= 0.0 {
                return None;
            }
            services.push(ServiceCurve::rate_latency(1.0 / per_slot, latency).ok()?);
            per_slot_ps.push(per_slot);
        }
        let fps = f64::from(bridge.forward_per_slot.max(1));
        for &egress in queue_egress {
            let per_slot = *per_slot_ps.get(egress)?;
            services.push(ServiceCurve::rate_latency(fps / per_slot, per_slot).ok()?);
        }
        Some(CalculusAdmission {
            solver: IncrementalSolver::new(&services),
            n_rings: envs.len(),
            n_queues: queue_egress.len(),
            deadlines: BTreeMap::new(),
        })
    }

    /// Number of flows currently certified.
    pub fn certified_flows(&self) -> usize {
        self.solver.len()
    }

    /// The certified e2e delay bound of an admitted flow — always derived
    /// from the solver's current fixed point, so it reflects the present
    /// admitted set.
    pub fn bound(&self, fid: FabricConnectionId) -> Option<TimeDelta> {
        self.solver
            .bounds(fid.0)
            .map(|b| TimeDelta::from_ps_f64_saturating(b.e2e_delay.ceil()))
    }

    /// Force every certification to run as a full re-solve — the bit-exact
    /// reference mode the differential suite compares warm starts against.
    pub fn set_force_full(&mut self, on: bool) {
        self.solver.set_force_full(on);
    }

    /// Certify and install a batch of candidates atomically, one warm
    /// fixed-point pass for the whole batch. Either every candidate is
    /// admitted (and every re-derived bound — old and new flows alike —
    /// stays within its deadline), or the solver state is exactly as
    /// before the call. `crossings` per plan are the bridge-queue indices
    /// in route order, as the engine computes them.
    pub fn admit_batch(
        &mut self,
        batch: &[(FabricConnectionId, &ConnectionPlan, &[usize])],
    ) -> Result<CalculusReport, CalculusRejection> {
        let mut flows = Vec::with_capacity(batch.len());
        for (fid, plan, crossings) in batch {
            flows.push((fid.0, self.flow_from_plan(plan, crossings)?));
        }
        // The candidate batch runs inside a solver session: dropping the
        // session without committing (any early return below) rolls the
        // admissions back with a warm-started remove, restoring the prior
        // fixed point bit for bit.
        let mut session = self.solver.session();
        let report = session.admit(&flows).map_err(map_solve_error)?;
        // Deadline gate over the dirty set only: clean flows kept their
        // stored bounds, which passed this same gate when they were last
        // derived. Dirty keys ascend, and batch candidates carry the
        // largest ids, so an existing victim is named before a candidate.
        for &key in &report.dirty_flows {
            let bound_ps = session
                .bounds(key)
                .map(|b| b.e2e_delay)
                .unwrap_or(f64::INFINITY);
            let deadline_ps = self
                .deadlines
                .get(&key)
                .copied()
                .or_else(|| {
                    batch
                        .iter()
                        .find(|(fid, _, _)| fid.0 == key)
                        .map(|(_, plan, _)| plan.spec.e2e_deadline.as_ps() as f64)
                })
                .unwrap_or(f64::INFINITY);
            if bound_ps > deadline_ps {
                let candidate = batch.iter().any(|(fid, _, _)| fid.0 == key);
                return Err(CalculusRejection::BoundExceeded {
                    flow: (!candidate).then_some(FabricConnectionId(key)),
                    bound: TimeDelta::from_ps_f64_saturating(bound_ps.ceil()),
                    deadline: TimeDelta::from_ps_f64_saturating(deadline_ps),
                });
            }
        }
        session.commit();
        for (fid, plan, _) in batch {
            self.deadlines
                .insert(fid.0, plan.spec.e2e_deadline.as_ps() as f64);
        }
        Ok(CalculusReport {
            iterations: report.iterations,
            full: report.full,
            dirty_flows: report.dirty_flows.len(),
        })
    }

    /// Release a batch of flows in one warm-started pass (used both for
    /// `close_connection` and to roll back calculus state when ring
    /// admission refuses an already-certified batch). Unknown ids are
    /// ignored.
    pub fn remove_batch(&mut self, fids: &[FabricConnectionId]) -> CalculusReport {
        let keys: Vec<u64> = fids.iter().map(|fid| fid.0).collect();
        for key in &keys {
            self.deadlines.remove(key);
        }
        let report = self.solver.remove(&keys);
        CalculusReport {
            iterations: report.iterations,
            full: report.full,
            dirty_flows: report.dirty_flows.len(),
        }
    }

    /// Release a single flow. See [`CalculusAdmission::remove_batch`].
    pub fn remove(&mut self, fid: FabricConnectionId) -> CalculusReport {
        self.remove_batch(&[fid])
    }

    /// Translate a plan into the solver's [`FlowSpec`]: rings and bridge
    /// queues interleaved along the route, EDF classes on the ring hops
    /// (the per-segment relative-deadline budget), blind bridge queues,
    /// no constant hop delays — queueing is priced by the queue servers.
    fn flow_from_plan(
        &self,
        plan: &ConnectionPlan,
        crossings: &[usize],
    ) -> Result<FlowSpec, CalculusRejection> {
        let period_ps = plan.spec.period.as_ps() as f64;
        let burst = f64::from(plan.spec.size_slots);
        if plan.segments.is_empty()
            || crossings.len() + 1 != plan.segments.len()
            || period_ps <= 0.0
            || burst <= 0.0
            || crossings.iter().any(|&q| q >= self.n_queues)
        {
            return Err(CalculusRejection::Malformed);
        }
        let arrival = ArrivalCurve::token_bucket(burst, burst / period_ps)
            .map_err(|_| CalculusRejection::Malformed)?;
        let hops = plan.segments.len() + crossings.len();
        let mut path = Vec::with_capacity(hops);
        let mut classes = Vec::with_capacity(hops);
        for (i, seg) in plan.segments.iter().enumerate() {
            path.push(seg.segment.ring.0 as usize);
            let budget_ps = seg.budget.as_ps() as f64;
            classes.push(if budget_ps > 0.0 {
                budget_ps
            } else {
                f64::INFINITY
            });
            if let Some(&q) = crossings.get(i) {
                path.push(self.n_rings + q);
                classes.push(f64::INFINITY);
            }
        }
        let mut spec = FlowSpec::blind(path, arrival, vec![0.0; hops]);
        spec.classes = classes;
        Ok(spec)
    }

    /// Test-only: admit a hand-built flow model directly, bypassing the
    /// planner (which floors deadlines and would never emit pathological
    /// rates).
    #[cfg(test)]
    fn admit_raw(
        &mut self,
        batch: &[(u64, FlowSpec, f64)],
    ) -> Result<CalculusReport, CalculusRejection> {
        let flows: Vec<(u64, FlowSpec)> = batch.iter().map(|(k, s, _)| (*k, s.clone())).collect();
        let report = self.solver.admit(&flows).map_err(map_solve_error)?;
        for (k, _, deadline_ps) in batch {
            self.deadlines.insert(*k, *deadline_ps);
        }
        Ok(CalculusReport {
            iterations: report.iterations,
            full: report.full,
            dirty_flows: report.dirty_flows.len(),
        })
    }
}

fn map_solve_error(e: SolveError) -> CalculusRejection {
    match e {
        SolveError::MalformedFlow { .. } => CalculusRejection::Malformed,
        SolveError::Utilisation {
            ring,
            demand,
            capacity,
        } => CalculusRejection::Utilisation {
            ring,
            demand,
            capacity,
        },
        SolveError::Diverged {
            iterations,
            worst_burst,
        } => CalculusRejection::Diverged {
            iterations,
            worst_burst,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{plan_connection, FabricConnectionSpec};
    use crate::topology::{FabricTopology, GlobalNodeId};

    fn envs(n: usize) -> Vec<SegmentEnv> {
        (0..n)
            .map(|_| SegmentEnv {
                slot: TimeDelta::from_us(2),
                worst_latency: TimeDelta::from_us(10),
                max_handover: TimeDelta::from_us(6),
            })
            .collect()
    }

    /// The engine's queue layout for a 2-ring chain with one bridge:
    /// queue 0 drains a→b into ring 1, queue 1 drains b→a into ring 0.
    fn chain2_queues() -> Vec<usize> {
        vec![1, 0]
    }

    fn plan_for(
        topo: &FabricTopology,
        envs: &[SegmentEnv],
        src: GlobalNodeId,
        dst: GlobalNodeId,
        period: TimeDelta,
    ) -> ConnectionPlan {
        let spec = FabricConnectionSpec::unicast(src, dst).period(period);
        plan_connection(topo, &spec, envs).expect("plan exists")
    }

    #[test]
    fn certifies_admits_and_releases_a_chain_flow() {
        let topo = FabricTopology::chain(2, 6);
        let envs = envs(2);
        let mut calc =
            CalculusAdmission::new(&envs, &BridgeConfig::default(), &chain2_queues()).unwrap();
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(1, 3),
            TimeDelta::from_ms(1),
        );
        let fid = FabricConnectionId(1);
        let report = calc
            .admit_batch(&[(fid, &plan, &[0])])
            .expect("lightly loaded chain certifies");
        assert_eq!(report.dirty_flows, 1);
        assert_eq!(calc.certified_flows(), 1);
        let bound = calc.bound(fid).expect("bound installed");
        assert!(bound > TimeDelta::ZERO);
        assert!(bound <= plan.spec.e2e_deadline);
        calc.remove(fid);
        assert_eq!(calc.certified_flows(), 0);
        assert!(calc.bound(fid).is_none());
    }

    #[test]
    fn over_utilised_ring_is_refused_with_diagnostic() {
        let envs = envs(2);
        let mut calc =
            CalculusAdmission::new(&envs, &BridgeConfig::default(), &chain2_queues()).unwrap();
        // Service rate is 1 slot / 8 µs = 1.25e-7 slots/ps. Two flows at
        // 0.8e-7 each push ring 0 past capacity, so the batch is refused on
        // long-run rates alone and rolls back whole. (Flows this hot cannot
        // come out of the planner — its deadline floors keep every plannable
        // candidate under capacity — so build the models directly.)
        let hot = |key: u64| {
            let arrival = ArrivalCurve::token_bucket(1.0, 0.8e-7).unwrap();
            (key, FlowSpec::blind(vec![0], arrival, vec![0.0]), 1e12)
        };
        match calc.admit_raw(&[hot(1), hot(2)]) {
            Err(CalculusRejection::Utilisation {
                ring: 0,
                demand,
                capacity,
            }) => {
                assert!(demand >= capacity);
            }
            other => panic!("expected utilisation rejection, got {other:?}"),
        }
        assert_eq!(calc.certified_flows(), 0, "batch rolled back whole");
        // One of them alone fits fine.
        calc.admit_raw(&[hot(3)]).expect("single hot flow fits");
        assert_eq!(calc.certified_flows(), 1);
    }

    #[test]
    fn candidate_breaking_an_existing_certificate_is_refused() {
        let topo = FabricTopology::chain(2, 6);
        let envs = envs(2);
        let mut calc =
            CalculusAdmission::new(&envs, &BridgeConfig::default(), &chain2_queues()).unwrap();
        // Admit a flow, then shrink its recorded deadline to its certified
        // bound: any extra cross traffic on its servers pushes the bound
        // past the deadline and must name it as the victim.
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(1, 3),
            TimeDelta::from_ms(1),
        );
        let fid = FabricConnectionId(1);
        calc.admit_batch(&[(fid, &plan, &[0])]).unwrap();
        let tight = calc.bound(fid).unwrap();
        calc.deadlines.insert(fid.0, tight.as_ps() as f64);
        let before = calc.bound(fid);
        let candidate = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 2),
            GlobalNodeId::new(1, 4),
            TimeDelta::from_ms(1),
        );
        match calc.admit_batch(&[(FabricConnectionId(2), &candidate, &[0])]) {
            Err(CalculusRejection::BoundExceeded { flow, .. }) => {
                assert_eq!(flow, Some(fid), "the victim is named");
            }
            other => panic!("expected certificate break, got {other:?}"),
        }
        // The refused candidate rolled back: the victim's bound recovered.
        assert_eq!(calc.certified_flows(), 1);
        assert_eq!(calc.bound(fid), before);
    }

    #[test]
    fn verdicts_are_deterministic_across_recomputation() {
        let topo = FabricTopology::chain(3, 6);
        let envs = envs(3);
        // 3-ring chain: bridges (r0,r1) and (r1,r2); queue egress rings in
        // the engine's 2b/2b+1 layout.
        let queues = vec![1, 0, 2, 1];
        let base = CalculusAdmission::new(&envs, &BridgeConfig::default(), &queues).unwrap();
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(2, 3),
            TimeDelta::from_ms(2),
        );
        let fid = FabricConnectionId(1);
        let mut a = base.clone();
        let mut b = base.clone();
        let ra = a.admit_batch(&[(fid, &plan, &[0, 2])]).unwrap();
        let rb = b.admit_batch(&[(fid, &plan, &[0, 2])]).unwrap();
        assert_eq!(a.bound(fid), b.bound(fid));
        assert_eq!(ra, rb);
    }

    #[test]
    fn warm_start_matches_forced_full_reference() {
        let topo = FabricTopology::chain(3, 6);
        let envs = envs(3);
        let queues = vec![1, 0, 2, 1];
        let mut warm = CalculusAdmission::new(&envs, &BridgeConfig::default(), &queues).unwrap();
        let mut full = warm.clone();
        full.set_force_full(true);
        let mut fid = 0u64;
        for (src, dst) in [
            (GlobalNodeId::new(0, 1), GlobalNodeId::new(2, 3)),
            (GlobalNodeId::new(1, 2), GlobalNodeId::new(2, 4)),
            (GlobalNodeId::new(0, 3), GlobalNodeId::new(1, 4)),
        ] {
            fid += 1;
            let plan = plan_for(&topo, &envs, src, dst, TimeDelta::from_ms(2));
            let crossings: Vec<usize> = match plan.segments.len() {
                1 => vec![],
                2 => vec![if plan.segments[0].segment.ring.0 == 0 {
                    0
                } else {
                    2
                }],
                _ => vec![0, 2],
            };
            warm.admit_batch(&[(FabricConnectionId(fid), &plan, &crossings)])
                .unwrap();
            full.admit_batch(&[(FabricConnectionId(fid), &plan, &crossings)])
                .unwrap();
        }
        for k in 1..=fid {
            assert_eq!(
                warm.bound(FabricConnectionId(k)),
                full.bound(FabricConnectionId(k)),
                "flow {k}"
            );
        }
        // Releases stay bit-identical too.
        warm.remove(FabricConnectionId(2));
        full.remove(FabricConnectionId(2));
        for k in [1, 3] {
            assert_eq!(
                warm.bound(FabricConnectionId(k)),
                full.bound(FabricConnectionId(k)),
                "flow {k} after release"
            );
        }
    }
}
