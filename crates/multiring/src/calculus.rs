//! Network-calculus admission for the fabric: certified end-to-end delay
//! bounds, including on **cyclic** ring graphs the per-hop budget
//! decomposition cannot cover.
//!
//! [`crate::admission`]'s summation argument — per-segment budgets that
//! add up to the e2e deadline — is only sound on acyclic fabrics, which is
//! why [`crate::topology`] historically rejected cycles outright. This
//! module closes that gap with the min-plus machinery of
//! [`ccr_calculus`]: each ring is modelled as a rate-latency server
//! `β(t) = R·(t − T)⁺` with `R = 1/(slot + h_max)` slots per picosecond
//! (the paper's guaranteed long-run slot rate, Eq. 4 environment) and
//! `T = worst_latency` (Eq. 4's per-slot worst case); each admitted
//! connection contributes a token-bucket arrival `α(t) = e + (e/P)·t`
//! slots. Bridge crossings are charged a constant per-hop delay derived
//! from the queue's resident population and the bridge's drain rate.
//!
//! [`CalculusAdmission::check`] re-solves the *whole* admitted set plus
//! the candidate through [`ccr_calculus::solve`] — the cyclic fixed point
//! converges or the set is rejected with a diagnostic — and refuses the
//! candidate unless **every** flow (old and new) keeps a certified bound
//! within its e2e deadline. Verdicts are bit-for-bit deterministic: flows
//! enter the model in admission-id order and every operator in the kernel
//! is an exact closed form.

use crate::admission::{ConnectionPlan, FabricConnectionId, SegmentEnv};
use crate::bridge::BridgeConfig;
use ccr_calculus::{solve, ArrivalCurve, FabricModel, FlowSpec, ServiceCurve, SolveError};
use ccr_sim::TimeDelta;
use std::collections::BTreeMap;

/// Why the calculus certifier refused a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum CalculusRejection {
    /// Long-run rates alone overload ring `ring` — no bound exists.
    Utilisation {
        /// Ring index.
        ring: usize,
        /// Aggregate demand (slots per picosecond).
        demand: f64,
        /// Guaranteed service rate (slots per picosecond).
        capacity: f64,
    },
    /// The cyclic fixed point diverged: output burstiness crossed the cap
    /// or was still moving after the iteration ceiling.
    Diverged {
        /// Fixed-point rounds executed before giving up.
        iterations: usize,
        /// Largest hop-arrival burst seen (slots).
        worst_burst: f64,
    },
    /// A flow's certified bound exceeds its e2e deadline. `flow` is
    /// `None` for the candidate itself, `Some(fid)` when admitting the
    /// candidate would break an *existing* flow's certificate.
    BoundExceeded {
        /// The flow whose certificate fails (`None` = the candidate).
        flow: Option<FabricConnectionId>,
        /// The certified end-to-end delay bound.
        bound: TimeDelta,
        /// That flow's end-to-end deadline.
        deadline: TimeDelta,
    },
    /// The candidate could not be translated into a flow model (degenerate
    /// period or size).
    Malformed,
}

impl std::fmt::Display for CalculusRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalculusRejection::Utilisation {
                ring,
                demand,
                capacity,
            } => write!(
                f,
                "ring {ring} over-utilised: demand {demand:.3e} \u{2265} capacity {capacity:.3e} slots/ps"
            ),
            CalculusRejection::Diverged {
                iterations,
                worst_burst,
            } => write!(
                f,
                "fixed point diverged after {iterations} iteration(s) (worst burst {worst_burst:.3e} slots)"
            ),
            CalculusRejection::BoundExceeded {
                flow,
                bound,
                deadline,
            } => match flow {
                Some(fid) => write!(
                    f,
                    "existing connection {fid:?} would lose its certificate: bound {bound} > deadline {deadline}"
                ),
                None => write!(f, "candidate bound {bound} exceeds its deadline {deadline}"),
            },
            CalculusRejection::Malformed => write!(f, "candidate has a degenerate flow model"),
        }
    }
}

impl std::error::Error for CalculusRejection {}

/// One admitted flow as the calculus layer models it.
#[derive(Debug, Clone)]
struct CalcFlow {
    /// Ring index per hop, in traversal order.
    rings: Vec<usize>,
    /// Bridge-queue index crossed *before* hop `i` (`crossings[i - 1]`
    /// feeds hop `i`; the source hop has no crossing).
    crossings: Vec<usize>,
    /// Token-bucket burst (slots).
    burst: f64,
    /// Token-bucket long-run rate (slots per picosecond).
    rate: f64,
    /// End-to-end deadline (picoseconds).
    deadline_ps: f64,
}

/// A successful certification of the admitted set plus one candidate,
/// produced by [`CalculusAdmission::check`] and installed by
/// [`CalculusAdmission::commit`] once the rings admit the candidate too.
#[derive(Debug, Clone)]
pub struct CalculusVerdict {
    /// Fixed-point iterations the solver needed.
    pub iterations: usize,
    /// Certified e2e bounds for the existing flows, in admission-id order.
    existing_bounds: Vec<TimeDelta>,
    /// The candidate's certified e2e bound.
    pub candidate_bound: TimeDelta,
    /// The candidate's flow model, ready to install.
    candidate: CalcFlow,
}

/// Stateful end-to-end certifier: holds the admitted flow set and
/// re-solves it on every candidate. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct CalculusAdmission {
    /// Aggregate service curve per ring.
    services: Vec<ServiceCurve>,
    /// `slot + max_handover` per ring, in picoseconds (the reciprocal of
    /// the guaranteed service rate) — the unit a queued slot drains in.
    per_slot_ps: Vec<f64>,
    /// Bridge drain rate (forwards per fabric slot).
    forward_per_slot: u32,
    /// Admitted flows keyed by fabric connection id (ordered map: the
    /// model is rebuilt in id order, so verdicts are deterministic).
    flows: BTreeMap<u64, CalcFlow>,
    /// Certified e2e bound per admitted flow (refreshed on every commit).
    bounds: BTreeMap<u64, TimeDelta>,
}

impl CalculusAdmission {
    /// Build the certifier from the per-ring timing environments. Returns
    /// `None` when an environment is degenerate (zero `slot + h_max`),
    /// which validated ring configurations never produce.
    pub fn new(envs: &[SegmentEnv], bridge: &BridgeConfig) -> Option<Self> {
        let mut services = Vec::with_capacity(envs.len());
        let mut per_slot_ps = Vec::with_capacity(envs.len());
        for env in envs {
            let per_slot = (env.slot + env.max_handover).as_ps() as f64;
            let latency = env.worst_latency.as_ps() as f64;
            if per_slot <= 0.0 {
                return None;
            }
            services.push(ServiceCurve::rate_latency(1.0 / per_slot, latency).ok()?);
            per_slot_ps.push(per_slot);
        }
        Some(CalculusAdmission {
            services,
            per_slot_ps,
            forward_per_slot: bridge.forward_per_slot.max(1),
            flows: BTreeMap::new(),
            bounds: BTreeMap::new(),
        })
    }

    /// Number of flows currently certified.
    pub fn certified_flows(&self) -> usize {
        self.flows.len()
    }

    /// The certified e2e delay bound of an admitted flow.
    pub fn bound(&self, fid: FabricConnectionId) -> Option<TimeDelta> {
        self.bounds.get(&fid.0).copied()
    }

    /// Certify the admitted set plus `plan`. `crossings` are the
    /// bridge-queue indices the plan crosses, in route order (as computed
    /// by the engine). On success the verdict carries every flow's fresh
    /// bound; pass it to [`CalculusAdmission::commit`] once the rings have
    /// admitted the candidate as well.
    pub fn check(
        &self,
        plan: &ConnectionPlan,
        crossings: &[usize],
    ) -> Result<CalculusVerdict, CalculusRejection> {
        let candidate = self.flow_from_plan(plan, crossings)?;
        let mut order: Vec<&CalcFlow> = self.flows.values().collect();
        order.push(&candidate);

        // Queue residents *after* admission: each flow parks at most one
        // message per period in each queue it crosses (steady state under
        // met deadlines), so the population is one per crossing flow.
        let n_queues = order
            .iter()
            .flat_map(|f| f.crossings.iter())
            .map(|&q| q + 1)
            .max()
            .unwrap_or(0);
        let mut residents = vec![0u32; n_queues];
        for flow in &order {
            for &q in &flow.crossings {
                residents[q] += 1;
            }
        }

        let flows: Vec<FlowSpec> = order
            .iter()
            .map(|flow| self.flow_spec(flow, &residents))
            .collect::<Result<_, _>>()?;
        let model = FabricModel {
            services: self.services.clone(),
            flows,
        };
        let sol = solve(&model).map_err(|e| match e {
            SolveError::MalformedFlow { .. } => CalculusRejection::Malformed,
            SolveError::Utilisation {
                ring,
                demand,
                capacity,
            } => CalculusRejection::Utilisation {
                ring,
                demand,
                capacity,
            },
            SolveError::Diverged {
                iterations,
                worst_burst,
            } => CalculusRejection::Diverged {
                iterations,
                worst_burst,
            },
        })?;

        // Every flow — existing and candidate — must keep a bound within
        // its deadline, otherwise admitting the candidate would silently
        // void an earlier certificate.
        let fids: Vec<u64> = self.flows.keys().copied().collect();
        let mut existing_bounds = Vec::with_capacity(fids.len());
        for (i, fb) in sol.flows.iter().enumerate() {
            let bound = TimeDelta::from_ps_f64_saturating(fb.e2e_delay.ceil());
            let (flow, deadline_ps) = match fids.get(i) {
                Some(&fid) => (Some(FabricConnectionId(fid)), order[i].deadline_ps),
                None => (None, candidate.deadline_ps),
            };
            if fb.e2e_delay > deadline_ps {
                return Err(CalculusRejection::BoundExceeded {
                    flow,
                    bound,
                    deadline: TimeDelta::from_ps_f64_saturating(deadline_ps),
                });
            }
            existing_bounds.push(bound);
        }
        let candidate_bound = existing_bounds.pop().unwrap_or(TimeDelta::ZERO);
        Ok(CalculusVerdict {
            iterations: sol.iterations,
            existing_bounds,
            candidate_bound,
            candidate,
        })
    }

    /// Install a verdict: the candidate joins the certified set under
    /// `fid` and every existing flow's bound is refreshed to the verdict's.
    pub fn commit(&mut self, fid: FabricConnectionId, verdict: CalculusVerdict) {
        let fids: Vec<u64> = self.flows.keys().copied().collect();
        for (existing, bound) in fids.iter().zip(verdict.existing_bounds.iter()) {
            self.bounds.insert(*existing, *bound);
        }
        self.flows.insert(fid.0, verdict.candidate);
        self.bounds.insert(fid.0, verdict.candidate_bound);
    }

    /// Drop a closed flow. Remaining certificates stay valid: removing a
    /// flow only ever *reduces* cross traffic, so every surviving bound
    /// still holds (it is merely no longer tight).
    pub fn remove(&mut self, fid: FabricConnectionId) {
        self.flows.remove(&fid.0);
        self.bounds.remove(&fid.0);
    }

    fn flow_from_plan(
        &self,
        plan: &ConnectionPlan,
        crossings: &[usize],
    ) -> Result<CalcFlow, CalculusRejection> {
        let period_ps = plan.spec.period.as_ps() as f64;
        let burst = f64::from(plan.spec.size_slots);
        if plan.segments.is_empty()
            || crossings.len() + 1 != plan.segments.len()
            || period_ps <= 0.0
            || burst <= 0.0
        {
            return Err(CalculusRejection::Malformed);
        }
        Ok(CalcFlow {
            rings: plan
                .segments
                .iter()
                .map(|s| s.segment.ring.0 as usize)
                .collect(),
            crossings: crossings.to_vec(),
            burst,
            rate: burst / period_ps,
            deadline_ps: plan.spec.e2e_deadline.as_ps() as f64,
        })
    }

    /// Translate one stored flow into the solver's [`FlowSpec`], charging
    /// each bridge crossing a constant worst-case drain delay of
    /// `ceil(residents / forward_per_slot)` egress slot times.
    fn flow_spec(&self, flow: &CalcFlow, residents: &[u32]) -> Result<FlowSpec, CalculusRejection> {
        let arrival = ArrivalCurve::token_bucket(flow.burst, flow.rate)
            .map_err(|_| CalculusRejection::Malformed)?;
        let mut hop_delay = Vec::with_capacity(flow.rings.len());
        hop_delay.push(0.0);
        for (i, &q) in flow.crossings.iter().enumerate() {
            let egress_ring = *flow.rings.get(i + 1).ok_or(CalculusRejection::Malformed)?;
            let pop = residents.get(q).copied().unwrap_or(1).max(1);
            let drain_slots = pop.div_ceil(self.forward_per_slot);
            hop_delay.push(f64::from(drain_slots) * self.per_slot_ps[egress_ring]);
        }
        if hop_delay.len() != flow.rings.len() {
            return Err(CalculusRejection::Malformed);
        }
        Ok(FlowSpec {
            path: flow.rings.clone(),
            arrival,
            hop_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{plan_connection, FabricConnectionSpec};
    use crate::topology::{FabricTopology, GlobalNodeId};

    fn envs(n: usize) -> Vec<SegmentEnv> {
        (0..n)
            .map(|_| SegmentEnv {
                slot: TimeDelta::from_us(2),
                worst_latency: TimeDelta::from_us(10),
                max_handover: TimeDelta::from_us(6),
            })
            .collect()
    }

    fn plan_for(
        topo: &FabricTopology,
        envs: &[SegmentEnv],
        src: GlobalNodeId,
        dst: GlobalNodeId,
        period: TimeDelta,
    ) -> ConnectionPlan {
        let spec = FabricConnectionSpec::unicast(src, dst).period(period);
        plan_connection(topo, &spec, envs).expect("plan exists")
    }

    #[test]
    fn certifies_and_commits_a_chain_flow() {
        let topo = FabricTopology::chain(2, 6);
        let envs = envs(2);
        let mut calc = CalculusAdmission::new(&envs, &BridgeConfig::default()).unwrap();
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(1, 3),
            TimeDelta::from_ms(1),
        );
        let verdict = calc
            .check(&plan, &[0])
            .expect("lightly loaded chain certifies");
        assert!(verdict.candidate_bound > TimeDelta::ZERO);
        assert!(verdict.candidate_bound <= plan.spec.e2e_deadline);
        calc.commit(FabricConnectionId(1), verdict);
        assert_eq!(calc.certified_flows(), 1);
        assert!(calc.bound(FabricConnectionId(1)).is_some());
        calc.remove(FabricConnectionId(1));
        assert_eq!(calc.certified_flows(), 0);
        assert!(calc.bound(FabricConnectionId(1)).is_none());
    }

    #[test]
    fn over_utilised_ring_is_refused_with_diagnostic() {
        let topo = FabricTopology::chain(2, 6);
        let envs = envs(2);
        let mut calc = CalculusAdmission::new(&envs, &BridgeConfig::default()).unwrap();
        // Service rate is 1 slot / 8 µs = 1.25e-7 slots/ps. Two admitted
        // flows at 0.8e-7 each push ring 0 past capacity, so any candidate
        // touching it is refused on long-run rates alone. (Flows this hot
        // cannot come out of the planner — its deadline floors keep every
        // plannable candidate under capacity — so install them directly.)
        for i in 0..2u64 {
            calc.flows.insert(
                i + 1,
                CalcFlow {
                    rings: vec![0],
                    crossings: vec![],
                    burst: 1.0,
                    rate: 0.8e-7,
                    deadline_ps: 1e12,
                },
            );
        }
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 3),
            GlobalNodeId::new(1, 4),
            TimeDelta::from_ms(1),
        );
        match calc.check(&plan, &[0]) {
            Err(CalculusRejection::Utilisation {
                ring: 0,
                demand,
                capacity,
            }) => {
                assert!(demand >= capacity);
            }
            other => panic!("expected utilisation rejection, got {other:?}"),
        }
    }

    #[test]
    fn candidate_breaking_an_existing_certificate_is_refused() {
        let topo = FabricTopology::chain(2, 6);
        let envs = envs(2);
        let mut calc = CalculusAdmission::new(&envs, &BridgeConfig::default()).unwrap();
        // An admitted flow whose certificate has zero slack: any extra
        // cross traffic on its rings pushes the bound past the deadline.
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(1, 3),
            TimeDelta::from_ms(1),
        );
        let v = calc.check(&plan, &[0]).unwrap();
        let tight = v.candidate_bound;
        calc.commit(FabricConnectionId(1), v);
        if let Some(flow) = calc.flows.get_mut(&1) {
            flow.deadline_ps = tight.as_ps() as f64;
        }
        let candidate = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 2),
            GlobalNodeId::new(1, 4),
            TimeDelta::from_ms(1),
        );
        match calc.check(&candidate, &[0]) {
            Err(CalculusRejection::BoundExceeded { flow, .. }) => {
                assert_eq!(flow, Some(FabricConnectionId(1)), "the victim is named");
            }
            other => panic!("expected certificate break, got {other:?}"),
        }
    }

    #[test]
    fn verdicts_are_deterministic_across_recomputation() {
        let topo = FabricTopology::chain(3, 6);
        let envs = envs(3);
        let calc = CalculusAdmission::new(&envs, &BridgeConfig::default()).unwrap();
        let plan = plan_for(
            &topo,
            &envs,
            GlobalNodeId::new(0, 1),
            GlobalNodeId::new(2, 3),
            TimeDelta::from_ms(2),
        );
        let a = calc.check(&plan, &[0, 2]).unwrap();
        let b = calc.check(&plan, &[0, 2]).unwrap();
        assert_eq!(a.candidate_bound, b.candidate_bound);
        assert_eq!(a.iterations, b.iterations);
    }
}
