//! Property-based tests for the simulation substrate.

use ccr_sim::stats::{Histogram, Summary};
use ccr_sim::{EventQueue, SeedSequence, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO on ties.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = vec![];
        let mut prev_t = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if prev_t == Some(t) {
                // FIFO on equal times: indices increase
                prop_assert!(*seen_at_time.last().unwrap() < idx);
                seen_at_time.push(idx);
            } else {
                seen_at_time = vec![idx];
            }
            prev_t = Some(t);
            last_time = t;
        }
        prop_assert!(q.is_empty());
    }

    /// The histogram quantile is within its advertised relative error and
    /// bracketed by min/max.
    #[test]
    fn histogram_quantile_bounds(
        values in prop::collection::vec(1u64..1_000_000_000, 1..500),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new(6);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let est = h.quantile(q).unwrap();
        prop_assert!(est >= *sorted.first().unwrap());
        prop_assert!(est <= *sorted.last().unwrap());
        // exact rank the estimate should approximate
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = sorted[rank - 1];
        let rel = (est as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(rel <= 1.0 / 64.0 + 1e-12, "rel err {rel}: est {est} vs exact {exact}");
    }

    /// Histogram count/mean/min/max are exact regardless of input order.
    #[test]
    fn histogram_moments_exact(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new(4);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean().unwrap() - mean).abs() < 1e-6);
    }

    /// Merging split summaries equals one-pass summarisation.
    #[test]
    fn summary_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let (am, wm) = (a.mean().unwrap(), whole.mean().unwrap());
        prop_assert!((am - wm).abs() <= 1e-9 * (1.0 + wm.abs()));
        let (av, wv) = (a.variance().unwrap(), whole.variance().unwrap());
        prop_assert!((av - wv).abs() <= 1e-6 * (1.0 + wv.abs()));
    }

    /// Seed streams are reproducible and label-separated.
    #[test]
    fn seed_sequence_properties(seed in any::<u64>(), a in 0u64..100, b in 0u64..100) {
        let s = SeedSequence::new(seed);
        prop_assert_eq!(s.child_seed("x", a), SeedSequence::new(seed).child_seed("x", a));
        if a != b {
            prop_assert_ne!(s.child_seed("x", a), s.child_seed("x", b));
        }
        prop_assert_ne!(s.child_seed("x", a), s.child_seed("y", a));
    }
}
