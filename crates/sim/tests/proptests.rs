//! Randomised tests for the simulation substrate.
//!
//! Formerly `proptest` properties; now driven by the crate's own seeded
//! [`DetRng`] so the workspace needs no external dependencies. Each case
//! runs against many deterministic random inputs, so failures reproduce
//! exactly.

use ccr_sim::rng::DetRng;
use ccr_sim::stats::{Histogram, Summary};
use ccr_sim::{EventQueue, SeedSequence, SimTime};

const CASES: u64 = 128;

/// Events always pop in non-decreasing time order, FIFO on ties.
#[test]
fn event_queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = SeedSequence::new(0xE0E0).stream("evq", case);
        let len = rng.gen_range(1usize..200);
        let times: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = vec![];
        let mut prev_t = None;
        while let Some((t, idx)) = q.pop() {
            assert!(t >= last_time);
            if prev_t == Some(t) {
                // FIFO on equal times: indices increase
                assert!(*seen_at_time.last().unwrap() < idx);
                seen_at_time.push(idx);
            } else {
                seen_at_time = vec![idx];
            }
            prev_t = Some(t);
            last_time = t;
        }
        assert!(q.is_empty());
    }
}

/// The histogram quantile is within its advertised relative error and
/// bracketed by min/max.
#[test]
fn histogram_quantile_bounds() {
    for case in 0..CASES {
        let mut rng = SeedSequence::new(0x1157).stream("quant", case);
        let len = rng.gen_range(1usize..500);
        let values: Vec<u64> = (0..len)
            .map(|_| rng.gen_range(1u64..1_000_000_000))
            .collect();
        let q = rng.gen_range(0.01f64..1.0);
        let mut h = Histogram::new(6);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let est = h.quantile(q).unwrap();
        assert!(est >= *sorted.first().unwrap());
        assert!(est <= *sorted.last().unwrap());
        // exact rank the estimate should approximate
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = sorted[rank - 1];
        let rel = (est as f64 - exact as f64).abs() / exact as f64;
        assert!(
            rel <= 1.0 / 64.0 + 1e-12,
            "rel err {rel}: est {est} vs exact {exact}"
        );
    }
}

/// Histogram count/mean/min/max are exact regardless of input order.
#[test]
fn histogram_moments_exact() {
    for case in 0..CASES {
        let mut rng = SeedSequence::new(0x4157).stream("mom", case);
        let len = rng.gen_range(1usize..300);
        let values: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1_000_000)).collect();
        let mut h = Histogram::new(4);
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min(), values.iter().min().copied());
        assert_eq!(h.max(), values.iter().max().copied());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((h.mean().unwrap() - mean).abs() < 1e-6);
    }
}

/// Merging split summaries equals one-pass summarisation.
#[test]
fn summary_merge_associative() {
    for case in 0..CASES {
        let mut rng = SeedSequence::new(0x5077).stream("merge", case);
        let len = rng.gen_range(1usize..200);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let split = rng.gen_range(0usize..201).min(xs.len());
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..split].iter().for_each(|&x| a.record(x));
        xs[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let (am, wm) = (a.mean().unwrap(), whole.mean().unwrap());
        assert!((am - wm).abs() <= 1e-9 * (1.0 + wm.abs()));
        let (av, wv) = (a.variance().unwrap(), whole.variance().unwrap());
        assert!((av - wv).abs() <= 1e-6 * (1.0 + wv.abs()));
    }
}

/// Seed streams are reproducible and label-separated.
#[test]
fn seed_sequence_properties() {
    let mut rng = DetRng::new(0x5EED);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let a = rng.gen_range(0u64..100);
        let b = rng.gen_range(0u64..100);
        let s = SeedSequence::new(seed);
        assert_eq!(
            s.child_seed("x", a),
            SeedSequence::new(seed).child_seed("x", a)
        );
        if a != b {
            assert_ne!(s.child_seed("x", a), s.child_seed("x", b));
        }
        assert_ne!(s.child_seed("x", a), s.child_seed("y", a));
    }
}
