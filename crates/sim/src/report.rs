//! Plain-text table rendering and CSV emission for experiment output.
//!
//! The experiment harness prints paper-style tables to stdout and can dump
//! the same rows as CSV. Hand-rolled (no `csv`/`serde_json` dependency): the
//! formats needed here are trivial.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
/// ```
/// use ccr_sim::report::Table;
/// let mut t = Table::new("demo", &["n", "value"]);
/// t.row(&["4".into(), "0.97".into()]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("0.97"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Append one row from displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        let emit_row = |cells: &[String], out: &mut String| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "{}", body.join(" | "));
        };
        emit_row(&self.headers, &mut out);
        let _ = writeln!(out, "{}", "-".repeat(line));
        for row in &self.rows {
            emit_row(row, &mut out);
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing `",\n`).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let hdr: Vec<String> = self.headers.iter().map(|h| esc(h)).collect();
        let _ = writeln!(out, "{}", hdr.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Title accessor.
    pub fn title(&self) -> &str {
        &self.title
    }
}

/// Format a float with a fixed number of significant-looking decimals,
/// trimming to `-` when `NaN` (used for "no data" cells).
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Format a ratio as a percentage string.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:.2}%", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.contains("## T"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows, title
        assert_eq!(lines.len(), 5);
        // all data lines have equal width
        assert_eq!(lines[2].len(), lines[4].len().max(lines[2].len()));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("T", &["n", "f"]);
        t.row_display(&[&42u32, &1.5f64]);
        assert!(t.render().contains("42"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_pct(0.1234), "12.34%");
        assert_eq!(fmt_pct(f64::NAN), "-");
    }
}
