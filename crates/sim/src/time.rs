//! Simulation time at picosecond resolution.
//!
//! The CCR-EDF physical layer deals in quantities that differ by many orders
//! of magnitude — 2.5 ns bit times, 5 ns/m propagation delays, millisecond
//! message periods — so time is kept as an exact integer count of
//! picoseconds. A `u64` of picoseconds covers ~213 days of simulated time,
//! far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant on the simulation clock, in picoseconds since t = 0.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A non-negative span of simulated time, in picoseconds.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a picosecond count.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from a nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from a microsecond count.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from a millisecond count.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Span from an earlier instant to this one.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        debug_assert!(earlier <= self, "since() with a later instant");
        TimeDelta(self.0 - earlier.0)
    }

    /// Saturating difference: zero when `earlier` is after `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span.
    #[inline]
    pub fn checked_add(self, d: TimeDelta) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a span: clamps to [`SimTime::MAX`]. An
    /// absolute deadline past the end of representable time reads as
    /// "effectively unbounded", which is the safe direction — it can only
    /// make admission stricter elsewhere, never fake an early deadline.
    #[inline]
    pub fn saturating_add(self, d: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl TimeDelta {
    /// The empty span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable span.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        TimeDelta(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        TimeDelta(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        TimeDelta(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        TimeDelta(ms * PS_PER_MS)
    }

    /// Construct from fractional nanoseconds, rounding to the nearest ps.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0 && ns.is_finite());
        TimeDelta((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Checked construction from a fractional picosecond count: the one
    /// sanctioned `f64 → TimeDelta` conversion. Rejects NaN, infinities,
    /// negative values and values beyond `u64::MAX` picoseconds instead of
    /// letting an `as u64` cast silently wrap them to garbage.
    #[inline]
    pub fn try_from_ps_f64(ps: f64) -> Result<Self, TimeFromF64Error> {
        if ps.is_nan() {
            return Err(TimeFromF64Error::NaN);
        }
        if ps.is_infinite() {
            return Err(TimeFromF64Error::Infinite);
        }
        if ps < 0.0 {
            return Err(TimeFromF64Error::Negative(ps));
        }
        let rounded = ps.round();
        // u64::MAX as f64 rounds up to 2^64, which would wrap; compare
        // against the exactly-representable 2^64 instead.
        if rounded >= u64::MAX as f64 {
            return Err(TimeFromF64Error::Overflow(ps));
        }
        Ok(TimeDelta(rounded as u64))
    }

    /// Saturating construction from fractional picoseconds: negative (and
    /// NaN) inputs clamp to zero, values beyond the representable range
    /// clamp to [`TimeDelta::MAX`]. Use [`TimeDelta::try_from_ps_f64`]
    /// when the caller can report an error instead of clamping.
    #[inline]
    pub fn from_ps_f64_saturating(ps: f64) -> Self {
        match Self::try_from_ps_f64(ps) {
            Ok(d) => d,
            Err(TimeFromF64Error::Overflow(_) | TimeFromF64Error::Infinite) if ps > 0.0 => {
                TimeDelta::MAX
            }
            Err(_) => TimeDelta::ZERO,
        }
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Span as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Span as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }

    /// Integer division of one span by another: how many whole `other`
    /// spans fit into `self`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[inline]
    pub fn div_delta(self, other: TimeDelta) -> u64 {
        self.0 / other.0
    }

    /// Ratio of this span to another as `f64`.
    #[inline]
    pub fn ratio(self, other: TimeDelta) -> f64 {
        self.0 as f64 / other.0 as f64
    }

    /// Multiply by an integer count.
    #[inline]
    pub const fn times(self, n: u64) -> TimeDelta {
        TimeDelta(self.0 * n)
    }
}

/// Why an `f64` could not be converted into a [`TimeDelta`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeFromF64Error {
    /// The input was NaN.
    NaN,
    /// The input was ±infinity.
    Infinite,
    /// The input was negative; holds the offending value.
    Negative(f64),
    /// The input exceeds `u64::MAX` picoseconds; holds the offending value.
    Overflow(f64),
}

impl fmt::Display for TimeFromF64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeFromF64Error::NaN => write!(f, "NaN is not a time span"),
            TimeFromF64Error::Infinite => write!(f, "infinite time span"),
            TimeFromF64Error::Negative(v) => write!(f, "negative time span ({v})"),
            TimeFromF64Error::Overflow(v) => {
                write!(f, "time span {v}ps exceeds u64::MAX picoseconds")
            }
        }
    }
}

impl std::error::Error for TimeFromF64Error {}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: SimTime) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", TimeDelta(self.0))
    }
}

impl fmt::Display for TimeDelta {
    /// Human-friendly rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ps")
        } else if ps < PS_PER_NS {
            write!(f, "{ps}ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
        } else if ps < PS_PER_MS {
            write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
        } else if ps < PS_PER_S {
            write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
        } else {
            write!(f, "{:.3}s", ps as f64 / PS_PER_S as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(TimeDelta::from_ms(2), TimeDelta::from_ps(2 * PS_PER_MS));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ns(10);
        let d = TimeDelta::from_ns(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    fn since_measures_span() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(12);
        assert_eq!(b.since(a), TimeDelta::from_ns(7));
        assert_eq!(a.saturating_since(b), TimeDelta::ZERO);
    }

    #[test]
    fn delta_division_counts_whole_units() {
        let slot = TimeDelta::from_ns(640);
        let horizon = TimeDelta::from_us(10);
        assert_eq!(horizon.div_delta(slot), 15); // 10_000 / 640 = 15.625
    }

    #[test]
    fn delta_ratio_is_exact_for_small_values() {
        let a = TimeDelta::from_ns(250);
        let b = TimeDelta::from_ns(1000);
        assert!((a.ratio(b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(TimeDelta::from_ps(500).to_string(), "500ps");
        assert_eq!(TimeDelta::from_ns(2).to_string(), "2.000ns");
        assert_eq!(TimeDelta::from_us(3).to_string(), "3.000us");
        assert_eq!(TimeDelta::from_ms(4).to_string(), "4.000ms");
        assert_eq!(TimeDelta::from_ps(0).to_string(), "0ps");
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(TimeDelta::from_ns_f64(2.5), TimeDelta::from_ps(2_500));
        assert_eq!(TimeDelta::from_ns_f64(0.0004), TimeDelta::from_ps(0));
        assert_eq!(TimeDelta::from_ns_f64(0.0006), TimeDelta::from_ps(1));
    }

    #[test]
    fn sum_of_deltas() {
        let total: TimeDelta = (1..=4).map(TimeDelta::from_ns).sum();
        assert_eq!(total, TimeDelta::from_ns(10));
    }

    #[test]
    fn try_from_ps_f64_accepts_normal_values() {
        assert_eq!(
            TimeDelta::try_from_ps_f64(2_500.4),
            Ok(TimeDelta::from_ps(2_500))
        );
        assert_eq!(TimeDelta::try_from_ps_f64(0.0), Ok(TimeDelta::ZERO));
        assert_eq!(TimeDelta::try_from_ps_f64(0.6), Ok(TimeDelta::from_ps(1)));
    }

    #[test]
    fn try_from_ps_f64_rejects_degenerate_values() {
        assert_eq!(
            TimeDelta::try_from_ps_f64(f64::NAN),
            Err(TimeFromF64Error::NaN)
        );
        assert_eq!(
            TimeDelta::try_from_ps_f64(f64::INFINITY),
            Err(TimeFromF64Error::Infinite)
        );
        assert!(matches!(
            TimeDelta::try_from_ps_f64(-1.0),
            Err(TimeFromF64Error::Negative(_))
        ));
        assert!(matches!(
            TimeDelta::try_from_ps_f64(2.0e19),
            Err(TimeFromF64Error::Overflow(_))
        ));
        // The boundary: u64::MAX itself is not exactly representable, so
        // anything that rounds to 2^64 must be rejected, not wrapped.
        assert!(matches!(
            TimeDelta::try_from_ps_f64(u64::MAX as f64),
            Err(TimeFromF64Error::Overflow(_))
        ));
    }

    #[test]
    fn from_ps_f64_saturating_clamps() {
        assert_eq!(TimeDelta::from_ps_f64_saturating(-5.0), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_ps_f64_saturating(f64::NAN), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_ps_f64_saturating(2.0e19), TimeDelta::MAX);
        assert_eq!(
            TimeDelta::from_ps_f64_saturating(f64::INFINITY),
            TimeDelta::MAX
        );
        assert_eq!(
            TimeDelta::from_ps_f64_saturating(123.0),
            TimeDelta::from_ps(123)
        );
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(TimeDelta::from_ps(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(TimeDelta::from_ps(7)),
            Some(SimTime::from_ps(7))
        );
    }

    #[test]
    fn times_multiplies() {
        assert_eq!(TimeDelta::from_ns(3).times(4), TimeDelta::from_ns(12));
        assert_eq!(TimeDelta::from_ns(3) * 4, TimeDelta::from_ns(12));
        assert_eq!(TimeDelta::from_ns(12) / 4, TimeDelta::from_ns(3));
    }
}
