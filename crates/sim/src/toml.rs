//! Dependency-free TOML-subset scanner shared by every config loader in
//! the workspace (the gateway's `[[link]]` files, the synthesizer's
//! `[[flow]]` traffic matrices).
//!
//! The subset is deliberately tiny — exactly what offline deployments
//! need and nothing that would demand a real TOML dependency:
//!
//! * `[[table]]` array-of-tables headers open a new entry;
//! * `key = value` lines assign into the open entry;
//! * `#` starts a comment anywhere on a line; blank lines are skipped.
//!
//! [`scan`] yields the syntactic items with their 1-based line numbers
//! and typed [`ScanError`]s for anything structurally unparseable; the
//! value helpers ([`parse_u64`], [`parse_bounded`], [`parse_us`],
//! [`parse_quoted`]) implement the shared value grammar with typed
//! range errors — an out-of-range integer is refused, never silently
//! truncated, and a µs duration that would overflow the picosecond
//! representation is a config error, not an arithmetic accident.
//!
//! Callers own the semantic layer (which table names exist, which keys a
//! table accepts, cross-field validation); this module owns the lexical
//! layer, so one fuzz suite covers every loader's parsing substrate.

use crate::time::TimeDelta;

/// A structural error from the scanner or a value helper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScanError {}

/// One syntactic item of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Item<'a> {
    /// A `[[name]]` array-of-tables header.
    Table {
        /// The table name between the double brackets, trimmed.
        name: &'a str,
    },
    /// A `key = value` assignment (both sides trimmed, comment stripped).
    KeyValue {
        /// The key left of `=`.
        key: &'a str,
        /// The raw value right of `=` (quotes intact).
        value: &'a str,
    },
}

/// An [`Item`] with the 1-based line it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spanned<'a> {
    /// 1-based line number in the input.
    pub line: usize,
    /// The item itself.
    pub item: Item<'a>,
}

/// Iterator over the syntactic items of a TOML-subset document.
#[derive(Debug, Clone)]
pub struct Scanner<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Iterator for Scanner<'a> {
    type Item = Result<Spanned<'a>, ScanError>;

    fn next(&mut self) -> Option<Self::Item> {
        for (i, raw) in self.lines.by_ref() {
            let line = i + 1;
            let text = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if text.is_empty() {
                continue;
            }
            if let Some(inner) = text.strip_prefix("[[").and_then(|t| t.strip_suffix("]]")) {
                let name = inner.trim();
                if name.is_empty() {
                    return Some(Err(ScanError {
                        line,
                        msg: "empty `[[ ]]` table header".to_string(),
                    }));
                }
                return Some(Ok(Spanned {
                    line,
                    item: Item::Table { name },
                }));
            }
            let Some(eq) = text.find('=') else {
                return Some(Err(ScanError {
                    line,
                    msg: format!("expected `key = value` or a `[[table]]` header, got `{text}`"),
                }));
            };
            return Some(Ok(Spanned {
                line,
                item: Item::KeyValue {
                    key: text[..eq].trim(),
                    value: text[eq + 1..].trim(),
                },
            }));
        }
        None
    }
}

/// Scan a TOML-subset document into syntactic items.
pub fn scan(text: &str) -> Scanner<'_> {
    Scanner {
        lines: text.lines().enumerate(),
    }
}

/// Parse an unsigned integer value.
pub fn parse_u64(value: &str, key: &str, line: usize) -> Result<u64, ScanError> {
    value.parse().map_err(|_| ScanError {
        line,
        msg: format!("`{key}` expects an unsigned integer, got `{value}`"),
    })
}

/// Parse an integer and range-check it: a value that does not fit the
/// field is a typed error, never a silent `as`-truncation (an `id` of
/// 70000 must not quietly become link 4464).
pub fn parse_bounded(value: &str, key: &str, line: usize, max: u64) -> Result<u64, ScanError> {
    let v = parse_u64(value, key, line)?;
    if v > max {
        return Err(ScanError {
            line,
            msg: format!("`{key}` must be at most {max}, got `{value}`"),
        });
    }
    Ok(v)
}

/// Largest µs count representable as a [`TimeDelta`] without overflowing
/// the picosecond multiply inside [`TimeDelta::from_us`].
pub const MAX_US: u64 = u64::MAX / crate::time::PS_PER_US;

/// Parse a µs duration, bounds-checked so `TimeDelta::from_us` cannot
/// overflow (debug builds would panic, release builds would wrap to a
/// nonsense span — both are config errors, not arithmetic accidents).
pub fn parse_us(value: &str, key: &str, line: usize) -> Result<TimeDelta, ScanError> {
    Ok(TimeDelta::from_us(parse_bounded(value, key, line, MAX_US)?))
}

/// Parse a double-quoted string value, returning the unquoted interior.
pub fn parse_quoted<'v>(value: &'v str, key: &str, line: usize) -> Result<&'v str, ScanError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ScanError {
            line,
            msg: format!("`{key}` expects a quoted string, got `{value}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_tables_keys_and_comments() {
        let doc = "# preamble\n[[flow]]\nid = 1 # trailing\n\n  src = \"0:1\"\n[[flow]]\n";
        let items: Vec<Spanned<'_>> = scan(doc).collect::<Result<_, _>>().unwrap();
        assert_eq!(
            items,
            vec![
                Spanned {
                    line: 2,
                    item: Item::Table { name: "flow" }
                },
                Spanned {
                    line: 3,
                    item: Item::KeyValue {
                        key: "id",
                        value: "1"
                    }
                },
                Spanned {
                    line: 5,
                    item: Item::KeyValue {
                        key: "src",
                        value: "\"0:1\""
                    }
                },
                Spanned {
                    line: 6,
                    item: Item::Table { name: "flow" }
                },
            ]
        );
    }

    #[test]
    fn structural_garbage_is_a_typed_error_with_line() {
        let mut s = scan("[[link]]\nzap\n");
        assert!(s.next().unwrap().is_ok());
        let err = s.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("zap"));
        // A broken header has no `=` either: still a typed error.
        let err = scan("[[link]\n").next().unwrap().unwrap_err();
        assert_eq!(err.line, 1);
        let err = scan("[[ ]]\n").next().unwrap().unwrap_err();
        assert!(err.msg.contains("empty"));
    }

    #[test]
    fn bounded_values_refuse_rather_than_truncate() {
        assert!(parse_bounded("70000", "id", 3, u16::MAX as u64)
            .unwrap_err()
            .msg
            .contains("at most 65535"));
        assert_eq!(
            parse_bounded("65535", "id", 3, u16::MAX as u64).unwrap(),
            65535
        );
        assert!(parse_u64("-3", "id", 1).is_err());
        assert!(parse_u64("999999999999999999999999", "id", 1).is_err());
    }

    #[test]
    fn durations_guard_the_picosecond_overflow() {
        assert!(parse_us(&MAX_US.to_string(), "period_us", 1).is_ok());
        assert!(parse_us(&(MAX_US + 1).to_string(), "period_us", 1).is_err());
    }

    #[test]
    fn quoted_strings_round_trip() {
        assert_eq!(parse_quoted("\"a:b\"", "src", 1).unwrap(), "a:b");
        assert!(parse_quoted("a:b", "src", 1).is_err());
        assert!(parse_quoted("\"open", "src", 1).is_err());
    }
}
