//! Deterministic random-number plumbing.
//!
//! Experiments must be reproducible from a single master seed, yet use many
//! logically independent random streams (one per traffic source, per
//! experiment repetition, …). [`SeedSequence`] derives child seeds by
//! hashing the master seed with a stream label, in the spirit of NumPy's
//! `SeedSequence`, using the SplitMix64 finalizer as the mixing function.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: a strong 64-bit mixing function.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible RNG streams from one master seed.
///
/// # Example
/// ```
/// use ccr_sim::SeedSequence;
/// use rand::Rng;
///
/// let seq = SeedSequence::new(42);
/// let mut a = seq.stream("traffic", 0);
/// let mut b = seq.stream("traffic", 1);
/// let (x, y): (u64, u64) = (a.gen(), b.gen());
/// assert_ne!(x, y); // independent streams
/// // and reproducible:
/// let mut a2 = SeedSequence::new(42).stream("traffic", 0);
/// assert_eq!(x, a2.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master_seed`.
    pub const fn new(master_seed: u64) -> Self {
        SeedSequence {
            master: master_seed,
        }
    }

    /// The master seed this sequence was rooted at.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for `(label, index)`.
    pub fn child_seed(&self, label: &str, index: u64) -> u64 {
        let mut state = self.master;
        // Fold the label bytes and index into the SplitMix64 state. Each
        // absorbed word is followed by a mixing step so ("ab", 1) and
        // ("a", ...) cannot collide trivially.
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
            splitmix64(&mut state);
        }
        state ^= index;
        splitmix64(&mut state);
        splitmix64(&mut state)
    }

    /// Construct a seeded [`StdRng`] for `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> StdRng {
        let mut seed_bytes = [0u8; 32];
        let mut state = self.child_seed(label, index);
        for word in seed_bytes.chunks_mut(8) {
            word.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        StdRng::from_seed(seed_bytes)
    }

    /// Derive a sub-sequence (e.g. one per experiment repetition) so nested
    /// components can derive their own streams without coordination.
    pub fn subsequence(&self, label: &str, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.child_seed(label, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let a: Vec<u32> = SeedSequence::new(7)
            .stream("x", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u32> = SeedSequence::new(7)
            .stream("x", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSequence::new(7);
        assert_ne!(s.child_seed("alpha", 0), s.child_seed("beta", 0));
        assert_ne!(s.child_seed("a", 0), s.child_seed("a", 1));
    }

    #[test]
    fn label_extension_is_not_trivially_colliding() {
        let s = SeedSequence::new(7);
        // "ab" + index 0 must differ from "a" + any small index
        let ab = s.child_seed("ab", 0);
        for i in 0..64 {
            assert_ne!(ab, s.child_seed("a", i));
        }
    }

    #[test]
    fn subsequence_isolates_namespaces() {
        let root = SeedSequence::new(1);
        let rep0 = root.subsequence("rep", 0);
        let rep1 = root.subsequence("rep", 1);
        assert_ne!(rep0.child_seed("t", 0), rep1.child_seed("t", 0));
        // reproducible
        assert_eq!(
            rep0.child_seed("t", 0),
            SeedSequence::new(1).subsequence("rep", 0).child_seed("t", 0)
        );
    }

    #[test]
    fn child_seeds_well_distributed() {
        // Cheap sanity check: 10k child seeds from consecutive indices have
        // no duplicates and roughly half the bits set on average.
        let s = SeedSequence::new(0xDEADBEEF);
        let mut seen = std::collections::HashSet::new();
        let mut ones: u64 = 0;
        for i in 0..10_000u64 {
            let c = s.child_seed("bulk", i);
            assert!(seen.insert(c), "duplicate child seed");
            ones += c.count_ones() as u64;
        }
        let avg = ones as f64 / 10_000.0;
        assert!((avg - 32.0).abs() < 1.0, "bit bias: {avg}");
    }

    #[test]
    fn stream_generates_plausible_uniforms() {
        let mut r = SeedSequence::new(3).stream("u", 0);
        let mean: f64 = (0..4096).map(|_| r.gen::<f64>()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
