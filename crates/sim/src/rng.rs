//! Deterministic random-number plumbing.
//!
//! Experiments must be reproducible from a single master seed, yet use many
//! logically independent random streams (one per traffic source, per
//! experiment repetition, …). [`SeedSequence`] derives child seeds by
//! hashing the master seed with a stream label, in the spirit of NumPy's
//! `SeedSequence`, using the SplitMix64 finalizer as the mixing function.
//!
//! The generator itself, [`DetRng`], is a self-contained SplitMix64 stream:
//! no external crates, a 64-bit state, and ~1.5 ns per draw — faster than a
//! ChaCha-based generator on the fault-injection hot path and trivially
//! portable. It passes the usual quick sanity checks (equidistribution of
//! bits, no short cycles over practical horizons) and is more than adequate
//! for workload generation and fault injection in a simulator.

/// SplitMix64 step: a strong 64-bit mixing function.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic pseudo-random generator (SplitMix64).
///
/// Replaces the former `rand::StdRng` so the workspace builds with zero
/// external dependencies. Identical seeds yield identical streams on every
/// platform; the state is a single `u64` so cloning/forking is cheap.
///
/// # Example
/// ```
/// use ccr_sim::rng::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.gen_f64();
/// assert!((0.0..1.0).contains(&f));
/// let k = a.gen_range(10u64..20);
/// assert!((10..20).contains(&k));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator seeded with `seed`.
    ///
    /// The seed is pre-mixed once so that small consecutive seeds do not
    /// produce correlated leading draws.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        splitmix64(&mut state);
        DetRng { state }
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// A uniform `bool` that is `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from `range` (half-open or inclusive integer ranges,
    /// or a half-open `f64` range).
    ///
    /// Integer ranges use Lemire's unbiased multiply-shift rejection, so
    /// the distribution is exactly uniform. Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform draw from `[0, span)`; `span == 0` means the full
    /// 64-bit range.
    #[inline]
    fn uniform_u64(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        // Lemire's method: widen-multiply, reject the biased low zone.
        let threshold = span.wrapping_neg() % span; // 2^64 mod span
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range types [`DetRng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.uniform_u64(span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                // span may overflow to 0 on the full domain; uniform_u64
                // treats 0 as "all 64 bits".
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(rng.uniform_u64(span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u16, u32, u64);

impl UniformRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut DetRng) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.uniform_u64(span) as usize
    }
}

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Derives independent, reproducible RNG streams from one master seed.
///
/// # Example
/// ```
/// use ccr_sim::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let mut a = seq.stream("traffic", 0);
/// let mut b = seq.stream("traffic", 1);
/// let (x, y) = (a.next_u64(), b.next_u64());
/// assert_ne!(x, y); // independent streams
/// // and reproducible:
/// let mut a2 = SeedSequence::new(42).stream("traffic", 0);
/// assert_eq!(x, a2.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master_seed`.
    pub const fn new(master_seed: u64) -> Self {
        SeedSequence {
            master: master_seed,
        }
    }

    /// The master seed this sequence was rooted at.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit child seed for `(label, index)`.
    pub fn child_seed(&self, label: &str, index: u64) -> u64 {
        let mut state = self.master;
        // Fold the label bytes and index into the SplitMix64 state. Each
        // absorbed word is followed by a mixing step so ("ab", 1) and
        // ("a", ...) cannot collide trivially.
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
            splitmix64(&mut state);
        }
        state ^= index;
        splitmix64(&mut state);
        splitmix64(&mut state)
    }

    /// Construct a seeded [`DetRng`] for `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(self.child_seed(label, index))
    }

    /// Derive a sub-sequence (e.g. one per experiment repetition) so nested
    /// components can derive their own streams without coordination.
    pub fn subsequence(&self, label: &str, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.child_seed(label, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = SeedSequence::new(7).stream("x", 3);
        let mut b = SeedSequence::new(7).stream("x", 3);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSequence::new(7);
        assert_ne!(s.child_seed("alpha", 0), s.child_seed("beta", 0));
        assert_ne!(s.child_seed("a", 0), s.child_seed("a", 1));
    }

    #[test]
    fn label_extension_is_not_trivially_colliding() {
        let s = SeedSequence::new(7);
        // "ab" + index 0 must differ from "a" + any small index
        let ab = s.child_seed("ab", 0);
        for i in 0..64 {
            assert_ne!(ab, s.child_seed("a", i));
        }
    }

    #[test]
    fn subsequence_isolates_namespaces() {
        let root = SeedSequence::new(1);
        let rep0 = root.subsequence("rep", 0);
        let rep1 = root.subsequence("rep", 1);
        assert_ne!(rep0.child_seed("t", 0), rep1.child_seed("t", 0));
        // reproducible
        assert_eq!(
            rep0.child_seed("t", 0),
            SeedSequence::new(1)
                .subsequence("rep", 0)
                .child_seed("t", 0)
        );
    }

    #[test]
    fn child_seeds_well_distributed() {
        // Cheap sanity check: 10k child seeds from consecutive indices have
        // no duplicates and roughly half the bits set on average.
        let s = SeedSequence::new(0xDEADBEEF);
        let mut seen = std::collections::HashSet::new();
        let mut ones: u64 = 0;
        for i in 0..10_000u64 {
            let c = s.child_seed("bulk", i);
            assert!(seen.insert(c), "duplicate child seed");
            ones += c.count_ones() as u64;
        }
        let avg = ones as f64 / 10_000.0;
        assert!((avg - 32.0).abs() < 1.0, "bit bias: {avg}");
    }

    #[test]
    fn stream_generates_plausible_uniforms() {
        let mut r = SeedSequence::new(3).stream("u", 0);
        let mean: f64 = (0..4096).map(|_| r.gen_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let a = r.gen_range(3u16..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = r.gen_range(10.0f64..11.0);
            assert!((10.0..11.0).contains(&c));
            let d = r.gen_range(0u32..=u32::MAX);
            let _ = d;
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = DetRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
