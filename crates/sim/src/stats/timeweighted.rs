//! Time-weighted averages of piecewise-constant signals.
//!
//! Used for metrics like "mean queue depth" or "link busy fraction", where a
//! value holds over an interval of simulated time rather than occurring at a
//! point.

use crate::time::SimTime;

/// Integrates a piecewise-constant signal over simulated time.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value is
/// assumed to hold from that instant until the next change (or until
/// [`TimeWeighted::mean_until`] is read).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A fresh integrator; the signal starts when `set` is first called.
    pub fn new() -> Self {
        TimeWeighted {
            start: SimTime::ZERO,
            last_t: SimTime::ZERO,
            last_v: 0.0,
            integral: 0.0,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Declare the signal value `v` from instant `t` onward.
    ///
    /// # Panics
    /// Panics in debug builds if `t` precedes the previous change.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if self.started {
            debug_assert!(t >= self.last_t, "time went backwards");
            let dt = t.since(self.last_t).as_ps() as f64;
            self.integral += self.last_v * dt;
        } else {
            self.start = t;
            self.started = true;
        }
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Add `delta` to the current signal value at instant `t`
    /// (convenience for gauge-style metrics such as queue depth).
    pub fn adjust(&mut self, t: SimTime, delta: f64) {
        let v = if self.started { self.last_v } else { 0.0 };
        self.set(t, v + delta);
    }

    /// Current (most recently set) value of the signal.
    pub fn current(&self) -> f64 {
        if self.started {
            self.last_v
        } else {
            0.0
        }
    }

    /// Largest value the signal has taken.
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }

    /// Time-weighted mean over `[first set, until]`.
    ///
    /// Returns `None` if the signal never changed or the window is empty.
    pub fn mean_until(&self, until: SimTime) -> Option<f64> {
        if !self.started || until <= self.start {
            return None;
        }
        debug_assert!(until >= self.last_t);
        let tail = until.since(self.last_t).as_ps() as f64;
        let total = until.since(self.start).as_ps() as f64;
        Some((self.integral + self.last_v * tail) / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_mean_is_value() {
        let mut w = TimeWeighted::new();
        w.set(SimTime::from_ns(10), 3.0);
        assert_eq!(w.mean_until(SimTime::from_ns(20)), Some(3.0));
    }

    #[test]
    fn step_signal_weights_by_duration() {
        let mut w = TimeWeighted::new();
        w.set(SimTime::from_ns(0), 1.0); // 1.0 for 10 ns
        w.set(SimTime::from_ns(10), 5.0); // 5.0 for 30 ns
        let m = w.mean_until(SimTime::from_ns(40)).unwrap();
        assert!((m - 4.0).abs() < 1e-12, "mean {m}");
        assert_eq!(w.max(), Some(5.0));
        assert_eq!(w.current(), 5.0);
    }

    #[test]
    fn adjust_acts_as_gauge() {
        let mut w = TimeWeighted::new();
        w.adjust(SimTime::from_ns(0), 2.0); // depth 2
        w.adjust(SimTime::from_ns(5), 1.0); // depth 3
        w.adjust(SimTime::from_ns(10), -3.0); // depth 0
        let m = w.mean_until(SimTime::from_ns(20)).unwrap();
        // (2*5 + 3*5 + 0*10)/20 = 25/20
        assert!((m - 1.25).abs() < 1e-12);
    }

    #[test]
    fn unstarted_signal_has_no_stats() {
        let w = TimeWeighted::new();
        assert_eq!(w.mean_until(SimTime::from_ns(100)), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn empty_window_is_none() {
        let mut w = TimeWeighted::new();
        w.set(SimTime::from_ns(10), 1.0);
        assert_eq!(w.mean_until(SimTime::from_ns(10)), None);
    }

    #[test]
    fn repeated_set_at_same_instant_takes_last() {
        let mut w = TimeWeighted::new();
        w.set(SimTime::from_ns(0), 1.0);
        w.set(SimTime::from_ns(0), 9.0);
        assert_eq!(w.mean_until(SimTime::from_ns(10)), Some(9.0));
    }
}
