//! Named event counters.

/// A simple saturating event counter with rate helpers.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub const fn get(&self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `denom` (0 when `denom` is 0).
    pub fn fraction_of(&self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }

    /// This counter as a fraction of another counter.
    pub fn fraction_of_counter(&self, denom: &Counter) -> f64 {
        self.fraction_of(denom.0)
    }

    /// Merge (sum) another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.add(other.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn fraction_handles_zero_denominator() {
        let mut c = Counter::new();
        c.add(10);
        assert_eq!(c.fraction_of(0), 0.0);
        assert_eq!(c.fraction_of(20), 0.5);
        let d = Counter::new();
        assert_eq!(c.fraction_of_counter(&d), 0.0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counter::new();
        a.add(2);
        let mut b = Counter::new();
        b.add(5);
        a.merge(&b);
        assert_eq!(a.get(), 7);
    }
}
