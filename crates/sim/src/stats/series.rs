//! Raw (x, y) series recording for experiment output.
//!
//! Unlike the streaming statistics, a [`Series`] keeps every point — it is
//! meant for the *aggregated* outputs of an experiment (one point per sweep
//! setting), not for per-event samples.

/// An ordered collection of labelled (x, y) points.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series name, used as a column/legend label.
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value recorded for the smallest x ≥ `x`, if any
    /// (assumes points were pushed in ascending x order).
    pub fn y_at_or_after(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px >= x).map(|(_, y)| *y)
    }

    /// Linear interpolation of y at `x`; `None` outside the x range.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut prev: Option<(f64, f64)> = None;
        for &(px, py) in &self.points {
            if (px - x).abs() < f64::EPSILON {
                return Some(py);
            }
            if px > x {
                return prev.map(|(qx, qy)| qy + (py - qy) * (x - qx) / (px - qx));
            }
            prev = Some((px, py));
        }
        None
    }

    /// The x at which the series first crosses `threshold` going upward,
    /// linearly interpolated; `None` if it never does.
    pub fn first_upward_crossing(&self, threshold: f64) -> Option<f64> {
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if y0 < threshold && y1 >= threshold {
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(x1);
                }
                return Some(x0 + (threshold - y0) * (x1 - x0) / (y1 - y0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Series {
        let mut s = Series::new("s");
        s.push(0.0, 0.0);
        s.push(1.0, 10.0);
        s.push(2.0, 40.0);
        s
    }

    #[test]
    fn push_and_read() {
        let s = demo();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.points()[1], (1.0, 10.0));
    }

    #[test]
    fn interpolation_between_points() {
        let s = demo();
        assert_eq!(s.interpolate(0.5), Some(5.0));
        assert_eq!(s.interpolate(1.5), Some(25.0));
        assert_eq!(s.interpolate(1.0), Some(10.0));
        assert_eq!(s.interpolate(3.0), None);
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    fn crossing_detection() {
        let s = demo();
        let x = s.first_upward_crossing(20.0).unwrap();
        assert!((x - (1.0 + 10.0 / 30.0)).abs() < 1e-12);
        assert_eq!(s.first_upward_crossing(100.0), None);
    }

    #[test]
    fn y_at_or_after_finds_next_point() {
        let s = demo();
        assert_eq!(s.y_at_or_after(0.5), Some(10.0));
        assert_eq!(s.y_at_or_after(2.0), Some(40.0));
        assert_eq!(s.y_at_or_after(2.5), None);
    }
}
