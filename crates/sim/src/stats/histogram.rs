//! Log-linear bucketed histogram with quantile estimation.
//!
//! The layout follows the HdrHistogram idea: values are grouped into
//! "octaves" (powers of two); each octave is split into `2^precision`
//! linear sub-buckets. Relative quantile error is therefore bounded by
//! `2^-precision`, independent of the value range, at O(64 · 2^precision)
//! memory — ideal for latency distributions that span ns..ms.

/// A streaming histogram over `u64` values (typically picoseconds).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    precision: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with the given sub-bucket precision (1..=8).
    ///
    /// Precision `p` bounds relative quantile error by `2^-p`
    /// (e.g. `p = 5` → ≤ 3.1 %).
    pub fn new(precision: u32) -> Self {
        assert!((1..=8).contains(&precision), "precision must be in 1..=8");
        let sub = 1usize << precision;
        Histogram {
            precision,
            // one linear region for values < 2^precision, then one octave of
            // `sub` buckets for each further power of two up to 2^64.
            buckets: vec![0; sub * (64 - precision as usize + 1)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default precision suitable for latency metrics (≤ 1.6 % error).
    pub fn for_latency() -> Self {
        Histogram::new(6)
    }

    #[inline]
    fn bucket_index(&self, value: u64) -> usize {
        let p = self.precision;
        let sub = 1u64 << p;
        if value < sub {
            return value as usize;
        }
        // The octave is determined by the position of the highest set bit.
        let msb = 63 - value.leading_zeros(); // >= p here
        let octave = (msb - p + 1) as u64;
        let offset = (value >> (msb - p)) - sub; // top p+1 bits, minus leading 1
        (octave * sub + offset) as usize
    }

    /// Lowest value that maps to bucket `idx` (inverse of `bucket_index`).
    fn bucket_low(&self, idx: usize) -> u64 {
        let p = self.precision as u64;
        let sub = 1u64 << p;
        let idx = idx as u64;
        if idx < sub {
            return idx;
        }
        let octave = (idx - sub) / sub + 1;
        let offset = (idx - sub) % sub;
        (sub + offset) << (octave - 1)
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q` in `[0, 1]`, within the relative error bound.
    ///
    /// Returns the lower edge of the bucket containing the `⌈q·count⌉`-th
    /// value, clamped to the exact observed min/max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        // ccr-verify: allow(time-cast) -- q is asserted in [0, 1] above, so the product is bounded by count; this is a rank, not a time value
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_low(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (q = 0.5).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Merge another histogram of the same precision into this one.
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.count == 0 {
            self.min = u64::MAX;
            self.max = 0;
        }
    }

    /// Iterate non-empty buckets as `(lower_edge, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_low_roundtrip_brackets_value() {
        let h = Histogram::new(5);
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            1 << 40,
            u64::MAX / 3,
        ] {
            let idx = h.bucket_index(v);
            let low = h.bucket_low(idx);
            assert!(low <= v, "low {low} > value {v}");
            // next bucket's low edge must exceed v
            let next_low = h.bucket_low(idx + 1);
            assert!(v < next_low, "value {v} >= next bucket edge {next_low}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.quantile(q), Some(v));
        }
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = Histogram::new(6);
        // 1..=10_000 uniformly
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - exact as f64).abs() / exact as f64;
            assert!(rel <= 1.0 / 64.0 + 1e-9, "q={q}: est {est}, rel err {rel}");
        }
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::for_latency();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1_000_000));
        assert!((h.mean().unwrap() - 250_015.0).abs() < 1e-9);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new(4);
        let mut b = Histogram::new(4);
        a.record_n(77, 5);
        for _ in 0..5 {
            b.record(77);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        a.record_n(99, 0);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        (0..100u64).for_each(|v| a.record(v * 3));
        (0..100u64).for_each(|v| b.record(v * 7));
        let mut whole = Histogram::new(5);
        (0..100u64).for_each(|v| whole.record(v * 3));
        (0..100u64).for_each(|v| whole.record(v * 7));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.quantile(0.9), whole.quantile(0.9));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(3);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_zero_rejected() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new(8);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(0));
        assert!(h.quantile(1.0).unwrap() >= h.quantile(0.01).unwrap());
    }

    #[test]
    fn nonzero_buckets_cover_all_counts() {
        let mut h = Histogram::new(5);
        for v in [1u64, 1, 5, 1000, 123456] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }
}
