//! Streaming statistics used by the metric sinks of the simulator.
//!
//! Everything here is single-pass / O(1)-memory (except [`Series`], which
//! intentionally records raw points for plotting): simulations run for
//! millions of slots and must not hoard per-sample memory.

mod counter;
mod histogram;
mod series;
mod summary;
mod timeweighted;

pub use counter::Counter;
pub use histogram::Histogram;
pub use series::Series;
pub use summary::Summary;
pub use timeweighted::TimeWeighted;
