//! Single-pass moment summary (Welford's algorithm).

/// Streaming mean / variance / min / max over `f64` samples.
///
/// Uses Welford's numerically stable online update; merging two summaries
/// uses the parallel (Chan et al.) combination rule so partial results from
/// parallel experiment shards can be folded together.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample (Bessel-corrected) variance; `None` for fewer than 2 samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Fold another summary into this one (parallel combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nearly(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!(nearly(s.mean().unwrap(), 5.0));
        assert!(nearly(s.variance().unwrap(), 4.0));
        assert!(nearly(s.std_dev().unwrap(), 2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(nearly(s.sum(), 40.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), Some(0.0));
        assert_eq!(s.sample_variance(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));

        let mut left = Summary::new();
        let mut right = Summary::new();
        data[..41].iter().for_each(|&x| left.record(x));
        data[41..].iter().for_each(|&x| right.record(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!(nearly(left.mean().unwrap(), whole.mean().unwrap()));
        assert!(nearly(left.variance().unwrap(), whole.variance().unwrap()));
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        a.record(1.0);
        let b = Summary::new();
        let mut a2 = a.clone();
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c, a);
    }
}
